"""SCALE-3: notification load vs. relevance threshold (Section V-B).

The open challenge the paper states: "when and how to notify a user and
how to obtain user feedback without inducing user fatigue".  This
benchmark sweeps the IoTA's relevance threshold for each Westin persona
against the full set of practices a DBH deployment advertises, and
reports how many notifications each configuration produces.

Expected shape: notifications fall sharply as the threshold rises; at
every threshold the fundamentalist assistant surfaces at least as many
practices as the unconcerned one; and the practices that survive high
thresholds are the objectively sensitive ones (third-party/marketing).
"""

import pytest

from benchmarks.conftest import report
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.iota.notifications import NotificationManager
from repro.iota.personas import PERSONAS, generate_decisions
from repro.iota.preference_model import DataPractice, PreferenceModel

THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)

#: The practice mix a real DBH deployment advertises: building
#: resources, first-party services, and a couple of third-party ones.
ADVERTISED = [
    DataPractice(DataCategory.LOCATION, Purpose.EMERGENCY_RESPONSE, retention_days=180),
    DataPractice(DataCategory.LOCATION, Purpose.PROVIDING_SERVICE),
    DataPractice(DataCategory.PRESENCE, Purpose.SECURITY, retention_days=30),
    DataPractice(DataCategory.PRESENCE, Purpose.PROVIDING_SERVICE, granularity=GranularityLevel.COARSE),
    DataPractice(DataCategory.OCCUPANCY, Purpose.COMFORT, retention_days=7),
    DataPractice(DataCategory.OCCUPANCY, Purpose.ENERGY_MANAGEMENT, granularity=GranularityLevel.AGGREGATE),
    DataPractice(DataCategory.ENERGY_USE, Purpose.ENERGY_MANAGEMENT, retention_days=365),
    DataPractice(DataCategory.TEMPERATURE, Purpose.COMFORT, granularity=GranularityLevel.AGGREGATE),
    DataPractice(DataCategory.IDENTITY, Purpose.ACCESS_CONTROL, retention_days=365),
    DataPractice(DataCategory.MEETING_DETAILS, Purpose.PROVIDING_SERVICE),
    DataPractice(DataCategory.LOCATION, Purpose.RESEARCH, retention_days=365),
    DataPractice(DataCategory.LOCATION, Purpose.PROVIDING_SERVICE, third_party=True),
    DataPractice(DataCategory.IDENTITY, Purpose.MARKETING, third_party=True),
    DataPractice(DataCategory.ACTIVITY, Purpose.SECURITY),
]


@pytest.fixture(scope="module")
def persona_models():
    return {
        name: PreferenceModel().fit(generate_decisions(persona, 200, seed=1, noise=0.0))
        for name, persona in PERSONAS.items()
    }


def sweep(persona_models):
    series = {}
    for name, model in persona_models.items():
        counts = []
        for threshold in THRESHOLDS:
            manager = NotificationManager(
                model, relevance_threshold=threshold, daily_budget=100
            )
            sent = 0
            for index, practice in enumerate(ADVERTISED):
                if manager.offer(float(index), practice, "practice-%d" % index):
                    sent += 1
            counts.append(sent)
        series[name] = counts
    return series


def test_scale_notifications_sweep(benchmark, persona_models):
    series = benchmark.pedantic(
        sweep, args=(persona_models,), iterations=1, rounds=1
    )

    header = "%-16s" + " %5.2f" * len(THRESHOLDS)
    rows = [header % ("threshold", *THRESHOLDS)]
    for name in sorted(series):
        rows.append(
            ("%-16s" + " %5d" * len(THRESHOLDS)) % (name, *series[name])
        )
    report(
        "SCALE-3: notifications shown (of %d advertised practices)" % len(ADVERTISED),
        rows,
    )

    for name, counts in series.items():
        # Monotone non-increasing in the threshold.
        assert all(a >= b for a, b in zip(counts, counts[1:])), name
    # Stricter personas are notified at least as much, at every threshold.
    for fa, un in zip(series["fundamentalist"], series["unconcerned"]):
        assert fa >= un
    # A mid threshold must cut the load substantially for everyone.
    mid = THRESHOLDS.index(0.4)
    assert all(counts[mid] <= len(ADVERTISED) // 2 for counts in series.values())

    for name, counts in series.items():
        benchmark.extra_info[name] = counts
