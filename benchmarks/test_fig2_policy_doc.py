"""FIG-2: the machine-readable building policy document of Figure 2.

Regenerates a document structurally identical to the paper's Figure 2
("Location tracking in DBH": WiFi APs, emergency-response purpose, MAC
address observation, P6M retention) from the typed policy model, checks
every element the figure shows, and benchmarks serialize+parse
round-trip throughput.
"""

import json

import pytest

from benchmarks.conftest import report
from repro.core.language.builder import ResourcePolicyBuilder
from repro.core.language.document import ResourcePolicyDocument


def figure2_document() -> ResourcePolicyDocument:
    return (
        ResourcePolicyBuilder()
        .resource("Location tracking in DBH")
        .at(
            "Donald Bren Hall",
            "Building",
            owner="UCI",
            more_info="https://uci.edu/dbh",
        )
        .sensor(
            "WiFi Access Point",
            "Installed inside the building and covers rooms and corridors",
        )
        .purpose("emergency response", "Location is stored continuously")
        .observes(
            "MAC address of the device",
            "If your device is connected to a WiFi Access Point in DBH, "
            "its MAC address is stored",
        )
        .retain("P6M")
        .build()
    )


def test_fig2_document_matches_paper(benchmark):
    document = figure2_document()
    data = document.to_dict()

    # Every element Figure 2 shows, in the same structure.
    resource = data["resources"][0]
    assert resource["info"]["name"] == "Location tracking in DBH"
    spatial = resource["context"]["location"]["spatial"]
    assert spatial == {"name": "Donald Bren Hall", "type": "Building"}
    owner = resource["context"]["location"]["location_owner"]
    assert owner["name"] == "UCI"
    assert "more_info" in owner["human_description"]
    assert resource["sensor"]["type"] == "WiFi Access Point"
    assert "emergency response" in resource["purpose"]
    assert resource["observations"][0]["name"] == "MAC address of the device"
    assert resource["retention"] == {"duration": "P6M"}

    def round_trip() -> ResourcePolicyDocument:
        return ResourcePolicyDocument.from_json(document.to_json())

    restored = benchmark(round_trip)
    assert restored == document

    text = document.to_json(indent=None)
    report(
        "FIG-2: building policy document",
        [
            "wire size: %d bytes" % len(text),
            "schema-valid: yes (validated on serialize and parse)",
            "round-trip equal: yes",
        ],
    )
    benchmark.extra_info["wire_bytes"] = len(text)
