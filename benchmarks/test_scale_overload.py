"""SCALE-5: overload protection under the rush-hour burst plan.

Runs the overload scenario twice -- once with the admission controller
installed, once without (the ablation baseline) -- and reports the
shed/brownout split by priority class.  This is the load-shedding
counterpart of the resilience benchmarks: the claim is not throughput
but *selectivity* -- under the same burst, the controller sheds only
deferrable and normal traffic while every CRITICAL call (enforcement
decisions, preference submissions, DSAR) still lands, and every
degraded answer is marked in the audit record.
"""

import pytest

from benchmarks.conftest import report
from repro.simulation.overload import run_overload_scenario

PLAN = "rush-hour"
SEED = 11
POPULATION = 12
TICKS = 16


def _rows(label, result):
    return [
        "%s" % label,
        "  critical:   attempted=%d completed=%d shed=%d"
        % (result.critical.attempted, result.critical.completed,
           result.critical.shed),
        "  normal:     attempted=%d completed=%d shed=%d (brownouts=%d)"
        % (result.normal.attempted, result.normal.completed,
           result.normal.shed, result.brownout_marked_responses),
        "  deferrable: attempted=%d completed=%d shed=%d (shed_rate=%.3f)"
        % (result.deferrable.attempted, result.deferrable.completed,
           result.deferrable.shed, result.deferrable.shed_rate),
        "  bus: attempts=%d logical=%d retries=%d shed=%d"
        % (result.bus_attempts, result.bus_logical_calls,
           result.bus_retries, result.bus_shed),
    ]


def test_scale_overload_admission_vs_ablation(benchmark):
    with_admission = benchmark.pedantic(
        run_overload_scenario,
        kwargs=dict(
            plan_name=PLAN,
            seed=SEED,
            population=POPULATION,
            ticks=TICKS,
            admission=True,
        ),
        iterations=1,
        rounds=1,
    )
    baseline = run_overload_scenario(
        plan_name=PLAN,
        seed=SEED,
        population=POPULATION,
        ticks=TICKS,
        admission=False,
    )

    rows = _rows("admission ON", with_admission) + _rows(
        "admission OFF (ablation)", baseline
    )
    rows.append(
        "ledger: checked=%d admitted=%d shed=%d brownouts=%d injected=%d"
        % (with_admission.ledger_checked, with_admission.ledger_admitted,
           with_admission.ledger_shed, with_admission.ledger_brownouts,
           with_admission.injected_arrivals)
    )
    report("SCALE-5: rush-hour overload, admission vs ablation", rows)

    # Both runs must satisfy their own invariants end to end.
    assert with_admission.ok, with_admission.violations
    assert baseline.ok, baseline.violations

    # Selectivity: the controller sheds, but never the critical class.
    assert with_admission.critical.shed == 0
    assert with_admission.critical.completed == with_admission.critical.attempted
    assert with_admission.deferrable.shed_rate > 0.0
    assert with_admission.ledger_shed > 0

    # Privacy-preserving degradation: browned-out answers exist and every
    # one of them is marked in the audit record.
    assert with_admission.brownout_marked_responses > 0
    assert (
        with_admission.brownout_marked_audit
        >= with_admission.brownout_marked_responses
    )

    # The ablation absorbs the same burst with no shedding and no
    # degradation -- the controller, not the workload, makes the choice.
    assert baseline.bus_shed == 0
    assert baseline.brownout_marked_responses == 0
    assert baseline.critical.completed == baseline.critical.attempted

    benchmark.extra_info["shed"] = with_admission.ledger_shed
    benchmark.extra_info["brownouts"] = with_admission.ledger_brownouts
    benchmark.extra_info["deferrable_shed_rate"] = round(
        with_admission.deferrable.shed_rate, 3
    )
