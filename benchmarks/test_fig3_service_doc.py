"""FIG-3: the Concierge service policy document of Figure 3.

Regenerates the service policy ("wifi_access_point" and
"bluetooth_beacon" observations, "providing_service" purpose,
service_id "Concierge") from the SmartConcierge implementation itself
-- the document is compiled from the running service, not hand-written
-- and benchmarks the compile+serialize path.
"""

import pytest

from benchmarks.conftest import report
from repro.core.language.document import ServicePolicyDocument
from repro.core.policy import catalog
from repro.services.concierge import SmartConcierge
from repro.simulation.dbh import BUILDING_ID, make_dbh_tippers


@pytest.fixture(scope="module")
def concierge():
    tippers = make_dbh_tippers(deploy_sensors=False)
    tippers.define_policy(catalog.policy_service_sharing(BUILDING_ID))
    return SmartConcierge(tippers)


def test_fig3_document_matches_paper(benchmark, concierge):
    document = benchmark(concierge.policy_document)
    data = document.to_dict()

    observation_names = [obs["name"] for obs in data["observations"]]
    assert observation_names == ["wifi_access_point", "bluetooth_beacon"]
    assert "providing_service" in data["purpose"]
    assert data["purpose"]["service_id"] == "concierge"
    assert "directions" in data["purpose"]["providing_service"]["description"]

    # Round-trip through the wire form.
    assert ServicePolicyDocument.from_json(document.to_json()) == document

    report(
        "FIG-3: Concierge service policy document",
        [
            "observations: %s" % ", ".join(observation_names),
            "purpose: providing_service (service_id=%s)" % document.service_id,
            "wire size: %d bytes" % len(document.to_json(indent=None)),
        ],
    )
