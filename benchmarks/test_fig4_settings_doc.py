"""FIG-4: the privacy-settings document of Figure 4.

Regenerates the settings document (fine / coarse / no location sensing,
with the "wifi=opt-in"/"wifi=opt-out" actuation strings) and benchmarks
the full IoTA settings pipeline: parse document -> rebuild settings
space -> choose per learned persona.  Reports which option each Westin
persona's assistant selects.
"""

import pytest

from benchmarks.conftest import report
from repro.core.policy.settings import SettingsSpace, location_settings_space
from repro.iota.assistant import IoTAssistant
from repro.iota.personas import PERSONAS, generate_decisions
from repro.iota.preference_model import PreferenceModel
from repro.net.bus import MessageBus


def _check_document_matches_paper():
    data = location_settings_space().to_document().to_dict()
    select = data["settings"][0]["select"]
    assert [opt["description"] for opt in select] == [
        "fine grained location sensing",
        "coarse grained location sensing",
        "No location sensing",
    ]
    assert [opt["on"] for opt in select] == [
        "wifi=opt-in",
        "wifi=opt-in",
        "wifi=opt-out",
    ]


@pytest.fixture(scope="module")
def persona_models():
    return {
        name: PreferenceModel().fit(generate_decisions(persona, 200, seed=1, noise=0.0))
        for name, persona in PERSONAS.items()
    }


def test_fig4_iota_choice_benchmark(benchmark, persona_models):
    _check_document_matches_paper()
    document = location_settings_space().to_document()
    wire = document.to_dict()

    def choose_all():
        choices = {}
        for name, model in persona_models.items():
            assistant = IoTAssistant("u", MessageBus(), model=model)
            space = SettingsSpace.from_document(type(document).from_dict(wire))
            choices[name] = assistant.choose_selection(space)["location"]
        return choices

    choices = benchmark(choose_all)

    # Expected shape: stricter personas pick stricter options.
    assert choices["unconcerned"] == "fine"
    assert choices["fundamentalist"] == "off"
    assert choices["pragmatist"] in ("fine", "coarse")

    report(
        "FIG-4: settings document and per-persona IoTA choice",
        ["%-16s -> %s" % (name, key) for name, key in sorted(choices.items())],
    )
