"""ABL-1: the utility/privacy trade-off of resolution strategies.

DESIGN.md calls the resolution strategy the framework's central design
choice: how to settle a disagreement between the building and a user
(Section III-B).  This ablation runs the same mixed query workload
under all three strategies and reports

- utility: the fraction of service queries answered (possibly coarsened),
- privacy: the fraction of user objections that were honoured,
- overrides: decisions where a user's stated preference was overruled.

Expected shape: BUILDING_WINS maximizes utility and honours no
objections; USER_WINS honours all of them at the lowest utility;
NEGOTIATE sits between, overriding only for mandatory policies.
"""

import random

import pytest

from benchmarks.conftest import report
from repro.core.enforcement.engine import EnforcementEngine
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.conditions import EvaluationContext
from repro.core.policy.preference import UserPreference
from repro.core.reasoner.resolution import ResolutionStrategy
from repro.spatial.model import build_simple_building

USERS = 60
QUERIES = 400


def build_engine(strategy: ResolutionStrategy):
    spatial = build_simple_building("b", 3, 6)
    engine = EnforcementEngine(
        context=EvaluationContext(spatial=spatial), strategy=strategy
    )
    engine.store.add_policy(catalog.policy_2_emergency_location("b"))
    engine.store.add_policy(catalog.policy_service_sharing("b"))
    rng = random.Random(0)
    objectors = set()
    for index in range(USERS):
        user_id = "user-%03d" % index
        roll = rng.random()
        if roll < 0.3:
            # Hard opt-out of location sharing.
            engine.store.add_preference(
                UserPreference(
                    preference_id="optout-%s" % user_id,
                    user_id=user_id,
                    description="no location",
                    effect=Effect.DENY,
                    categories=(DataCategory.LOCATION,),
                    phases=(DecisionPhase.SHARING,),
                )
            )
            objectors.add(user_id)
        elif roll < 0.55:
            engine.store.add_preference(
                UserPreference(
                    preference_id="cap-%s" % user_id,
                    user_id=user_id,
                    description="coarse only",
                    effect=Effect.ALLOW,
                    categories=(DataCategory.LOCATION,),
                    phases=(DecisionPhase.SHARING,),
                    granularity_cap=GranularityLevel.COARSE,
                )
            )
    return engine, objectors


def workload():
    rng = random.Random(1)
    return [
        DataRequest(
            requester_id="concierge",
            requester_kind=RequesterKind.BUILDING_SERVICE,
            phase=DecisionPhase.SHARING,
            category=DataCategory.LOCATION,
            subject_id="user-%03d" % rng.randrange(USERS),
            space_id="b-1001",
            timestamp=float(rng.randrange(86400)),
            purpose=Purpose.PROVIDING_SERVICE,
        )
        for _ in range(QUERIES)
    ]


def evaluate(strategy: ResolutionStrategy) -> dict:
    engine, objectors = build_engine(strategy)
    allowed = 0
    coarsened = 0
    objections = 0
    honoured = 0
    overridden = 0
    for request in workload():
        decision = engine.decide(request)
        objected = request.subject_id in objectors
        if objected:
            objections += 1
        if decision.allowed:
            allowed += 1
            if decision.granularity is not GranularityLevel.PRECISE:
                coarsened += 1
            if objected:
                overridden += 1
        elif objected:
            honoured += 1
    return {
        "utility": allowed / QUERIES,
        "coarsened": coarsened / QUERIES,
        "privacy": honoured / objections if objections else 1.0,
        "overridden": overridden,
    }


def test_ablation_resolution_strategies(benchmark):
    results = benchmark.pedantic(
        lambda: {s: evaluate(s) for s in ResolutionStrategy},
        iterations=1,
        rounds=1,
    )

    rows = [
        "%-16s %9s %11s %9s %11s"
        % ("strategy", "utility", "coarsened", "privacy", "overridden")
    ]
    for strategy, metrics in results.items():
        rows.append(
            "%-16s %8.0f%% %10.0f%% %8.0f%% %11d"
            % (
                strategy.value,
                metrics["utility"] * 100,
                metrics["coarsened"] * 100,
                metrics["privacy"] * 100,
                metrics["overridden"],
            )
        )
    report("ABL-1: resolution strategy utility/privacy trade-off", rows)

    building = results[ResolutionStrategy.BUILDING_WINS]
    user = results[ResolutionStrategy.USER_WINS]
    negotiate = results[ResolutionStrategy.NEGOTIATE]

    # Who wins, by what shape:
    assert building["utility"] >= negotiate["utility"] >= user["utility"]
    assert user["privacy"] == 1.0, "user-wins honours every objection"
    assert building["privacy"] == 0.0, "building-wins honours none"
    assert negotiate["privacy"] == 1.0, (
        "sharing opt-outs are non-mandatory, so negotiate honours them all"
    )
    assert negotiate["coarsened"] > building["coarsened"], (
        "negotiate degrades granularity for capped users"
    )
    for strategy, metrics in results.items():
        benchmark.extra_info[strategy.value] = metrics
