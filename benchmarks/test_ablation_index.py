"""ABL-2: which part of the policy index buys the speedup.

DESIGN.md's second ablation: the index has two ingredients, (phase,
category) bucketing of policies and per-user partitioning of
preferences.  This benchmark measures decision latency with

- no index (linear scan of everything),
- policy buckets only (preferences still scanned linearly),
- the full index (buckets + per-user preference partitions).

Expected shape: with realistic populations the preference partition is
the dominant win (preferences outnumber policies by orders of
magnitude), and the full index beats both ablated variants.
"""

import random
import time

import pytest

from benchmarks.conftest import report
from repro.core.enforcement.engine import EnforcementEngine
from repro.core.policy.conditions import EvaluationContext
from repro.core.reasoner.index import LinearRuleStore, PolicyIndex
from repro.spatial.model import build_simple_building

from benchmarks.test_scale_enforcement import build_rules, make_requests

USERS = 500
REQUESTS = 300


class PolicyBucketsOnly(PolicyIndex):
    """Ablated index: policy buckets, but preferences scanned linearly."""

    def candidate_preferences(self, request):
        if request.subject_id is None:
            return []
        return self.preferences


def engine_for(store_cls):
    spatial = build_simple_building("b", 2, 4)
    store = store_cls()
    build_rules(store, USERS, random.Random(0))
    return EnforcementEngine(store=store, context=EvaluationContext(spatial=spatial))


def measure(engine, requests) -> float:
    start = time.perf_counter()
    for request in requests:
        engine.decide(request)
    return (time.perf_counter() - start) / len(requests) * 1e6


def run_ablation():
    requests = make_requests(USERS, REQUESTS, random.Random(3))
    engines = {
        "no index (linear)": engine_for(LinearRuleStore),
        "policy buckets only": engine_for(PolicyBucketsOnly),
        "full index": engine_for(PolicyIndex),
    }
    # Equivalence first: every variant must decide identically.
    reference = [engines["no index (linear)"].decide(r).resolution for r in requests[:50]]
    for name, engine in engines.items():
        if name == "no index (linear)":
            continue
        for request, expected in zip(requests[:50], reference):
            assert engine.decide(request).resolution == expected, name
    return {name: measure(engine, requests) for name, engine in engines.items()}


def test_ablation_index_variants(benchmark):
    timings = benchmark.pedantic(run_ablation, iterations=1, rounds=1)

    baseline = timings["no index (linear)"]
    rows = [
        "%-22s %12.1f us/op   speedup %5.1fx" % (name, micros, baseline / micros)
        for name, micros in timings.items()
    ]
    report("ABL-2: index ablation at %d users" % USERS, rows)

    assert timings["full index"] < timings["policy buckets only"], (
        "per-user preference partitioning must contribute"
    )
    assert timings["full index"] < baseline / 3.0, (
        "the full index must clearly beat the linear scan"
    )
    for name, micros in timings.items():
        benchmark.extra_info[name] = round(micros, 2)
