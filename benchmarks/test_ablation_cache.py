"""ABL-3: decision caching on top of the policy index (Section V-C).

The second "optimizing enforcement" technique: service query streams
are highly repetitive (the same service asks about the same users over
and over), so an exact decision cache -- invalidated on any rule change
and bypassed for time-sensitive rules -- should push the steady-state
decision cost toward a dictionary lookup.

Expected shape: on a repetitive workload the cached engine clearly
beats the plain indexed engine, with a high hit rate; on a
never-repeating workload it degrades gracefully to roughly the indexed
cost.
"""

import random
import time

import pytest

from benchmarks.conftest import report
from repro.core.enforcement.cache import CachingEnforcementEngine
from repro.core.enforcement.engine import EnforcementEngine
from repro.core.policy.conditions import EvaluationContext
from repro.core.reasoner.index import PolicyIndex
from repro.spatial.model import build_simple_building

from benchmarks.test_scale_enforcement import build_rules, make_requests

USERS = 500


def engines():
    spatial = build_simple_building("b", 2, 4)
    plain_store, cached_store = PolicyIndex(), PolicyIndex()
    build_rules(plain_store, USERS, random.Random(0))
    build_rules(cached_store, USERS, random.Random(0))
    plain = EnforcementEngine(
        store=plain_store, context=EvaluationContext(spatial=spatial)
    )
    cached = CachingEnforcementEngine(
        store=cached_store, context=EvaluationContext(spatial=spatial)
    )
    return plain, cached


def measure(engine, requests) -> float:
    start = time.perf_counter()
    for request in requests:
        engine.decide(request)
    return (time.perf_counter() - start) / len(requests) * 1e6


def run_ablation():
    plain, cached = engines()
    rng = random.Random(4)

    # Repetitive workload: queries about 20 hot users, repeated.
    hot = make_requests(20, 50, rng)
    repetitive = [hot[rng.randrange(len(hot))] for _ in range(3000)]
    # Cold workload: every request about a different user.
    cold = make_requests(USERS, 3000, rng)

    # Equivalence check on a mixed sample.
    for request in (repetitive[:50] + cold[:50]):
        assert plain.decide(request).resolution == cached.decide(request).resolution

    results = {
        "index, repetitive": measure(plain, repetitive),
        "index+cache, repetitive": measure(cached, repetitive),
        "index, cold": measure(plain, cold),
        "index+cache, cold": measure(cached, cold),
    }
    return results, cached.cache_stats()


def test_ablation_decision_cache(benchmark):
    results, stats = benchmark.pedantic(run_ablation, iterations=1, rounds=1)

    rows = ["%-26s %10.2f us/op" % (name, micros) for name, micros in results.items()]
    rows.append(
        "cache: %d hits, %d misses, hit rate %.0f%%"
        % (stats["hits"], stats["misses"], stats["hit_rate"] * 100)
    )
    report("ABL-3: decision cache at %d users" % USERS, rows)

    assert results["index+cache, repetitive"] < results["index, repetitive"] / 2.0, (
        "cache must clearly win on repetitive traffic"
    )
    assert results["index+cache, cold"] < results["index, cold"] * 3.0, (
        "cache must degrade gracefully on cold traffic"
    )
    assert stats["hit_rate"] > 0.5
    for name, micros in results.items():
        benchmark.extra_info[name] = round(micros, 2)
