"""SCALE-2: sustained observation ingest of the full DBH inventory.

Runs the complete Section-II sensor fleet (40 cameras, 60 APs, 200
beacons, 100 power meters, plus the per-room comfort loop) against a
populated building, with capture-phase enforcement on and off, and
reports the throughput and the overhead of privacy compliance.

Expected shape: enforcement adds a bounded constant-factor overhead
relative to a do-nothing ingest (the raw baseline stores blindly and
pays for nothing else), while dropping the unauthorized streams -- the
cost Section V-C says must be "minimized", not zero.  The absolute
number is the practical bound: enforced ingest must stay far above the
observation rate a real building of this size produces (hundreds of
observations per second).
"""

import time

import pytest

from benchmarks.conftest import report
from repro.core.policy import catalog
from repro.spatial.model import SpaceType
from repro.simulation.dbh import BUILDING_ID, make_dbh_tippers
from repro.simulation.inhabitants import generate_inhabitants
from repro.simulation.mobility import BuildingWorld

POPULATION = 40
TICKS = 12
TICK_SPACING_S = 120.0
NOON = 12 * 3600.0


def build_setup(enforce_capture: bool, storage=None):
    tippers = make_dbh_tippers(enforce_capture=enforce_capture, storage=storage)
    rooms = [s.space_id for s in tippers.spatial.spaces_of_type(SpaceType.ROOM)]
    tippers.define_policy(catalog.policy_1_comfort(rooms))
    tippers.define_policy(catalog.policy_2_emergency_location(BUILDING_ID))
    tippers.define_policy(catalog.policy_service_sharing(BUILDING_ID))
    inhabitants = generate_inhabitants(tippers.spatial, POPULATION, seed=5)
    for person in inhabitants:
        tippers.add_user(person.profile)
    world = BuildingWorld(tippers.spatial, inhabitants, seed=5)
    return tippers, world


def run_ingest(tippers, world) -> dict:
    start = time.perf_counter()
    for tick in range(TICKS):
        now = NOON + tick * TICK_SPACING_S
        world.step(now)
        tippers.tick(now, world)
    elapsed = time.perf_counter() - start
    stats = tippers.sensor_manager.stats
    return {
        "elapsed_s": elapsed,
        "sampled": stats.sampled,
        "stored": stats.stored,
        "dropped": stats.dropped_capture + stats.dropped_storage,
        "sampled_per_s": stats.sampled / elapsed,
    }


def test_scale_ingest_overhead(benchmark):
    results = benchmark.pedantic(_run_both, iterations=1, rounds=1)
    enforced, raw = results

    overhead = (
        (raw["sampled_per_s"] / enforced["sampled_per_s"])
        if enforced["sampled_per_s"]
        else float("inf")
    )
    rows = [
        "%-24s %12s %12s" % ("", "enforced", "raw"),
        "%-24s %12d %12d" % ("observations sampled", enforced["sampled"], raw["sampled"]),
        "%-24s %12d %12d" % ("observations stored", enforced["stored"], raw["stored"]),
        "%-24s %12d %12d" % ("observations dropped", enforced["dropped"], raw["dropped"]),
        "%-24s %10.0f/s %10.0f/s" % ("ingest throughput", enforced["sampled_per_s"], raw["sampled_per_s"]),
        "privacy-compliance overhead: %.2fx" % overhead,
    ]
    report("SCALE-2: full-inventory ingest, enforcement on vs off", rows)

    # Shape assertions.
    assert enforced["sampled"] == raw["sampled"], "same physical world"
    assert enforced["stored"] < raw["stored"], "unauthorized streams dropped"
    assert enforced["dropped"] > 0
    assert raw["dropped"] == 0
    assert overhead < 30.0, "compliance overhead must stay a bounded constant"
    assert enforced["sampled_per_s"] > 2000, (
        "enforced ingest must comfortably exceed a real building's "
        "observation rate"
    )

    benchmark.extra_info["overhead_factor"] = round(overhead, 3)
    benchmark.extra_info["stored_enforced"] = enforced["stored"]
    benchmark.extra_info["stored_raw"] = raw["stored"]


def _run_both():
    enforced = run_ingest(*build_setup(enforce_capture=True))
    raw = run_ingest(*build_setup(enforce_capture=False))
    return enforced, raw


def test_scale_ingest_wal_overhead(benchmark, tmp_path):
    """SCALE-2b: the price of durability -- WAL-on vs WAL-off ingest.

    Both runs enforce capture; the only difference is whether every
    stored observation is write-ahead-logged first.  The ``storage_*``
    counters land in the session metric baseline, so with
    ``REPRO_METRICS_OUT`` set the WAL append/byte counts are exported
    alongside the throughput numbers for before/after diffing.
    """
    from repro.storage.durable import StorageEngine

    engine = StorageEngine(str(tmp_path), segment_bytes=4 * 1024 * 1024)

    def _run_wal_pair():
        durable = run_ingest(*build_setup(enforce_capture=True, storage=engine))
        plain = run_ingest(*build_setup(enforce_capture=True))
        return durable, plain

    durable, plain = benchmark.pedantic(_run_wal_pair, iterations=1, rounds=1)
    engine.close()

    overhead = (
        (plain["sampled_per_s"] / durable["sampled_per_s"])
        if durable["sampled_per_s"]
        else float("inf")
    )
    rows = [
        "%-24s %12s %12s" % ("", "wal on", "wal off"),
        "%-24s %12d %12d" % ("observations stored", durable["stored"], plain["stored"]),
        "%-24s %10.0f/s %10.0f/s"
        % ("ingest throughput", durable["sampled_per_s"], plain["sampled_per_s"]),
        "wal frames appended: %d in %d segment(s)"
        % (engine.wal.appends, len(engine.wal.segment_paths())),
        "durability overhead: %.2fx" % overhead,
    ]
    report("SCALE-2b: enforced ingest, WAL on vs off", rows)

    # Shape assertions.
    assert durable["stored"] == plain["stored"], "durability must not change policy"
    assert engine.wal.appends >= durable["stored"], "every store was logged first"
    assert overhead < 20.0, "the WAL must stay a bounded constant factor"

    benchmark.extra_info["wal_overhead_factor"] = round(overhead, 3)
    benchmark.extra_info["wal_appends"] = engine.wal.appends


def test_scale_ingest_enforced_tick_benchmark(benchmark):
    """pytest-benchmark datapoint: one enforced capture sweep."""
    tippers, world = build_setup(enforce_capture=True)
    state = {"tick": 0}

    def one_tick():
        now = NOON + state["tick"] * TICK_SPACING_S
        state["tick"] += 1
        world.step(now)
        tippers.tick(now, world)

    benchmark(one_tick)
    benchmark.extra_info["sensors"] = tippers.sensor_manager.count()
