"""SCALE-1: enforcement cost vs. number of users and policies.

Section V-C: "With large number of users, services, policies, and
preferences the cost of enforcement can be large enough to be
prohibitive in any real setting.  To overcome this challenge, we are
working on techniques for optimizing enforcement."

This benchmark quantifies that claim on our implementation: per-request
decision latency under a naive linear rule scan vs. the bucketed policy
index, as the population grows.  Expected shape: linear cost grows with
the rule count; indexed cost stays nearly flat, so the speedup factor
grows with scale.
"""

import random
import time

import pytest

from benchmarks.conftest import report
from repro.core.enforcement.engine import EnforcementEngine
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.conditions import EvaluationContext
from repro.core.policy.preference import UserPreference
from repro.core.reasoner.index import LinearRuleStore, PolicyIndex
from repro.spatial.model import build_simple_building

CATEGORIES = [
    DataCategory.LOCATION,
    DataCategory.PRESENCE,
    DataCategory.OCCUPANCY,
    DataCategory.ENERGY_USE,
    DataCategory.MEETING_DETAILS,
]


def build_rules(store, users: int, rng: random.Random) -> int:
    """Populate ``store`` with building policies and per-user preferences."""
    store.add_policy(catalog.policy_2_emergency_location("b"))
    store.add_policy(catalog.policy_service_sharing("b"))
    store.add_policy(catalog.policy_1_comfort(["b-1001", "b-1002"]))
    rules = 3
    for index in range(users):
        user_id = "user-%05d" % index
        for pref_no in range(3):
            category = rng.choice(CATEGORIES)
            store.add_preference(
                UserPreference(
                    preference_id="%s-p%d" % (user_id, pref_no),
                    user_id=user_id,
                    description="generated",
                    effect=rng.choice([Effect.ALLOW, Effect.DENY]),
                    categories=(category,),
                    phases=(DecisionPhase.SHARING,),
                    granularity_cap=rng.choice(list(GranularityLevel)),
                )
            )
            rules += 1
    return rules


def make_requests(users: int, count: int, rng: random.Random):
    return [
        DataRequest(
            requester_id="svc",
            requester_kind=RequesterKind.BUILDING_SERVICE,
            phase=DecisionPhase.SHARING,
            category=rng.choice(CATEGORIES),
            subject_id="user-%05d" % rng.randrange(users),
            space_id="b-1001",
            timestamp=float(rng.randrange(86400)),
            purpose=Purpose.PROVIDING_SERVICE,
        )
        for _ in range(count)
    ]


def engine_with(store_cls, users: int, seed: int = 0, compiled: bool = False):
    spatial = build_simple_building("b", 2, 4)
    store = store_cls()
    rng = random.Random(seed)
    rules = build_rules(store, users, rng)
    engine = EnforcementEngine(
        store=store, context=EvaluationContext(spatial=spatial), compiled=compiled
    )
    return engine, rules


def measure(engine, requests) -> float:
    """Mean microseconds per decision."""
    start = time.perf_counter()
    for request in requests:
        engine.decide(request)
    return (time.perf_counter() - start) / len(requests) * 1e6


def test_scale_enforcement_crossover(benchmark):
    """The series the paper's Section V-C predicts: linear scan blows
    up with population, the index stays flat."""
    benchmark.pedantic(_run_crossover, iterations=1, rounds=1)


def _run_crossover():
    rng = random.Random(1)
    rows = ["%8s %8s %14s %14s %9s" % ("users", "rules", "linear us/op", "index us/op", "speedup")]
    speedups = {}
    for users in (10, 100, 1000):
        requests = make_requests(users, 300, rng)
        linear_engine, rules = engine_with(LinearRuleStore, users)
        index_engine, _ = engine_with(PolicyIndex, users)

        # Decisions must be identical before timing means anything.
        for request in requests[:50]:
            a = linear_engine.decide(request).resolution
            b = index_engine.decide(request).resolution
            assert a == b, "index changed a decision"

        linear_us = measure(linear_engine, requests)
        index_us = measure(index_engine, requests)
        speedups[users] = linear_us / index_us
        rows.append(
            "%8d %8d %14.1f %14.1f %8.1fx"
            % (users, rules, linear_us, index_us, speedups[users])
        )
    report("SCALE-1: enforcement decision latency (linear vs index)", rows)

    # Shape assertions: the index wins at scale, and its advantage grows.
    assert speedups[1000] > 5.0, "index should dominate at 1000 users"
    assert speedups[1000] > speedups[10], "speedup should grow with scale"


def batched_p50(engine, requests, batch: int = 25, passes: int = 7) -> float:
    """Median per-decide microseconds, timed in batches.

    Per-call ``perf_counter`` overhead is on the order of a compiled
    table hit, so per-sample timing would distort the fast engine;
    batching amortizes it, and the C-driven ``map`` keeps interpreter
    loop overhead out of the measurement.  All of one engine's passes
    run back-to-back (interleaving engines evicts the fast engine's
    warm cache lines).  Noise is additive, so the minimum of the
    per-pass medians is the best point estimate.
    """
    import statistics
    from collections import deque

    drain = deque(maxlen=0)
    decide = engine.decide
    best = float("inf")
    for _ in range(passes):
        samples = []
        for index in range(0, len(requests), batch):
            chunk = requests[index : index + batch]
            start = time.perf_counter()
            drain.extend(map(decide, chunk))
            samples.append((time.perf_counter() - start) / len(chunk))
        best = min(best, statistics.median(samples))
    return best * 1e6


def test_scale_enforcement_compiled_speedup(benchmark):
    """Compiled decision tables must beat the interpreter >= 10x on warm
    rows (the acceptance gate recorded as BENCH_0002)."""
    benchmark.pedantic(_run_compiled_speedup, iterations=1, rounds=1)


def _run_compiled_speedup():
    users, count = 300, 2000
    requests = make_requests(users, count, random.Random(2))
    reference, rules = engine_with(PolicyIndex, users)
    compiled, _ = engine_with(PolicyIndex, users, compiled=True)

    # Equivalence before timing: warm every row through both engines and
    # insist on identical resolutions (the differential suite proves the
    # general case; this keeps the perf number honest in-run).
    for request in requests:
        a = compiled.decide(request).resolution
        b = reference.decide(request).resolution
        assert a == b, "compiled engine changed a decision"
    assert compiled.hits + compiled.misses + compiled.uncacheable == count

    reference_us = batched_p50(reference, requests)
    compiled_us = batched_p50(compiled, requests)
    speedup = reference_us / compiled_us
    stats = compiled.table_stats()
    report(
        "SCALE-1b: compiled decision tables (%d users, %d rules)"
        % (users, rules),
        [
            "interpreter p50: %.2f us/op" % reference_us,
            "compiled p50:    %.2f us/op" % compiled_us,
            "speedup:         %.1fx" % speedup,
            "table: %d rows in %d shards, hit rate %.3f"
            % (stats["rows"], stats["shards"], stats["hit_rate"]),
        ],
    )
    assert speedup >= 10.0, (
        "compiled enforcement must be >= 10x the interpreter on warm rows "
        "(measured %.1fx)" % speedup
    )


def test_scale_enforcement_indexed_benchmark(benchmark):
    """pytest-benchmark datapoint: indexed decision at 1000 users."""
    engine, rules = engine_with(PolicyIndex, 1000)
    requests = make_requests(1000, 1000, random.Random(2))
    iterator = iter(requests * 1000)

    def one_decision():
        engine.decide(next(iterator))

    benchmark(one_decision)
    benchmark.extra_info["rules"] = rules


def test_scale_enforcement_linear_benchmark(benchmark):
    """pytest-benchmark datapoint: linear-scan decision at 1000 users."""
    engine, rules = engine_with(LinearRuleStore, 1000)
    requests = make_requests(1000, 200, random.Random(2))
    iterator = iter(requests * 10000)

    def one_decision():
        engine.decide(next(iterator))

    benchmark(one_decision)
    benchmark.extra_info["rules"] = rules
