"""SCALE-1: enforcement cost vs. number of users and policies.

Section V-C: "With large number of users, services, policies, and
preferences the cost of enforcement can be large enough to be
prohibitive in any real setting.  To overcome this challenge, we are
working on techniques for optimizing enforcement."

This benchmark quantifies that claim on our implementation: per-request
decision latency under a naive linear rule scan vs. the bucketed policy
index, as the population grows.  Expected shape: linear cost grows with
the rule count; indexed cost stays nearly flat, so the speedup factor
grows with scale.
"""

import random
import time

import pytest

from benchmarks.conftest import report
from repro.core.enforcement.engine import EnforcementEngine
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.conditions import EvaluationContext
from repro.core.policy.preference import UserPreference
from repro.core.reasoner.index import LinearRuleStore, PolicyIndex
from repro.spatial.model import build_simple_building

CATEGORIES = [
    DataCategory.LOCATION,
    DataCategory.PRESENCE,
    DataCategory.OCCUPANCY,
    DataCategory.ENERGY_USE,
    DataCategory.MEETING_DETAILS,
]


def build_rules(store, users: int, rng: random.Random) -> int:
    """Populate ``store`` with building policies and per-user preferences."""
    store.add_policy(catalog.policy_2_emergency_location("b"))
    store.add_policy(catalog.policy_service_sharing("b"))
    store.add_policy(catalog.policy_1_comfort(["b-1001", "b-1002"]))
    rules = 3
    for index in range(users):
        user_id = "user-%05d" % index
        for pref_no in range(3):
            category = rng.choice(CATEGORIES)
            store.add_preference(
                UserPreference(
                    preference_id="%s-p%d" % (user_id, pref_no),
                    user_id=user_id,
                    description="generated",
                    effect=rng.choice([Effect.ALLOW, Effect.DENY]),
                    categories=(category,),
                    phases=(DecisionPhase.SHARING,),
                    granularity_cap=rng.choice(list(GranularityLevel)),
                )
            )
            rules += 1
    return rules


def make_requests(users: int, count: int, rng: random.Random):
    return [
        DataRequest(
            requester_id="svc",
            requester_kind=RequesterKind.BUILDING_SERVICE,
            phase=DecisionPhase.SHARING,
            category=rng.choice(CATEGORIES),
            subject_id="user-%05d" % rng.randrange(users),
            space_id="b-1001",
            timestamp=float(rng.randrange(86400)),
            purpose=Purpose.PROVIDING_SERVICE,
        )
        for _ in range(count)
    ]


def engine_with(store_cls, users: int, seed: int = 0):
    spatial = build_simple_building("b", 2, 4)
    store = store_cls()
    rng = random.Random(seed)
    rules = build_rules(store, users, rng)
    engine = EnforcementEngine(
        store=store, context=EvaluationContext(spatial=spatial)
    )
    return engine, rules


def measure(engine, requests) -> float:
    """Mean microseconds per decision."""
    start = time.perf_counter()
    for request in requests:
        engine.decide(request)
    return (time.perf_counter() - start) / len(requests) * 1e6


def test_scale_enforcement_crossover(benchmark):
    """The series the paper's Section V-C predicts: linear scan blows
    up with population, the index stays flat."""
    benchmark.pedantic(_run_crossover, iterations=1, rounds=1)


def _run_crossover():
    rng = random.Random(1)
    rows = ["%8s %8s %14s %14s %9s" % ("users", "rules", "linear us/op", "index us/op", "speedup")]
    speedups = {}
    for users in (10, 100, 1000):
        requests = make_requests(users, 300, rng)
        linear_engine, rules = engine_with(LinearRuleStore, users)
        index_engine, _ = engine_with(PolicyIndex, users)

        # Decisions must be identical before timing means anything.
        for request in requests[:50]:
            a = linear_engine.decide(request).resolution
            b = index_engine.decide(request).resolution
            assert a == b, "index changed a decision"

        linear_us = measure(linear_engine, requests)
        index_us = measure(index_engine, requests)
        speedups[users] = linear_us / index_us
        rows.append(
            "%8d %8d %14.1f %14.1f %8.1fx"
            % (users, rules, linear_us, index_us, speedups[users])
        )
    report("SCALE-1: enforcement decision latency (linear vs index)", rows)

    # Shape assertions: the index wins at scale, and its advantage grows.
    assert speedups[1000] > 5.0, "index should dominate at 1000 users"
    assert speedups[1000] > speedups[10], "speedup should grow with scale"


def test_scale_enforcement_indexed_benchmark(benchmark):
    """pytest-benchmark datapoint: indexed decision at 1000 users."""
    engine, rules = engine_with(PolicyIndex, 1000)
    requests = make_requests(1000, 1000, random.Random(2))
    iterator = iter(requests * 1000)

    def one_decision():
        engine.decide(next(iterator))

    benchmark(one_decision)
    benchmark.extra_info["rules"] = rules


def test_scale_enforcement_linear_benchmark(benchmark):
    """pytest-benchmark datapoint: linear-scan decision at 1000 users."""
    engine, rules = engine_with(LinearRuleStore, 1000)
    requests = make_requests(1000, 200, random.Random(2))
    iterator = iter(requests * 10000)

    def one_decision():
        engine.decide(next(iterator))

    benchmark(one_decision)
    benchmark.extra_info["rules"] = rules
