"""SCALE-4: a simulated week of the whole framework (soak test).

Runs eight simulated days of the full stack -- capture with enforcement,
per-persona IoTA configuration, comfort-control actuation, Concierge
and food-delivery traffic, nightly retention sweeps -- and reports the
system-level totals.

Expected shape: capture enforcement drops a large share of samples
(streams no policy authorizes, plus opted-out users); the per-persona
settings split matches the Westin mix (most users opt in, the
fundamentalist minority opts out); retention purges begin once the
7-day motion-sensor bound is crossed; and some noon service queries are
denied -- exactly the opted-out fraction.
"""

import pytest

from benchmarks.conftest import report
from repro.simulation.longrun import run_week

DAYS = 8
POPULATION = 24
TICKS_PER_DAY = 16


def test_scale_week_soak(benchmark):
    result = benchmark.pedantic(
        run_week,
        kwargs=dict(
            days=DAYS,
            population=POPULATION,
            ticks_per_day=TICKS_PER_DAY,
            seed=9,
        ),
        iterations=1,
        rounds=1,
    )

    rows = [
        "simulated days:            %d (x%d capture sweeps)" % (DAYS, TICKS_PER_DAY),
        "population:                %d" % POPULATION,
        "observations sampled:      %d" % result.observations_sampled,
        "observations stored:       %d (%.0f%% of sampled)"
        % (
            result.observations_stored,
            100.0 * result.observations_stored / max(1, result.observations_sampled),
        ),
        "observations purged:       %d (retention sweeps)" % result.observations_purged,
        "service queries:           %d (%.0f%% denied)"
        % (result.queries_total, 100.0 * result.denial_rate),
        "lunch deliveries:          %d of %d attempted"
        % (result.deliveries_made, result.deliveries_attempted),
        "HVAC actuations:           %d" % result.hvac_actuations,
        "IoTA location selections:  %s" % dict(sorted(result.selections.items())),
        "audit totals:              %s" % result.audit_summary,
    ]
    report("SCALE-4: week-in-the-life soak run", rows)

    # Shape assertions.
    assert result.observations_sampled > 0
    assert result.observations_stored < result.observations_sampled, (
        "capture enforcement must drop unauthorized streams"
    )
    assert result.observations_purged > 0, (
        "the 7-day retention bound must purge by day 8"
    )
    assert result.selections.get("off", 0) > 0, (
        "some fundamentalists must opt out"
    )
    assert result.selections.get("fine", 0) > result.selections.get("off", 0), (
        "Westin mix: opt-ins outnumber opt-outs"
    )
    assert result.hvac_actuations > 0
    assert result.audit_summary["total"] > 0

    benchmark.extra_info["stored"] = result.observations_stored
    benchmark.extra_info["purged"] = result.observations_purged
    benchmark.extra_info["selections"] = result.selections
