"""FIG-1: the ten-step interaction of the paper's Figure 1.

Regenerates the full interaction between building admin, TIPPERS,
sensors, IRR, IoTA, and a service on the synthetic DBH, reports
per-step latencies, and verifies the paper's walked-through outcome:
the step-10 query is rejected once Mary's IoTA opts her out.
"""

import pytest

from benchmarks.conftest import report
from repro.simulation.scenario import run_figure1_scenario


def test_fig1_interaction_benchmark(benchmark):
    result = benchmark.pedantic(
        run_figure1_scenario,
        kwargs=dict(population=20, mary_persona="fundamentalist", capture_ticks=5),
        iterations=1,
        rounds=3,
    )

    rows = [
        "step %2d  %-48s %8.2f ms" % (step, title, elapsed * 1000.0)
        for step, title, elapsed, _ in result.as_rows()
    ]
    rows.append("notifications shown to Mary: %d" % result.notifications)
    rows.append("conflicts reported:          %d" % len(result.conflicts))
    rows.append(
        "service query before opt-out: %s"
        % ("ALLOWED" if result.location_allowed_before_optout else "DENIED")
    )
    rows.append(
        "service query after opt-out:  %s"
        % ("ALLOWED" if result.location_allowed_after_optout else "DENIED")
    )
    report("FIG-1: Figure 1 interaction (per-step latency)", rows)

    # The paper's walked-through outcome (Section II-C).
    assert result.location_allowed_before_optout is True
    assert result.location_allowed_after_optout is False
    assert result.notifications > 0
    assert any("hard conflict" in c for c in result.conflicts)

    benchmark.extra_info["notifications"] = result.notifications
    benchmark.extra_info["conflicts"] = len(result.conflicts)
    benchmark.extra_info["observations_stored"] = result.observations_stored
