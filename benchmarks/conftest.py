"""Shared helpers for the benchmark harness.

Each benchmark regenerates one artifact of the paper (see DESIGN.md's
experiment index) and prints the rows/series it reports, so running

    pytest benchmarks/ --benchmark-only -s

reproduces every figure-shaped result in one go.
"""

from __future__ import annotations

import sys


def report(title: str, lines) -> None:
    """Print a labelled result block (visible with -s / in bench logs)."""
    print()
    print("== %s ==" % title)
    for line in lines:
        print("   %s" % line)
    sys.stdout.flush()
