"""Shared helpers for the benchmark harness.

Each benchmark regenerates one artifact of the paper (see DESIGN.md's
experiment index) and prints the rows/series it reports, so running

    pytest benchmarks/ --benchmark-only -s

reproduces every figure-shaped result in one go.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.obs import get_registry


def report(title: str, lines) -> None:
    """Print a labelled result block (visible with -s / in bench logs)."""
    print()
    print("== %s ==" % title)
    for line in lines:
        print("   %s" % line)
    sys.stdout.flush()


@pytest.fixture(scope="session", autouse=True)
def metrics_baseline():
    """Emit the default-registry metric baseline after a benchmark run.

    Every benchmark engine/bus/manager reports into the process-wide
    default registry, so after the session the registry holds the
    aggregate metric baseline for the run.  It is printed (visible with
    ``-s``) and, when ``REPRO_METRICS_OUT`` is set, written there as
    JSON so perf PRs can diff before/after snapshots.
    """
    yield
    registry = get_registry()
    lines = registry.render()
    if not lines:
        return
    out_path = os.environ.get("REPRO_METRICS_OUT")
    if out_path:
        # Atomic write: an interrupted run must never leave a truncated
        # snapshot where a complete one is expected.
        tmp_path = out_path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(registry.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, out_path)
        lines = lines + ["(snapshot written to %s)" % out_path]
    report("metric baseline (default registry, whole session)", lines)
