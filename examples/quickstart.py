"""Quickstart: a privacy-aware building in ~60 lines.

Builds a small smart building, defines the paper's Policy 2 (location
stored for emergency response) plus a service-sharing policy, walks one
user through the building, and shows how her opt-out changes what a
service can learn -- steps (1), (2-3), (8), (9-10) of the paper's
Figure 1.

Run:  python examples/quickstart.py
"""

from repro.core.policy import catalog
from repro.core.policy.base import RequesterKind
from repro.sensors.environment import EnvironmentView, PresentDevice
from repro.spatial.model import build_simple_building
from repro.tippers import TIPPERS
from repro.users.profile import UserProfile


class OneRoomWorld(EnvironmentView):
    """Mary sits in room 1001 with her phone."""

    def devices_in(self, space_id):
        if space_id == "demo-1001":
            return [PresentDevice(person_id="mary", device_mac="aa:bb:cc:dd:ee:ff")]
        return []


def main() -> None:
    # A 2-floor building with 4 rooms per floor.
    spatial = build_simple_building("demo", floors=2, rooms_per_floor=4)
    tippers = TIPPERS(spatial, "demo", owner_name="Demo University")

    # (1) The building admin defines policies.
    tippers.define_policy(catalog.policy_2_emergency_location("demo"))
    tippers.define_policy(catalog.policy_service_sharing("demo"))

    # The building knows its inhabitants and their devices.
    tippers.add_user(
        UserProfile(
            user_id="mary",
            name="Mary",
            groups=frozenset({"faculty"}),
            office_id="demo-1001",
            device_macs=("aa:bb:cc:dd:ee:ff",),
        )
    )
    tippers.deploy_sensor("wifi_access_point", "ap-1", "demo-1001")

    # (2-3) Sensors capture data; TIPPERS stores what policy allows.
    world = OneRoomWorld()
    stats = tippers.tick(now=100.0, environment=world)
    print("captured:", stats)

    # (9-10) A service asks for Mary's location -- allowed for now.
    response = tippers.locate_user(
        "concierge", RequesterKind.BUILDING_SERVICE, "mary", now=120.0
    )
    print("before opt-out:", response.allowed, "->", response.value)

    # (8) Mary's IoT Assistant submits her preference: never share
    # location.  The building reports the conflict with the mandatory
    # emergency policy.
    conflicts = tippers.submit_preference(catalog.preference_2_no_location("mary"))
    print("conflicts reported to Mary's IoTA:")
    for conflict in conflicts:
        print("  -", conflict.describe())

    # (9-10 again) The same query is now rejected.
    response = tippers.locate_user(
        "concierge", RequesterKind.BUILDING_SERVICE, "mary", now=200.0
    )
    print("after opt-out:", response.allowed, "| reasons:", "; ".join(response.reasons))

    # The audit log shows every decision the building took.
    print("audit summary:", tippers.audit.summary())


if __name__ == "__main__":
    main()
