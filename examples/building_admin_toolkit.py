"""The building admin's toolkit: lint, auto-provision, audit, erase.

The paper's Section V lists the open problems of running a
privacy-aware building day to day.  This example walks an admin through
the corresponding tools:

1. *Policy linting* (Section V-A): a deliberately sloppy policy set is
   analyzed before activation; the linter catches the shadowed policy,
   the unbounded retention, and the sensor nobody authorized.
2. *Automated IRR setup* (Section V-B): the registry is provisioned
   from Manufacturer Usage Descriptions instead of hand-written
   documents -- one advertisement per deployed sensor type.
3. *Transparency* : a subject access report shows one inhabitant
   everything the building holds about her, and an erasure request
   wipes it (leaving an audit trail that it happened).

Run:  python examples/building_admin_toolkit.py
"""

import dataclasses

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import DecisionPhase, Effect
from repro.core.policy.building import BuildingPolicy
from repro.core.reasoner.analysis import analyze_policies, errors_only
from repro.irr.mud import auto_provision
from repro.irr.registry import IoTResourceRegistry
from repro.simulation.dbh import BUILDING_ID, make_dbh_tippers
from repro.simulation.inhabitants import generate_inhabitants
from repro.simulation.mobility import BuildingWorld
from repro.tippers.dsar import erase_subject, subject_access_report

NOON = 12 * 3600.0


def main() -> None:
    tippers = make_dbh_tippers()

    # ------------------------------------------------------------ 1
    print("== 1. Linting a draft policy set ==")
    draft = [
        catalog.policy_2_emergency_location(BUILDING_ID),
        # Oops: a blanket deny that shadows the research policy below.
        BuildingPolicy(
            policy_id="deny-research",
            name="No research data",
            description="d",
            effect=Effect.DENY,
            purposes=(Purpose.RESEARCH,),
        ),
        BuildingPolicy(
            policy_id="research-collection",
            name="Research data collection",
            description="d",
            categories=(DataCategory.LOCATION,),
            purposes=(Purpose.RESEARCH,),
            granularity=GranularityLevel.PRECISE,  # also over-collection
            phases=(DecisionPhase.CAPTURE, DecisionPhase.STORAGE),
        ),
        # Oops: personal data with no retention bound.
        BuildingPolicy(
            policy_id="camera-security",
            name="Cameras for security",
            description="d",
            categories=(DataCategory.PRESENCE,),
            sensor_types=("camera",),
            purposes=(Purpose.SECURITY,),
        ),
    ]
    deployed = {s.sensor_type for s in tippers.sensor_manager.sensors()}
    findings = analyze_policies(draft, deployed_sensor_types=deployed)
    for finding in findings:
        print("  ", finding)
    print("   -> %d findings (%d errors); fix before activation"
          % (len(findings), len(errors_only(findings))))

    # Activate a clean set instead.
    tippers.define_policy(catalog.policy_2_emergency_location(BUILDING_ID))
    tippers.define_policy(catalog.policy_service_sharing(BUILDING_ID))
    tippers.define_policy(
        dataclasses.replace(draft[3], retention=catalog.policy_2_emergency_location(BUILDING_ID).retention)
    )

    # ------------------------------------------------------------ 2
    print()
    print("== 2. Auto-provisioning the IRR from MUD profiles ==")
    registry = IoTResourceRegistry("irr-dbh", tippers.spatial)
    published = auto_provision(registry, tippers)
    for advertisement in published:
        resource = advertisement.resource_document().resources[0]
        retention = resource.retention.isoformat() if resource.retention else "unbounded"
        settings = "configurable" if advertisement.settings is not None else "fixed"
        print("   %-28s retention=%-5s %s" % (resource.sensor_type, retention, settings))
    print("   -> %d advertisements published without hand-authoring" % len(published))

    # ------------------------------------------------------------ 3
    print()
    print("== 3. Subject access and erasure ==")
    inhabitants = generate_inhabitants(tippers.spatial, 10, seed=2)
    for person in inhabitants:
        tippers.add_user(person.profile)
    world = BuildingWorld(tippers.spatial, inhabitants, seed=2)
    for tick in range(5):
        now = NOON + tick * 60.0
        world.step(now)
        tippers.tick(now, world)
    mary = inhabitants[0].user_id
    report = subject_access_report(tippers, mary, NOON + 400.0)
    for line in report.summary_lines():
        print("  ", line)
    receipt = erase_subject(tippers, mary, NOON + 500.0, withdraw_preferences=True)
    print("   erasure: %d observations deleted" % receipt.erased_observations)
    after = subject_access_report(tippers, mary, NOON + 600.0)
    print("   observations remaining afterwards:", after.observations_total)


if __name__ == "__main__":
    main()
