"""The Section II-A inference attack, and how enforcement blunts it.

The paper motivates privacy-aware buildings with this attack: WiFi
association logs ("just MAC addresses and timestamps") plus simple
heuristics reveal whether someone is staff, faculty, or a grad student.

This example simulates several working days of Donald Bren Hall, runs
the role-inference attack on the stored data, and then repeats the run
with users opted into de-identified (aggregate) capture -- the
building keeps anonymous head-count data, but the per-person timing
patterns the attack feeds on are gone.

Run:  python examples/inference_attack.py
"""

import dataclasses

from repro.core.language.vocabulary import DataCategory, GranularityLevel
from repro.core.policy import catalog
from repro.core.policy.base import DecisionPhase, Effect
from repro.core.policy.preference import UserPreference
from repro.simulation.dbh import BUILDING_ID, make_dbh_tippers
from repro.simulation.inhabitants import generate_inhabitants
from repro.simulation.mobility import BuildingWorld

DAYS = 3
TICKS_PER_DAY = 48  # one capture sweep every 30 simulated minutes
POPULATION = 30


def simulate(deidentify: bool) -> dict:
    """Run the simulation; optionally cap everyone at AGGREGATE capture."""
    tippers = make_dbh_tippers()
    # This building's admin makes location collection *negotiable*
    # (mandatory=False): a mandatory emergency policy would override
    # user granularity caps under the NEGOTIATE strategy, which is
    # exactly the Policy-2-vs-Preference-2 conflict the other examples
    # demonstrate.
    tippers.define_policy(
        dataclasses.replace(
            catalog.policy_2_emergency_location(BUILDING_ID), mandatory=False
        )
    )
    tippers.define_policy(catalog.policy_service_sharing(BUILDING_ID))
    inhabitants = generate_inhabitants(tippers.spatial, POPULATION, seed=11)
    for person in inhabitants:
        tippers.add_user(person.profile)
        if deidentify:
            tippers.submit_preference(
                UserPreference(
                    preference_id="deid:%s" % person.user_id,
                    user_id=person.user_id,
                    description="capture my data de-identified only",
                    effect=Effect.ALLOW,
                    categories=(DataCategory.LOCATION,),
                    phases=(DecisionPhase.CAPTURE, DecisionPhase.STORAGE),
                    granularity_cap=GranularityLevel.AGGREGATE,
                )
            )
    world = BuildingWorld(tippers.spatial, inhabitants, seed=11)

    for day in range(DAYS):
        for tick in range(TICKS_PER_DAY):
            now = day * 86400.0 + tick * (86400.0 / TICKS_PER_DAY)
            world.step(now)
            tippers.tick(now, world)

    # The attack: guess each person's role from arrival/departure times.
    correct = 0
    attempted = 0
    for person in inhabitants:
        truth = next(iter(person.profile.groups))
        guess = tippers.inference.guess_role(person.user_id)
        if guess is None:
            continue
        attempted += 1
        if guess == truth:
            correct += 1
    return {
        "stored": tippers.datastore.count(),
        "attempted": attempted,
        "correct": correct,
        "population": POPULATION,
    }


def main() -> None:
    print("Simulating %d days of DBH with %d inhabitants..." % (DAYS, POPULATION))
    precise = simulate(deidentify=False)
    coarse = simulate(deidentify=True)

    print()
    print("%-34s %14s %14s" % ("", "precise", "de-identified"))
    print("-" * 64)
    print("%-34s %14d %14d" % ("observations stored", precise["stored"], coarse["stored"]))
    print(
        "%-34s %13d/%d %13d/%d"
        % (
            "role guesses attempted",
            precise["attempted"], precise["population"],
            coarse["attempted"], coarse["population"],
        )
    )
    print(
        "%-34s %14s %14s"
        % (
            "roles guessed correctly",
            "%d (%.0f%%)" % (
                precise["correct"],
                100.0 * precise["correct"] / max(1, precise["attempted"]),
            ),
            "%d (%.0f%%)" % (
                coarse["correct"],
                100.0 * coarse["correct"] / max(1, coarse["attempted"]),
            ),
        )
    )
    print()
    print("With de-identified capture the building still sees anonymous")
    print("readings (enough for head-counts and comfort control), but the")
    print("per-person timing patterns the attack feeds on are gone.")


if __name__ == "__main__":
    main()
