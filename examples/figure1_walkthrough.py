"""Figure 1, end to end, on the synthetic Donald Bren Hall.

Runs all ten interaction steps between the building admin, TIPPERS, the
sensors, the IoT Resource Registry, Mary's IoT Assistant, and a
service, and prints what happened at each step -- including the
conflict between Policy 2 (mandatory location collection) and Mary's
learned opt-out, and the step-10 rejection of the service query.

Run:  python examples/figure1_walkthrough.py
"""

from repro.simulation.scenario import run_figure1_scenario


def main() -> None:
    report = run_figure1_scenario(population=25, mary_persona="fundamentalist")

    print("=" * 72)
    print("Figure 1 walkthrough (synthetic Donald Bren Hall)")
    print("=" * 72)
    for step in report.steps:
        print("step %2d | %-48s %7.3fs" % (step.step, step.title, step.elapsed_s))
        print("        |   %s" % step.detail)
    print("-" * 72)
    print("notifications shown to Mary:      ", report.notifications)
    print("conflicts reported to her IoTA:")
    for conflict in report.conflicts:
        print("   -", conflict)
    print("service query before her opt-out: ", "ALLOWED" if report.location_allowed_before_optout else "DENIED")
    print("service query after her opt-out:  ", "ALLOWED" if report.location_allowed_after_optout else "DENIED")
    print("observations stored:              ", report.observations_stored)
    print("audit summary:                    ", report.audit_summary)


if __name__ == "__main__":
    main()
