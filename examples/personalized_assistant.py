"""Personalized privacy assistants for three kinds of users.

Trains an IoT Assistant preference model for each Westin persona
(unconcerned / pragmatist / fundamentalist) from synthetic labeled
decisions, then shows:

- how accurately each model predicts held-out decisions,
- which location-sharing setting each assistant picks (Figure 4's
  fine / coarse / off choice),
- how many of the building's advertised practices each assistant
  surfaces as notifications (the Section V-B fatigue trade-off).

Run:  python examples/personalized_assistant.py
"""

from repro.core.policy.settings import location_settings_space
from repro.iota.notifications import NotificationManager
from repro.iota.personas import PERSONAS, generate_decisions
from repro.iota.preference_model import DataPractice, PreferenceModel
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose


ADVERTISED_PRACTICES = [
    ("WiFi location for emergencies", DataPractice(DataCategory.LOCATION, Purpose.EMERGENCY_RESPONSE, retention_days=180)),
    ("Camera presence for security", DataPractice(DataCategory.PRESENCE, Purpose.SECURITY, retention_days=30)),
    ("Occupancy for comfort (HVAC)", DataPractice(DataCategory.OCCUPANCY, Purpose.COMFORT, retention_days=7)),
    ("Energy use for energy management", DataPractice(DataCategory.ENERGY_USE, Purpose.ENERGY_MANAGEMENT, retention_days=365)),
    ("Location shared for research", DataPractice(DataCategory.LOCATION, Purpose.RESEARCH, retention_days=365)),
    ("Identity for marketing (3rd party)", DataPractice(DataCategory.IDENTITY, Purpose.MARKETING, third_party=True)),
]


def main() -> None:
    space = location_settings_space()
    print("%-16s %8s %10s %14s %s" % ("persona", "accuracy", "setting", "notifications", "notified about"))
    print("-" * 90)
    for name, persona in PERSONAS.items():
        train = generate_decisions(persona, 200, seed=1)
        test = generate_decisions(persona, 100, seed=2)
        model = PreferenceModel().fit(train)
        accuracy = model.accuracy(test)

        # Which Figure-4 setting does the assistant choose?
        group = space.group("location")
        preferred = model.preferred_granularity(
            DataCategory.LOCATION,
            Purpose.PROVIDING_SERVICE,
            [c.granularity for c in group.choices],
        )
        choice = group.best_at_most(preferred)

        # Which advertised practices does it surface?
        notifier = NotificationManager(model, relevance_threshold=0.35)
        surfaced = []
        for index, (label, practice) in enumerate(ADVERTISED_PRACTICES):
            if notifier.offer(index * 10.0, practice, label) is not None:
                surfaced.append(label)

        print(
            "%-16s %8.2f %10s %14d %s"
            % (name, accuracy, choice.key, len(surfaced), "; ".join(surfaced) or "-")
        )

    print()
    print("A fundamentalist assistant picks 'off' and is warned about most")
    print("practices; an unconcerned assistant picks 'fine' and is barely")
    print("interrupted -- selective notification without user fatigue.")


if __name__ == "__main__":
    main()
