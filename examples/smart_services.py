"""Smart Concierge, Smart Meeting, and a third-party food service.

Demonstrates Section III-B's service scenarios with app-style service
permissions (Preferences 3 and 4):

- Alice grants the Concierge fine-grained location and gets walking
  directions to the nearest coffee machine.
- Bob denies the third-party food-delivery service his location; his
  lunch order cannot be delivered, while Alice's arrives.
- A meeting's participant list only shows people who allowed the Smart
  Meeting service to disclose their membership.

Run:  python examples/smart_services.py
"""

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.preference import ServicePermission
from repro.services.concierge import SmartConcierge
from repro.services.food_delivery import FoodDeliveryService
from repro.services.meeting import SmartMeeting
from repro.simulation.dbh import BUILDING_ID, make_dbh_tippers
from repro.simulation.inhabitants import generate_inhabitants
from repro.simulation.mobility import BuildingWorld

NOON = 12 * 3600.0


def main() -> None:
    tippers = make_dbh_tippers()
    tippers.define_policy(catalog.policy_2_emergency_location(BUILDING_ID))
    tippers.define_policy(catalog.policy_service_sharing(BUILDING_ID))
    inhabitants = generate_inhabitants(tippers.spatial, 12, seed=3)
    for person in inhabitants:
        tippers.add_user(person.profile)
    alice, bob = inhabitants[0].user_id, inhabitants[1].user_id
    world = BuildingWorld(tippers.spatial, inhabitants, seed=3)

    concierge = SmartConcierge(tippers)
    meeting_service = SmartMeeting(tippers)
    food = FoodDeliveryService(tippers)

    # Service permissions, mobile-app style.
    tippers.submit_permission(catalog.preference_3_concierge_location(alice))
    tippers.submit_permission(catalog.preference_4_meeting_details(alice))
    tippers.submit_permission(
        ServicePermission(
            user_id=bob,
            service_id=food.service_id,
            category=DataCategory.LOCATION,
            granularity=GranularityLevel.PRECISE,
            granted=False,  # Bob opts out of third-party location use
        )
    )
    tippers.submit_permission(
        ServicePermission(
            user_id=bob,
            service_id=meeting_service.service_id,
            category=DataCategory.MEETING_DETAILS,
            granularity=GranularityLevel.PRECISE,
            granted=False,  # Bob hides his meeting membership
        )
    )

    # A lunch-time capture sweep so the building knows where people are.
    for tick in range(5):
        now = NOON + tick * 60.0
        world.step(now)
        tippers.tick(now, world)
    now = NOON + 360.0

    print("== Smart Concierge ==")
    route = concierge.directions_to_nearest(alice, "coffee_machine", now)
    if route is None:
        print("Alice could not be routed (not locatable or opted out)")
    else:
        print(
            "Alice -> nearest coffee machine: %s -> %s (%.0fm, via %d waypoints)"
            % (route.from_space_id, route.to_space_id, route.distance_m, route.steps)
        )

    print()
    print("== Third-party food delivery ==")
    food.subscribe(alice)
    food.subscribe(bob)
    for attempt in food.lunch_run(now):
        print(
            "  %s: %s (%s)"
            % (attempt.user_id, "DELIVERED" if attempt.delivered else "FAILED", attempt.reason)
        )

    print()
    print("== Smart Meeting ==")
    meeting = meeting_service.book(
        organizer_id=alice,
        participant_ids=[bob],
        start=now + 3600.0,
        end=now + 7200.0,
        now=now,
        title="Project sync",
    )
    print("booked %s in %s" % (meeting.meeting_id, meeting.space_id))
    details = meeting_service.meeting_details(alice, meeting.meeting_id, now)
    print("participants visible to Alice:", details.value["participants"])
    print("(Bob withheld his membership; Alice allowed hers.)")


if __name__ == "__main__":
    main()
