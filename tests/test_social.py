"""Unit tests for social-ties inference."""

import pytest

from repro.errors import StorageError
from repro.sensors.base import Observation
from repro.tippers.datastore import Datastore
from repro.tippers.social import SocialInference, Tie


def sighting(timestamp, subject, space):
    return Observation.create(
        sensor_id="s",
        sensor_type="bluetooth_beacon",
        timestamp=timestamp,
        space_id=space,
        payload={},
        subject_id=subject,
    )


@pytest.fixture
def store():
    return Datastore()


def meet(store, t, space, *people):
    for person in people:
        store.insert(sighting(t, person, space))


class TestGraphConstruction:
    def test_colocation_creates_edge(self, store):
        meet(store, 100.0, "r1", "a", "b")
        graph = SocialInference(store).build_graph()
        assert graph.has_edge("a", "b")
        assert graph.edges["a", "b"]["weight"] == 1

    def test_separate_windows_accumulate_weight(self, store):
        inference = SocialInference(store, window_s=300.0)
        meet(store, 0.0, "r1", "a", "b")
        meet(store, 400.0, "r1", "a", "b")
        meet(store, 800.0, "r2", "a", "b")
        graph = inference.build_graph()
        assert graph.edges["a", "b"]["weight"] == 3
        assert set(graph.edges["a", "b"]["spaces"]) == {"r1", "r2"}

    def test_same_window_counts_once(self, store):
        inference = SocialInference(store, window_s=300.0)
        meet(store, 10.0, "r1", "a", "b")
        meet(store, 20.0, "r1", "a", "b")
        assert inference.build_graph().edges["a", "b"]["weight"] == 1

    def test_different_rooms_no_edge(self, store):
        meet(store, 100.0, "r1", "a")
        meet(store, 100.0, "r2", "b")
        assert not SocialInference(store).build_graph().has_edge("a", "b")

    def test_unattributed_ignored(self, store):
        meet(store, 100.0, "r1", "a")
        store.insert(sighting(100.0, None, "r1"))
        graph = SocialInference(store).build_graph()
        assert list(graph.nodes) == ["a"]

    def test_ignore_spaces(self, store):
        meet(store, 100.0, "lunch", "a", "b")
        graph = SocialInference(store).build_graph(ignore_spaces={"lunch"})
        assert not graph.has_edge("a", "b")

    def test_time_window_filter(self, store):
        meet(store, 100.0, "r1", "a", "b")
        meet(store, 5000.0, "r1", "a", "b")
        graph = SocialInference(store).build_graph(since=4000.0)
        assert graph.edges["a", "b"]["weight"] == 1


class TestDerivedFacts:
    def test_ties_respect_min_encounters(self, store):
        inference = SocialInference(store, min_encounters=2)
        meet(store, 0.0, "r1", "a", "b")
        meet(store, 400.0, "r1", "a", "b")
        meet(store, 0.0, "r2", "a", "c")  # only one encounter
        ties = inference.ties_of("a")
        assert [t.pair for t in ties] == [("a", "b")]
        assert ties[0].encounters == 2

    def test_ties_sorted_strongest_first(self, store):
        inference = SocialInference(store, min_encounters=1)
        meet(store, 0.0, "r1", "a", "b")
        meet(store, 400.0, "r1", "a", "b")
        meet(store, 800.0, "r2", "a", "c")
        ties = inference.ties_of("a")
        assert [t.pair for t in ties] == [("a", "b"), ("a", "c")]

    def test_ties_of_unknown_user(self, store):
        assert SocialInference(store).ties_of("ghost") == []

    def test_communities(self, store):
        inference = SocialInference(store, min_encounters=1)
        meet(store, 0.0, "r1", "a", "b")
        meet(store, 0.0, "r2", "c", "d")
        meet(store, 400.0, "r2", "c", "d")
        communities = inference.communities()
        assert {"a", "b"} in communities
        assert {"c", "d"} in communities

    def test_most_central(self, store):
        inference = SocialInference(store, min_encounters=1)
        # Hub "a" meets everyone; others only meet "a".
        meet(store, 0.0, "r1", "a", "b")
        meet(store, 400.0, "r2", "a", "c")
        meet(store, 800.0, "r3", "a", "d")
        ranked = inference.most_central(top=2)
        assert ranked[0][0] == "a"
        assert ranked[0][1] == 3.0

    def test_most_central_empty(self, store):
        assert SocialInference(store).most_central() == []


class TestPrivacyInteraction:
    def test_deidentified_data_starves_the_graph(self, store):
        """AGGREGATE-granularity capture carries no subject, so social
        inference has nothing to work with."""
        store.insert(sighting(0.0, None, "r1"))
        store.insert(sighting(0.0, None, "r1"))
        graph = SocialInference(store).build_graph()
        assert graph.number_of_nodes() == 0


class TestValidation:
    def test_bad_parameters(self, store):
        with pytest.raises(StorageError):
            SocialInference(store, window_s=0)
        with pytest.raises(StorageError):
            SocialInference(store, min_encounters=0)
