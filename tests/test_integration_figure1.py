"""Integration test: the full Figure-1 interaction on synthetic DBH."""

import pytest

from repro.core.reasoner.resolution import ResolutionStrategy
from repro.simulation.scenario import run_figure1_scenario


@pytest.fixture(scope="module")
def report():
    return run_figure1_scenario(
        population=15, mary_persona="fundamentalist", capture_ticks=5
    )


class TestFigure1EndToEnd:
    def test_all_steps_ran(self, report):
        assert {s.step for s in report.steps} == {1, 2, 4, 5, 7, 8, 9}

    def test_policies_defined(self, report):
        assert "4 policies" in report.step_titled(1).detail

    def test_data_captured(self, report):
        assert report.observations_stored > 0

    def test_irr_advertised(self, report):
        assert "2 advertisements" in report.step_titled(4).detail

    def test_iota_discovered_and_notified(self, report):
        assert "resources" in report.step_titled(5).detail
        assert report.notifications > 0

    def test_settings_configured_with_conflicts(self, report):
        assert "off" in report.step_titled(8).detail
        assert report.conflicts, "hard conflict with mandatory policy reported"
        assert any("hard conflict" in c for c in report.conflicts)

    def test_step10_enforcement_flips(self, report):
        assert report.location_allowed_before_optout is True
        assert report.location_allowed_after_optout is False

    def test_audit_has_records(self, report):
        assert report.audit_summary["total"] > 0
        assert report.audit_summary.get("deny", 0) > 0

    def test_timings_positive(self, report):
        assert report.total_elapsed_s() > 0
        assert all(s.elapsed_s >= 0 for s in report.steps)

    def test_rows_shape(self, report):
        rows = report.as_rows()
        assert len(rows) == len(report.steps)
        assert all(len(row) == 4 for row in rows)


class TestPersonaVariation:
    def test_unconcerned_mary_keeps_sharing_on(self):
        report = run_figure1_scenario(
            population=10, mary_persona="unconcerned", capture_ticks=3
        )
        assert report.location_allowed_after_optout is True
        assert "fine" in report.step_titled(8).detail


class TestStrategyVariation:
    def test_building_wins_overrides_optout(self):
        report = run_figure1_scenario(
            population=10,
            mary_persona="fundamentalist",
            capture_ticks=3,
            strategy=ResolutionStrategy.BUILDING_WINS,
        )
        assert report.location_allowed_after_optout is True
