"""Unit tests for the inference engine (processing)."""

import pytest

from repro.sensors.base import Observation
from repro.spatial.model import build_simple_building
from repro.tippers.datastore import Datastore
from repro.tippers.inference import InferenceEngine


def sighting(timestamp, subject, space, sensor_type="wifi_access_point"):
    return Observation.create(
        sensor_id="s",
        sensor_type=sensor_type,
        timestamp=timestamp,
        space_id=space,
        payload={},
        subject_id=subject,
    )


def motion(timestamp, space, moving=True):
    return Observation.create(
        sensor_id="m",
        sensor_type="motion_sensor",
        timestamp=timestamp,
        space_id=space,
        payload={"motion": 1 if moving else 0},
    )


@pytest.fixture
def engine():
    datastore = Datastore()
    spatial = build_simple_building("b", 2, 4)
    return InferenceEngine(datastore, spatial), datastore


class TestOccupancy:
    def test_motion_implies_occupied(self, engine):
        inference, datastore = engine
        datastore.insert(motion(100.0, "b-1001"))
        assert inference.is_occupied("b-1001", 150.0)

    def test_zero_motion_not_occupied(self, engine):
        inference, datastore = engine
        datastore.insert(motion(100.0, "b-1001", moving=False))
        assert not inference.is_occupied("b-1001", 150.0)

    def test_stale_motion_expires(self, engine):
        inference, datastore = engine
        datastore.insert(motion(100.0, "b-1001"))
        assert not inference.is_occupied("b-1001", 100.0 + 1000.0, window_s=300.0)

    def test_wifi_sighting_implies_occupied(self, engine):
        inference, datastore = engine
        datastore.insert(sighting(100.0, "mary", "b-1001"))
        assert inference.is_occupied("b-1001", 150.0)

    def test_occupant_count_distinct(self, engine):
        inference, datastore = engine
        datastore.insert(sighting(100.0, "mary", "b-1001"))
        datastore.insert(sighting(110.0, "mary", "b-1001"))
        datastore.insert(sighting(120.0, "bob", "b-1001"))
        assert inference.occupant_count("b-1001", 150.0) == 2

    def test_occupancy_map(self, engine):
        inference, datastore = engine
        datastore.insert(sighting(100.0, "mary", "b-1001"))
        datastore.insert(sighting(100.0, "bob", "b-2001"))
        assert inference.occupancy_map(150.0) == {"b-1001": 1, "b-2001": 1}


class TestLocation:
    def test_locate_latest_wins(self, engine):
        inference, datastore = engine
        datastore.insert(sighting(100.0, "mary", "b-1001"))
        datastore.insert(sighting(200.0, "mary", "b-1002", "bluetooth_beacon"))
        estimate = inference.locate("mary", 250.0)
        assert estimate.space_id == "b-1002"
        assert estimate.source_sensor_type == "bluetooth_beacon"

    def test_locate_outside_window(self, engine):
        inference, datastore = engine
        datastore.insert(sighting(100.0, "mary", "b-1001"))
        assert inference.locate("mary", 100.0 + 10000.0, window_s=900.0) is None

    def test_locate_unknown_subject(self, engine):
        inference, _ = engine
        assert inference.locate("ghost", 100.0) is None

    def test_is_present(self, engine):
        inference, datastore = engine
        datastore.insert(sighting(100.0, "mary", "b-1001"))
        assert inference.is_present("mary", 150.0)
        assert not inference.is_present("bob", 150.0)

    def test_people_in_exact_space(self, engine):
        inference, datastore = engine
        datastore.insert(sighting(100.0, "mary", "b-1001"))
        datastore.insert(sighting(100.0, "bob", "b-1002"))
        assert inference.people_in("b-1001", 150.0) == ["mary"]

    def test_people_in_containing_space(self, engine):
        inference, datastore = engine
        datastore.insert(sighting(100.0, "mary", "b-1001"))
        datastore.insert(sighting(100.0, "bob", "b-2001"))
        assert inference.people_in("b-f1", 150.0) == ["mary"]
        assert inference.people_in("b", 150.0) == ["bob", "mary"]

    def test_person_moving_counted_once(self, engine):
        inference, datastore = engine
        datastore.insert(sighting(100.0, "mary", "b-1001"))
        datastore.insert(sighting(200.0, "mary", "b-2001"))
        assert inference.people_in("b-1001", 250.0) == []
        assert inference.people_in("b-2001", 250.0) == ["mary"]


class TestActivityPatterns:
    def fill_day(self, datastore, subject, day, arrival_h, departure_h):
        base = day * 86400.0
        datastore.insert(sighting(base + arrival_h * 3600.0, subject, "b-1001"))
        datastore.insert(sighting(base + (arrival_h + 2) * 3600.0, subject, "b-1001"))
        datastore.insert(sighting(base + departure_h * 3600.0, subject, "b-1001"))

    def test_daily_bounds(self, engine):
        inference, datastore = engine
        self.fill_day(datastore, "mary", 0, 9.0, 17.0)
        bounds = inference.daily_bounds("mary", 0)
        assert bounds[0] == pytest.approx(9.0)
        assert bounds[1] == pytest.approx(17.0)

    def test_daily_bounds_no_data(self, engine):
        inference, _ = engine
        assert inference.daily_bounds("mary", 0) is None

    def test_activity_pattern_averages_days(self, engine):
        inference, datastore = engine
        self.fill_day(datastore, "mary", 0, 9.0, 17.0)
        self.fill_day(datastore, "mary", 1, 11.0, 19.0)
        pattern = inference.activity_pattern("mary")
        assert pattern.days_observed == 2
        assert pattern.mean_arrival_hour == pytest.approx(10.0)
        assert pattern.mean_departure_hour == pytest.approx(18.0)
        assert pattern.mean_hours_in_building == pytest.approx(8.0)

    def test_guess_role_heuristics(self, engine):
        inference, datastore = engine
        self.fill_day(datastore, "staffer", 0, 7.0, 16.5)
        self.fill_day(datastore, "grad", 0, 11.0, 22.0)
        self.fill_day(datastore, "prof", 0, 9.0, 18.0)
        assert inference.guess_role("staffer") == "staff"
        assert inference.guess_role("grad") == "grad-student"
        assert inference.guess_role("prof") == "faculty"

    def test_guess_role_without_data(self, engine):
        inference, _ = engine
        assert inference.guess_role("ghost") is None

    def test_deidentified_data_defeats_attack(self, engine):
        inference, datastore = engine
        # Aggregate-granularity observations carry no subject.
        datastore.insert(sighting(9 * 3600.0, None, "b-1001"))
        assert inference.guess_role("mary") is None
