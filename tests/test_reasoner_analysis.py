"""Unit tests for the policy-set linter (Section V-A)."""

import pytest

from repro.core.language.duration import Duration
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import DecisionPhase, Effect
from repro.core.policy.building import BuildingPolicy
from repro.core.reasoner.analysis import (
    Finding,
    Severity,
    analyze_policies,
    errors_only,
)


def policy(pid, **overrides):
    defaults = dict(
        policy_id=pid,
        name=pid,
        description="d",
        effect=Effect.ALLOW,
        categories=(DataCategory.LOCATION,),
        sensor_types=("wifi_access_point",),
        phases=(DecisionPhase.CAPTURE, DecisionPhase.STORAGE),
        purposes=(Purpose.SECURITY,),
        retention=Duration.parse("P30D"),
    )
    defaults.update(overrides)
    return BuildingPolicy(**defaults)


def checks_of(findings):
    return [f.check for f in findings]


class TestShadowedPolicy:
    def test_deny_covering_allow_flagged(self):
        findings = analyze_policies(
            [
                policy("allow-wifi"),
                policy("deny-all", effect=Effect.DENY, categories=(), sensor_types=()),
            ]
        )
        assert "shadowed-policy" in checks_of(findings)
        assert errors_only(findings)

    def test_lower_priority_deny_does_not_shadow(self):
        findings = analyze_policies(
            [
                policy("allow-wifi", priority=5),
                policy("deny-all", effect=Effect.DENY, categories=(), sensor_types=(), priority=0),
            ]
        )
        assert "shadowed-policy" not in checks_of(findings)

    def test_partial_deny_does_not_shadow(self):
        findings = analyze_policies(
            [
                policy("allow-both", categories=(DataCategory.LOCATION, DataCategory.PRESENCE)),
                policy(
                    "deny-presence",
                    effect=Effect.DENY,
                    categories=(DataCategory.PRESENCE,),
                ),
            ]
        )
        assert "shadowed-policy" not in checks_of(findings)

    def test_wildcard_allow_not_covered_by_specific_deny(self):
        findings = analyze_policies(
            [
                policy("allow-everything", categories=()),
                policy("deny-location", effect=Effect.DENY),
            ]
        )
        assert "shadowed-policy" not in checks_of(findings)


class TestRetentionCheck:
    def test_personal_data_without_retention_flagged(self):
        findings = analyze_policies([policy("p", retention=None)])
        assert "unbounded-retention" in checks_of(findings)

    def test_non_personal_data_exempt(self):
        findings = analyze_policies(
            [policy("p", categories=(DataCategory.TEMPERATURE,), retention=None)]
        )
        assert "unbounded-retention" not in checks_of(findings)

    def test_sharing_only_policy_exempt(self):
        findings = analyze_policies(
            [policy("p", phases=(DecisionPhase.SHARING,), retention=None)]
        )
        assert "unbounded-retention" not in checks_of(findings)


class TestRedundantAndOverCollection:
    def test_identical_scope_flagged(self):
        findings = analyze_policies([policy("a"), policy("b")])
        assert "redundant-policy" in checks_of(findings)

    def test_different_scope_not_flagged(self):
        findings = analyze_policies(
            [policy("a"), policy("b", purposes=(Purpose.COMFORT,))]
        )
        assert "redundant-policy" not in checks_of(findings)

    def test_over_collection_flagged(self):
        findings = analyze_policies(
            [
                policy(
                    "research-precise",
                    purposes=(Purpose.RESEARCH,),
                    granularity=GranularityLevel.PRECISE,
                )
            ]
        )
        assert "over-collection" in checks_of(findings)

    def test_emergency_precise_is_fine(self):
        findings = analyze_policies([catalog.policy_2_emergency_location("b")])
        assert "over-collection" not in checks_of(findings)


class TestDeploymentCrossChecks:
    def test_unauthorized_sensor_flagged(self):
        findings = analyze_policies(
            [policy("p")], deployed_sensor_types={"wifi_access_point", "camera"}
        )
        messages = [f.message for f in findings if f.check == "unauthorized-sensor"]
        assert any("camera" in m for m in messages)

    def test_wildcard_policy_authorizes_all(self):
        findings = analyze_policies(
            [policy("p", sensor_types=())],
            deployed_sensor_types={"wifi_access_point", "camera"},
        )
        assert "unauthorized-sensor" not in checks_of(findings)

    def test_unused_policy_flagged(self):
        findings = analyze_policies(
            [policy("p", sensor_types=("id_card_reader",))],
            deployed_sensor_types={"camera"},
        )
        assert "unused-policy" in checks_of(findings)

    def test_no_deployment_info_skips_checks(self):
        findings = analyze_policies([policy("p")])
        assert "unauthorized-sensor" not in checks_of(findings)
        assert "unused-policy" not in checks_of(findings)


class TestOrderingAndFormatting:
    def test_errors_sort_first(self):
        findings = analyze_policies(
            [
                policy("allow-wifi", retention=None),
                policy("deny-all", effect=Effect.DENY, categories=(), sensor_types=()),
            ]
        )
        assert findings[0].severity is Severity.ERROR

    def test_str_mentions_check(self):
        finding = Finding(
            check="x-check", severity=Severity.INFO, policy_ids=("p",), message="m"
        )
        assert "x-check" in str(finding)

    def test_clean_set_produces_nothing(self):
        findings = analyze_policies(
            [catalog.policy_2_emergency_location("b")],
            deployed_sensor_types={"wifi_access_point"},
        )
        assert findings == []
