"""Unit tests for the condition language."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, RequesterKind
from repro.core.policy.conditions import (
    AllOf,
    Always,
    AnyOf,
    CategoryCondition,
    EvaluationContext,
    GranularityCondition,
    Not,
    ProfileCondition,
    PurposeCondition,
    RequesterCondition,
    SensorTypeCondition,
    SpatialCondition,
    SubjectCondition,
    TemporalCondition,
)
from repro.errors import PolicyError
from repro.spatial.model import build_simple_building


def request(**overrides) -> DataRequest:
    defaults = dict(
        requester_id="svc",
        requester_kind=RequesterKind.BUILDING_SERVICE,
        phase=DecisionPhase.SHARING,
        category=DataCategory.LOCATION,
        subject_id="mary",
        space_id="b-1001",
        timestamp=12 * 3600.0,
        purpose=Purpose.PROVIDING_SERVICE,
    )
    defaults.update(overrides)
    return DataRequest(**defaults)


@pytest.fixture
def context():
    return EvaluationContext(
        spatial=build_simple_building("b", floors=2, rooms_per_floor=4),
        user_profiles={"mary": frozenset({"faculty"}), "bob": frozenset({"grad-student"})},
    )


class TestSpatialCondition:
    def test_exact_match(self, context):
        assert SpatialCondition("b-1001").matches(request(), context)

    def test_hierarchical_containment(self, context):
        assert SpatialCondition("b").matches(request(), context)
        assert SpatialCondition("b-f1").matches(request(), context)
        assert not SpatialCondition("b-f2").matches(request(), context)

    def test_unlocated_request(self, context):
        assert not SpatialCondition("b").matches(request(space_id=None), context)
        assert SpatialCondition("b", match_unlocated=True).matches(
            request(space_id=None), context
        )

    def test_without_model_falls_back_to_id_equality(self):
        bare = EvaluationContext()
        assert SpatialCondition("x").matches(request(space_id="x"), bare)
        assert not SpatialCondition("x").matches(request(space_id="y"), bare)

    def test_unknown_condition_space_with_model(self, context):
        assert not SpatialCondition("nowhere").matches(request(), context)


class TestTemporalCondition:
    def test_simple_window(self, context):
        cond = TemporalCondition(start_hour=9, end_hour=17)
        assert cond.matches(request(timestamp=12 * 3600.0), context)
        assert not cond.matches(request(timestamp=18 * 3600.0), context)

    def test_window_boundaries_half_open(self, context):
        cond = TemporalCondition(start_hour=9, end_hour=17)
        assert cond.matches(request(timestamp=9 * 3600.0), context)
        assert not cond.matches(request(timestamp=17 * 3600.0), context)

    def test_wrapping_after_hours_window(self, context):
        cond = TemporalCondition(start_hour=18, end_hour=8)
        assert cond.matches(request(timestamp=22 * 3600.0), context)
        assert cond.matches(request(timestamp=3 * 3600.0), context)
        assert not cond.matches(request(timestamp=12 * 3600.0), context)

    def test_second_day_same_window(self, context):
        cond = TemporalCondition(start_hour=9, end_hour=17)
        assert cond.matches(request(timestamp=86400.0 + 10 * 3600.0), context)

    def test_weekdays_only(self, context):
        cond = TemporalCondition(start_hour=0, end_hour=24, weekdays_only=True)
        monday_noon = 12 * 3600.0
        saturday_noon = 5 * 86400.0 + 12 * 3600.0
        assert cond.matches(request(timestamp=monday_noon), context)
        assert not cond.matches(request(timestamp=saturday_noon), context)

    def test_invalid_hours_rejected(self):
        with pytest.raises(PolicyError):
            TemporalCondition(start_hour=-1, end_hour=10)
        with pytest.raises(PolicyError):
            TemporalCondition(start_hour=1, end_hour=25)


class TestProfileAndSubject:
    def test_profile_group_match(self, context):
        assert ProfileCondition("faculty").matches(request(), context)
        assert not ProfileCondition("staff").matches(request(), context)

    def test_profile_requires_subject(self, context):
        assert not ProfileCondition("faculty").matches(request(subject_id=None), context)

    def test_subject_condition(self, context):
        assert SubjectCondition("mary").matches(request(), context)
        assert not SubjectCondition("bob").matches(request(), context)


class TestSelectorConditions:
    def test_purpose(self, context):
        cond = PurposeCondition((Purpose.PROVIDING_SERVICE,))
        assert cond.matches(request(), context)
        assert not cond.matches(request(purpose=Purpose.SECURITY), context)

    def test_purpose_empty_rejected(self):
        with pytest.raises(PolicyError):
            PurposeCondition(())

    def test_requester_by_id_and_kind(self, context):
        by_id = RequesterCondition(requester_ids=("svc",))
        by_kind = RequesterCondition(kinds=(RequesterKind.BUILDING_SERVICE,))
        assert by_id.matches(request(), context)
        assert by_kind.matches(request(), context)
        assert not by_id.matches(request(requester_id="other"), context)

    def test_requester_needs_some_selector(self):
        with pytest.raises(PolicyError):
            RequesterCondition()

    def test_category(self, context):
        cond = CategoryCondition((DataCategory.LOCATION, DataCategory.PRESENCE))
        assert cond.matches(request(), context)
        assert not cond.matches(request(category=DataCategory.ENERGY_USE), context)

    def test_granularity_finer_than(self, context):
        cond = GranularityCondition(finer_than=GranularityLevel.COARSE)
        assert cond.matches(request(granularity=GranularityLevel.PRECISE), context)
        assert not cond.matches(request(granularity=GranularityLevel.COARSE), context)

    def test_sensor_type(self, context):
        cond = SensorTypeCondition(("wifi_access_point",))
        assert cond.matches(request(sensor_type="wifi_access_point"), context)
        assert not cond.matches(request(sensor_type="camera"), context)
        assert not cond.matches(request(), context)


class TestCombinators:
    def test_all_of(self, context):
        cond = AllOf((ProfileCondition("faculty"), SpatialCondition("b")))
        assert cond.matches(request(), context)
        assert not AllOf((ProfileCondition("staff"), SpatialCondition("b"))).matches(
            request(), context
        )

    def test_empty_all_of_matches(self, context):
        assert AllOf(()).matches(request(), context)

    def test_any_of(self, context):
        cond = AnyOf((ProfileCondition("staff"), ProfileCondition("faculty")))
        assert cond.matches(request(), context)

    def test_empty_any_of_matches_nothing(self, context):
        assert not AnyOf(()).matches(request(), context)

    def test_not(self, context):
        assert Not(ProfileCondition("staff")).matches(request(), context)

    def test_operator_sugar(self, context):
        cond = ProfileCondition("faculty") & SpatialCondition("b")
        assert cond.matches(request(), context)
        cond = ProfileCondition("staff") | ProfileCondition("faculty")
        assert cond.matches(request(), context)
        assert (~ProfileCondition("staff")).matches(request(), context)

    def test_always(self, context):
        assert Always().matches(request(), context)


class TestEvaluationContext:
    def test_hour_of(self):
        context = EvaluationContext()
        assert context.hour_of(0.0) == 0.0
        assert context.hour_of(6 * 3600.0) == 6.0
        assert context.hour_of(86400.0 + 3600.0) == 1.0

    def test_day_index(self):
        context = EvaluationContext()
        assert context.day_index_of(10.0) == 0
        assert context.day_index_of(86400.0 * 3 + 5) == 3

    def test_groups_of_unknown_user_empty(self):
        assert EvaluationContext().groups_of("ghost") == frozenset()
