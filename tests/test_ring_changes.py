"""Edge cases of ring membership changes.

The properties a rebalance coordinator leans on: the ring is a pure
function of its node set (insertion order and intermediate membership
history are irrelevant), deltas only ever name keys whose owner really
changed, an add followed by the matching remove is a round trip, and
degenerate rings (one building, removing the last building) fail
loudly instead of mis-homing keys.
"""

import pytest

from repro.errors import FederationError
from repro.federation import HashRing

KEYS = ["ring-user-%03d" % index for index in range(120)]


def test_single_building_ring_owns_everything():
    ring = HashRing(["solo"])
    assert ring.assignments(KEYS) == {key: "solo" for key in KEYS}
    assert ring.version == 1


def test_removing_the_last_building_raises():
    ring = HashRing(["solo"])
    with pytest.raises(FederationError):
        ring.remove_building("solo", keys=KEYS)
    # The failed removal must not have half-mutated the ring.
    assert ring.nodes() == ("solo",)
    assert ring.version == 1


def test_removing_an_unknown_building_raises():
    ring = HashRing(["bldg-a", "bldg-b"])
    with pytest.raises(FederationError):
        ring.remove_building("bldg-z")


def test_adding_a_duplicate_building_raises():
    ring = HashRing(["bldg-a", "bldg-b"])
    with pytest.raises(FederationError):
        ring.add_building("bldg-a")
    assert ring.version == 1


def test_assignments_independent_of_insertion_order():
    ring_upfront = HashRing(["bldg-a", "bldg-b", "bldg-c", "bldg-d"])
    ring_grown = HashRing(["bldg-c"])
    ring_grown.add_building("bldg-a")
    ring_grown.add_building("bldg-d")
    ring_grown.add_building("bldg-b")
    assert ring_grown.assignments(KEYS) == ring_upfront.assignments(KEYS)
    # Same vnode placement, different history: only the version differs.
    assert ring_upfront.version == 1
    assert ring_grown.version == 4


def test_add_delta_names_only_movers_and_targets_the_new_node():
    ring = HashRing(["bldg-a", "bldg-b", "bldg-c"])
    before = ring.assignments(KEYS)
    delta = ring.add_building("bldg-d", keys=KEYS)
    assert delta  # some keys must move at this population
    for key, (old_home, new_home) in delta.items():
        assert old_home == before[key]
        assert new_home == "bldg-d"
    for key in set(KEYS) - set(delta):
        assert ring.node_for(key) == before[key]


def test_add_then_remove_is_a_round_trip():
    ring = HashRing(["bldg-a", "bldg-b", "bldg-c"])
    before = ring.assignments(KEYS)
    delta_in = ring.add_building("bldg-d", keys=KEYS)
    delta_out = ring.remove_building("bldg-d", keys=KEYS)
    assert ring.assignments(KEYS) == before
    # The removal delta is the exact mirror of the addition delta.
    assert set(delta_out) == set(delta_in)
    for key, (old_home, new_home) in delta_out.items():
        assert old_home == "bldg-d"
        assert new_home == delta_in[key][0]
    assert ring.version == 3


def test_remove_delta_never_targets_the_removed_node():
    ring = HashRing(["bldg-a", "bldg-b", "bldg-c", "bldg-d"])
    delta = ring.remove_building("bldg-b", keys=KEYS)
    assert delta
    for key, (old_home, new_home) in delta.items():
        assert old_home == "bldg-b"
        assert new_home != "bldg-b"
        assert ring.node_for(key) == new_home


def test_empty_key_batch_gives_empty_delta_but_bumps_version():
    ring = HashRing(["bldg-a", "bldg-b"])
    assert ring.add_building("bldg-c") == {}
    assert ring.version == 2
    assert "bldg-c" in ring
