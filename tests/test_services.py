"""Unit tests for the building services."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import RequesterKind
from repro.core.policy.preference import ServicePermission
from repro.errors import ServiceError
from repro.services.concierge import SmartConcierge
from repro.services.food_delivery import FoodDeliveryService
from repro.services.meeting import SmartMeeting

NOON = 12 * 3600.0


def see(tippers, world, person, mac, space, now=NOON):
    world.put(person, mac, space)
    tippers.tick(now, world)
    return now + 60.0


class TestServiceBase:
    def test_policy_documents_valid(self, tippers):
        for service in (
            SmartConcierge(tippers),
            SmartMeeting(tippers),
            FoodDeliveryService(tippers),
        ):
            document = service.policy_document()
            assert document.service_id == service.service_id
            document.to_dict()  # validates against the Figure-3 schema

    def test_requester_kinds(self, tippers):
        assert SmartConcierge(tippers).requester_kind is RequesterKind.BUILDING_SERVICE
        assert (
            FoodDeliveryService(tippers).requester_kind
            is RequesterKind.THIRD_PARTY_SERVICE
        )

    def test_empty_service_id_rejected(self, tippers):
        with pytest.raises(ServiceError):
            SmartConcierge(tippers, service_id="")


class TestConcierge:
    def test_find_room_by_name(self, tippers):
        concierge = SmartConcierge(tippers)
        rooms = concierge.find_room("1001")
        assert [r.space_id for r in rooms] == ["b-1001"]

    def test_rooms_with_attribute(self, tippers):
        tippers.spatial.get("b-1003").attributes["coffee_machine"] = "yes"
        concierge = SmartConcierge(tippers)
        assert [r.space_id for r in concierge.rooms_with("coffee_machine")] == ["b-1003"]

    def test_find_person_policy_checked(self, tippers, world):
        concierge = SmartConcierge(tippers)
        now = see(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1001")
        assert concierge.find_person("mary", now).allowed
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        assert not concierge.find_person("mary", now + 1).allowed

    def test_directions_same_floor(self, tippers):
        concierge = SmartConcierge(tippers)
        route = concierge.directions("b-1001", "b-1003")
        assert route.from_space_id == "b-1001"
        assert route.to_space_id == "b-1003"
        assert route.distance_m > 0
        assert "b-f1-corridor" in route.waypoints

    def test_directions_across_floors_cost_more(self, tippers):
        concierge = SmartConcierge(tippers)
        same = concierge.directions("b-1001", "b-1002")
        cross = concierge.directions("b-1001", "b-2001")
        assert cross.distance_m > same.distance_m

    def test_directions_unknown_space(self, tippers):
        with pytest.raises(ServiceError):
            SmartConcierge(tippers).directions("b-1001", "atlantis")

    def test_directions_to_nearest_respects_optout(self, tippers, world):
        tippers.spatial.get("b-1003").attributes["coffee_machine"] = "yes"
        concierge = SmartConcierge(tippers)
        now = see(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1001")
        assert concierge.directions_to_nearest("mary", "coffee_machine", now) is not None
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        assert concierge.directions_to_nearest("mary", "coffee_machine", now + 1) is None

    def test_directions_to_nearest_without_amenity(self, tippers, world):
        concierge = SmartConcierge(tippers)
        now = see(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1001")
        assert concierge.directions_to_nearest("mary", "holodeck", now) is None


class TestSmartMeeting:
    def test_free_rooms_excludes_occupied(self, tippers, world):
        meeting = SmartMeeting(tippers)
        now = see(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1001")
        free = meeting.free_rooms(now + 3600, now + 7200, now)
        assert "b-1001" not in free
        assert "b-1002" in free

    def test_booking_and_double_booking(self, tippers):
        meeting = SmartMeeting(tippers)
        booked = meeting.book("mary", ["bob"], NOON, NOON + 3600, NOON - 60, space_id="b-1003")
        assert set(booked.participant_ids) == {"mary", "bob"}
        free = meeting.free_rooms(NOON, NOON + 1800, NOON - 60)
        assert "b-1003" not in free

    def test_booking_picks_free_room(self, tippers):
        from repro.spatial.model import SpaceType

        meeting = SmartMeeting(tippers)
        booked = meeting.book("mary", [], NOON, NOON + 3600, NOON - 60)
        rooms = {s.space_id for s in tippers.spatial.spaces_of_type(SpaceType.ROOM)}
        assert booked.space_id in rooms

    def test_unknown_participant_rejected(self, tippers):
        with pytest.raises(ServiceError):
            SmartMeeting(tippers).book("mary", ["ghost"], 0.0, 10.0, 0.0)

    def test_empty_window_rejected(self, tippers):
        with pytest.raises(ServiceError):
            SmartMeeting(tippers).free_rooms(10.0, 10.0, 0.0)

    def test_meetings_of_and_cancel(self, tippers):
        meeting = SmartMeeting(tippers)
        booked = meeting.book("mary", ["bob"], 0.0, 10.0, 0.0, space_id="b-1003")
        assert meeting.meetings_of("bob") == [booked]
        meeting.cancel(booked.meeting_id)
        assert meeting.meetings_of("bob") == []

    def test_details_hidden_from_non_participant(self, tippers):
        meeting = SmartMeeting(tippers)
        booked = meeting.book("mary", [], 0.0, 10.0, 0.0, space_id="b-1003")
        response = meeting.meeting_details("bob", booked.meeting_id, 5.0)
        assert not response.allowed

    def test_participant_filtering_by_permission(self, tippers):
        meeting = SmartMeeting(tippers)
        booked = meeting.book("mary", ["bob"], 0.0, 10.0, 0.0, space_id="b-1003")
        # Mary allows detail sharing; Bob denies it.
        tippers.submit_permission(catalog.preference_4_meeting_details("mary"))
        tippers.submit_permission(
            ServicePermission(
                user_id="bob",
                service_id="smart-meeting",
                category=DataCategory.MEETING_DETAILS,
                granularity=GranularityLevel.PRECISE,
                granted=False,
            )
        )
        response = meeting.meeting_details("mary", booked.meeting_id, 5.0)
        assert response.allowed
        assert response.value["participants"] == ["mary"]


class TestFoodDelivery:
    def test_subscription_lifecycle(self, tippers):
        food = FoodDeliveryService(tippers)
        food.subscribe("mary")
        food.subscribe("mary")
        assert food.subscribers == ("mary",)
        food.unsubscribe("mary")
        assert food.subscribers == ()

    def test_unknown_subscriber_rejected(self, tippers):
        with pytest.raises(ServiceError):
            FoodDeliveryService(tippers).subscribe("ghost")

    def test_delivery_requires_lunch_window(self, tippers, world):
        food = FoodDeliveryService(tippers)
        food.subscribe("mary")
        now = see(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1001")
        evening = 20 * 3600.0
        assert not food.deliver("mary", evening).delivered

    def test_delivery_at_lunch(self, tippers, world):
        food = FoodDeliveryService(tippers)
        food.subscribe("mary")
        now = see(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1001")
        attempt = food.deliver("mary", now)
        assert attempt.delivered
        assert attempt.space_id == "b-1001"

    def test_third_party_optout_blocks(self, tippers, world):
        food = FoodDeliveryService(tippers)
        food.subscribe("mary")
        now = see(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1001")
        tippers.submit_permission(
            ServicePermission(
                user_id="mary",
                service_id=food.service_id,
                category=DataCategory.LOCATION,
                granularity=GranularityLevel.PRECISE,
                granted=False,
            )
        )
        attempt = food.deliver("mary", now)
        assert not attempt.delivered
        assert "denied" in attempt.reason

    def test_lunch_run_covers_all_subscribers(self, tippers, world):
        food = FoodDeliveryService(tippers)
        food.subscribe("mary")
        food.subscribe("bob")
        now = see(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1001")
        attempts = food.lunch_run(now)
        assert {a.user_id for a in attempts} == {"mary", "bob"}
