"""End-to-end tests for the rush-hour overload scenario and its CLI."""

import json

import pytest

from repro.__main__ import main
from repro.simulation.overload import run_overload_scenario

PLAN, SEED = "rush-hour", 11


@pytest.fixture(scope="module")
def report():
    return run_overload_scenario(plan_name=PLAN, seed=SEED)


class TestInvariants:
    def test_scenario_passes_its_own_invariants(self, report):
        assert report.ok, report.report_text

    def test_critical_is_never_shed(self, report):
        assert report.critical.shed == 0
        assert report.critical.completed == report.critical.attempted

    def test_deferrable_traffic_is_shed_under_load(self, report):
        assert report.deferrable.shed_rate > 0.0
        assert report.ledger_shed_by_class.get("deferrable", 0) > 0

    def test_every_brownout_carries_an_audit_marker(self, report):
        assert report.brownout_marked_responses > 0
        assert report.brownout_marked_audit >= report.brownout_marked_responses

    def test_ledger_identity_holds(self, report):
        assert report.ledger_checked == report.ledger_admitted + report.ledger_shed
        assert report.bus_attempts == report.bus_logical_calls + report.bus_retries

    def test_faults_actually_fired(self, report):
        assert report.injected_arrivals > 0


class TestAblation:
    def test_no_admission_run_sheds_nothing(self):
        bare = run_overload_scenario(plan_name=PLAN, seed=SEED, admission=False)
        assert bare.ok, bare.report_text
        assert bare.bus_shed == 0
        assert bare.ledger_shed == 0
        assert bare.brownout_marked_responses == 0

    def test_admission_sheds_strictly_more_than_ablation(self, report):
        assert report.ledger_shed > 0
        assert report.bus_shed > 0


class TestDeterminism:
    def test_same_seed_reports_are_byte_identical(self, report):
        again = run_overload_scenario(plan_name=PLAN, seed=SEED)
        assert report.report_text == again.report_text
        assert report.trace_text == again.trace_text
        assert json.dumps(report.to_dict(), sort_keys=True) == json.dumps(
            again.to_dict(), sort_keys=True
        )

    def test_different_seed_diverges(self, report):
        other = run_overload_scenario(plan_name=PLAN, seed=12)
        assert report.report_text != other.report_text


class TestCli:
    def test_overload_exits_zero_and_prints_a_report(self, capsys):
        assert main(["overload", "--plan", PLAN, "--seed", str(SEED)]) == 0
        out = capsys.readouterr().out
        assert "rush-hour" in out
        assert "deferrable" in out

    def test_json_output_parses(self, capsys):
        assert main(["overload", "--seed", str(SEED), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"] == PLAN
        assert payload["ledger"]["checked"] > 0

    def test_report_out_writes_the_exact_report(self, tmp_path, capsys, report):
        path = tmp_path / "overload.txt"
        assert main(
            ["overload", "--seed", str(SEED), "--report-out", str(path)]
        ) == 0
        capsys.readouterr()
        assert path.read_text() == report.report_text

    def test_unknown_plan_is_a_hard_error(self, capsys):
        assert main(["overload", "--plan", "no-such-plan"]) == 2
        assert "no-such-plan" in capsys.readouterr().err

    def test_no_admission_flag_runs_the_ablation(self, capsys):
        assert main(["overload", "--seed", str(SEED), "--no-admission"]) == 0
        assert "admission=off" in capsys.readouterr().out

    def test_chaos_list_enumerates_plans(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "rush-hour" in out
        assert "torn-storage" in out
