"""Unit tests for the notification manager (fatigue model)."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.errors import PolicyError
from repro.iota.notifications import NotificationManager
from repro.iota.personas import PERSONAS, generate_decisions
from repro.iota.preference_model import DataPractice, PreferenceModel


def practice(**overrides):
    defaults = dict(
        category=DataCategory.IDENTITY,
        purpose=Purpose.MARKETING,
        granularity=GranularityLevel.PRECISE,
        third_party=True,
    )
    defaults.update(overrides)
    return DataPractice(**defaults)


def benign_practice():
    return practice(
        category=DataCategory.TEMPERATURE,
        purpose=Purpose.COMFORT,
        granularity=GranularityLevel.AGGREGATE,
        third_party=False,
    )


@pytest.fixture
def manager():
    return NotificationManager(PreferenceModel(), relevance_threshold=0.3, daily_budget=3)


class TestRelevance:
    def test_sensitive_practice_scores_high(self, manager):
        assert manager.relevance(practice()) > manager.relevance(benign_practice())

    def test_relevance_in_unit_interval(self, manager):
        assert 0.0 <= manager.relevance(practice()) <= 1.0

    def test_known_accepted_practice_scores_lower(self):
        model = PreferenceModel().fit(
            generate_decisions(PERSONAS["unconcerned"], 250, seed=1, noise=0.0)
        )
        trusting = NotificationManager(model)
        fresh = NotificationManager(PreferenceModel())
        p = practice(category=DataCategory.LOCATION, purpose=Purpose.PROVIDING_SERVICE, third_party=False)
        assert trusting.relevance(p) < fresh.relevance(p)


class TestOffer:
    def test_relevant_practice_notified(self, manager):
        notification = manager.offer(0.0, practice(), "identity for marketing")
        assert notification is not None
        assert notification.relevance >= 0.3

    def test_low_relevance_suppressed(self, manager):
        assert manager.offer(0.0, benign_practice(), "temperature") is None
        assert manager.suppressed_low_relevance == 1

    def test_duplicates_suppressed(self, manager):
        assert manager.offer(0.0, practice(), "x") is not None
        assert manager.offer(10.0, practice(), "x again") is None
        assert manager.suppressed_duplicate == 1

    def test_different_source_not_duplicate(self, manager):
        assert manager.offer(0.0, practice(), "x", source="irr-1") is not None
        assert manager.offer(1.0, practice(), "x", source="irr-2") is not None

    _DISTINCT = (
        DataCategory.IDENTITY,
        DataCategory.LOCATION,
        DataCategory.SOCIAL_TIES,
        DataCategory.ACTIVITY,
    )

    def test_daily_budget(self, manager):
        for i in range(3):
            assert manager.offer(float(i), practice(category=self._DISTINCT[i]), "p%d" % i)
        overflow = manager.offer(3.0, practice(category=self._DISTINCT[3]), "p3")
        assert overflow is None
        assert manager.suppressed_budget == 1

    def test_budget_resets_next_day(self, manager):
        for i in range(3):
            manager.offer(float(i), practice(category=self._DISTINCT[i]), "p%d" % i)
        blocked = practice(category=self._DISTINCT[3])
        assert manager.offer(3.0, blocked, "p3") is None
        # Next day the same (still unseen) practice goes through.
        assert manager.offer(86400.0 + 1.0, blocked, "p3") is not None

    def test_stats_shape(self, manager):
        manager.offer(0.0, practice(), "x")
        manager.offer(1.0, benign_practice(), "y")
        stats = manager.stats()
        assert stats["sent"] == 1
        assert stats["suppressed_low_relevance"] == 1


class TestValidation:
    def test_bad_threshold_rejected(self):
        with pytest.raises(PolicyError):
            NotificationManager(PreferenceModel(), relevance_threshold=1.5)

    def test_negative_budget_rejected(self):
        with pytest.raises(PolicyError):
            NotificationManager(PreferenceModel(), daily_budget=-1)

    def test_zero_budget_suppresses_everything(self):
        manager = NotificationManager(PreferenceModel(), daily_budget=0)
        assert manager.offer(0.0, practice(), "x") is None
