"""End-to-end tests for the sharded-campus federation scenario and CLI."""

import json

import pytest

from repro.__main__ import main
from repro.simulation.federate import (
    DEFAULT_BUILDINGS,
    run_federate_scenario,
)

PLAN, SEED = "campus-storm", 17


@pytest.fixture(scope="module")
def report():
    return run_federate_scenario(plan_name=PLAN, seed=SEED)


class TestInvariants:
    def test_scenario_passes_its_own_invariants(self, report):
        assert report.ok, report.report_text

    def test_the_campus_is_fully_sharded(self, report):
        assert report.buildings == sorted(DEFAULT_BUILDINGS)
        assert sum(report.residents_by_building.values()) == report.population
        # Every shard stored observations of its own.
        assert set(report.stored_by_building) == set(report.buildings)

    def test_roaming_handoffs_happen_and_resume(self, report):
        assert report.handoffs > 0
        assert report.returns > 0
        assert report.reentries > 0

    def test_every_visited_shard_decision_is_roaming_marked(self, report):
        assert report.visited_shard_responses > 0
        assert report.roaming_marked_responses == report.visited_shard_responses
        assert report.roaming_marked_audit >= report.roaming_marked_responses

    def test_critical_never_shed_but_deferrable_is(self, report):
        assert report.critical.shed == 0
        assert report.critical.completed == (
            report.critical.attempted - report.critical_dark
        )
        assert report.deferrable.shed > 0

    def test_the_storm_crashes_and_recovers_a_shard(self, report):
        assert report.crashed
        assert report.crash_building in report.buildings
        assert report.recovered
        assert report.recovery is not None
        assert report.recovery.frames_replayed > 0

    def test_the_dsar_spans_shards_and_sticks(self, report):
        assert report.dsar_subject
        assert len(report.dsar_buildings) >= 2
        assert report.dsar_erased > 0
        assert report.dsar_compacted == report.dsar_buildings
        # The end-of-run physical sweep re-opens every shard directory
        # with the standalone reader: the erased subject must be gone.
        assert report.swept_shards == len(report.buildings)
        assert report.resurrected == 0

    def test_ledger_identity_holds(self, report):
        assert report.ledger_checked == (
            report.ledger_admitted + report.ledger_shed
        )
        assert report.bus_attempts == (
            report.bus_logical_calls + report.bus_retries
        )


class TestDeterminism:
    def test_same_seed_reports_are_byte_identical(self, report):
        again = run_federate_scenario(plan_name=PLAN, seed=SEED)
        assert report.report_text == again.report_text
        assert json.dumps(report.to_dict(), sort_keys=True) == json.dumps(
            again.to_dict(), sort_keys=True
        )

    def test_another_seed_also_satisfies_the_invariants(self):
        other = run_federate_scenario(plan_name=PLAN, seed=23)
        assert other.ok, other.report_text

    def test_rejects_an_unknown_plan(self):
        from repro.errors import FaultError

        with pytest.raises(FaultError):
            run_federate_scenario(plan_name="no-such-plan", seed=SEED)


class TestCli:
    def test_federate_text_report(self, capsys):
        assert main(["federate", "--plan", PLAN, "--seed", str(SEED)]) == 0
        out = capsys.readouterr().out
        assert "federate run: plan=campus-storm seed=17" in out
        assert "result: OK" in out

    def test_federate_json(self, capsys):
        assert main(
            ["federate", "--plan", PLAN, "--seed", str(SEED), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["plan"] == PLAN

    def test_federate_rejects_unknown_plan(self, capsys):
        assert main(["federate", "--plan", "no-such-plan"]) == 2
        assert "error" in capsys.readouterr().err
