"""Edge cases around breaker recovery and mid-retry deadline death.

Complements test_resilience_breaker.py / test_resilience_retry.py with
the awkward corners: a breaker that heals through half-open and must
then earn a *full* failure streak before re-opening, and a deadline
that dies between two scheduled backoffs while the bus accounting
identity (``calls == logical_calls + retries``) stays intact.
"""

import pytest

from repro.errors import CircuitOpenError, DeadlineError, NetworkError
from repro.faults import FaultInjector, FaultKind, FaultSpec, single_spec_plan
from repro.net.bus import MessageBus
from repro.net.resilience import BreakerBoard, CircuitBreaker, Deadline, RetryPolicy
from repro.obs.metrics import MetricsRegistry


class TestHalfOpenReclose:
    def test_reclose_restores_the_full_failure_budget(self):
        """A healed breaker is truly closed: the streak starts from zero."""
        breaker = CircuitBreaker(failure_threshold=3, cooldown_rejections=1)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        breaker.allow()  # cooldown reached -> half-open
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        # Post-heal, one or two failures must NOT trip it again.
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.times_opened == 2

    def test_half_open_failure_reopens_below_threshold(self):
        """One failed trial re-opens even with a high failure threshold."""
        breaker = CircuitBreaker(failure_threshold=5, cooldown_rejections=1)
        for _ in range(5):
            breaker.record_failure()
        breaker.allow()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()  # single trial failure, streak reset by open
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.rejections_while_open == 0  # cooldown restarts

    def test_open_close_cycle_is_repeatable(self):
        """trip -> cool down -> heal, twice; counters stay consistent."""
        breaker = CircuitBreaker(failure_threshold=1, cooldown_rejections=2)
        for cycle in range(1, 3):
            breaker.record_failure()
            assert breaker.state == CircuitBreaker.OPEN
            assert not breaker.allow()
            assert not breaker.allow()
            assert breaker.state == CircuitBreaker.HALF_OPEN
            assert breaker.allow()
            breaker.record_success()
            assert breaker.state == CircuitBreaker.CLOSED
            assert breaker.times_opened == cycle


class TestBusHalfOpenReclose:
    def test_bus_recloses_and_serves_after_fault_window(self):
        """End to end: trip on drops, cool down on rejections, re-close."""
        metrics = MetricsRegistry()
        bus = MessageBus(
            metrics=metrics,
            breakers=BreakerBoard(failure_threshold=2, cooldown_rejections=2),
        )
        bus.register_handler("echo", lambda method, payload: {"ok": True})
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.DROP, at_steps=(0, 1)))
        )
        injector.install_bus(bus)
        for _ in range(2):  # two dropped calls trip the breaker
            with pytest.raises(NetworkError):
                bus.call("echo", "ping")
        assert bus.breakers.states() == {"echo": CircuitBreaker.OPEN}
        for _ in range(2):  # rejected calls are the cooldown clock
            with pytest.raises(CircuitOpenError):
                bus.call("echo", "ping")
        assert bus.stats.rejected == 2
        # The half-open trial rides a healthy transport and closes it.
        assert bus.call("echo", "ping") == {"ok": True}
        assert bus.breakers.states() == {"echo": CircuitBreaker.CLOSED}
        # Rejections never entered the logical-call accounting.
        assert bus.stats.logical_calls == 3
        assert bus.stats.calls == bus.stats.logical_calls + bus.stats.retries


class TestDeadlineMidRetry:
    def make_lossy_bus(self):
        bus = MessageBus(metrics=MetricsRegistry())
        bus.register_handler("echo", lambda method, payload: {"ok": True})
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.DROP))  # every attempt
        )
        injector.install_bus(bus)
        return bus

    def test_exhaustion_between_backoffs_keeps_accounting_identity(self):
        bus = self.make_lossy_bus()
        policy = RetryPolicy(max_retries=4, base_delay_s=0.1, multiplier=2.0,
                             jitter=0.0, max_delay_s=10.0)
        deadline = Deadline(0.75)  # 0.1 + 0.2 + 0.4 fit; the 0.8 does not
        with pytest.raises(DeadlineError):
            bus.call("echo", "ping", retry_policy=policy, deadline=deadline)
        assert bus.stats.retries == 3
        assert bus.stats.calls == bus.stats.logical_calls + bus.stats.retries
        # The refused charge leaves the budget untouched.
        assert deadline.spent_s == pytest.approx(0.7)
        assert not deadline.expired

    def test_exhausted_deadline_chains_the_transport_error(self):
        bus = self.make_lossy_bus()
        policy = RetryPolicy(max_retries=3, base_delay_s=1.0, jitter=0.0)
        with pytest.raises(DeadlineError) as excinfo:
            bus.call(
                "echo", "ping", retry_policy=policy, deadline=Deadline(0.5)
            )
        # The DeadlineError carries the drop that forced the retry.
        assert isinstance(excinfo.value.__cause__, NetworkError)
        assert bus.stats.retries == 0  # died before the first re-send

    def test_deadline_spans_logical_calls(self):
        """One Deadline can budget a whole operation, not just one call."""
        bus = self.make_lossy_bus()
        policy = RetryPolicy(max_retries=2, base_delay_s=0.1, multiplier=2.0,
                             jitter=0.0)
        deadline = Deadline(0.45)
        # First logical call burns its full schedule (0.1 + 0.2).
        with pytest.raises(NetworkError):
            bus.call("echo", "ping", retry_policy=policy, deadline=deadline)
        assert deadline.spent_s == pytest.approx(0.3)
        # The second call affords one more backoff, then dies mid-retry.
        with pytest.raises(DeadlineError):
            bus.call("echo", "ping", retry_policy=policy, deadline=deadline)
        assert deadline.spent_s == pytest.approx(0.4)
        assert bus.stats.retries == 3
        assert bus.stats.calls == bus.stats.logical_calls + bus.stats.retries
