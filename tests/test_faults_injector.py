"""Unit tests for FaultInjector: one plane per site, shared step counter."""

import pytest

from repro.errors import NetworkError, StorageError
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec, single_spec_plan
from repro.net.bus import MessageBus
from repro.obs.metrics import MetricsRegistry
from repro.sensors.base import Observation
from repro.tippers.datastore import Datastore


def make_bus():
    bus = MessageBus(metrics=MetricsRegistry())
    bus.register_handler("echo", lambda method, payload: {"ok": True})
    return bus


def make_observation(sensor_type="temperature", subject_id=None):
    return Observation.create(
        sensor_id="t-1",
        sensor_type=sensor_type,
        timestamp=100.0,
        space_id="room-1",
        payload={"value": 21.5},
        subject_id=subject_id,
    )


class TestBusPlane:
    def test_injected_drop_counts_as_faulted(self):
        bus = make_bus()
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.DROP, at_steps=(0,)))
        )
        injector.install_bus(bus)
        with pytest.raises(NetworkError):
            bus.call("echo", "ping")
        assert bus.stats.dropped == 1
        assert bus.stats.faulted == 1
        # Step 1 has no scheduled fault: the retry-free call succeeds.
        assert bus.call("echo", "ping") == {"ok": True}
        assert injector.trace.lines() == [
            "step=000000 site=bus kind=drop target=echo method=ping"
        ]

    def test_crash_window_models_offline_then_restart(self):
        bus = make_bus()
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.CRASH, target="echo", stop=2))
        )
        injector.install_bus(bus)
        for _ in range(2):
            with pytest.raises(NetworkError):
                bus.call("echo", "ping")
        # Step 2 is past the window: the endpoint has restarted.
        assert bus.call("echo", "ping") == {"ok": True}
        assert injector.trace.counts() == {"crash": 2}

    def test_crash_targets_only_named_endpoint(self):
        bus = make_bus()
        bus.register_handler("other", lambda method, payload: {"ok": "other"})
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.CRASH, target="other"))
        )
        injector.install_bus(bus)
        assert bus.call("echo", "ping") == {"ok": True}
        with pytest.raises(NetworkError):
            bus.call("other", "ping")

    def test_corruption_is_counted_and_dropped(self):
        bus = make_bus()
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.CORRUPT, at_steps=(0,)))
        )
        injector.install_bus(bus)
        with pytest.raises(NetworkError):
            bus.call("echo", "ping")
        assert bus.stats.corrupted == 1
        assert bus.stats.faulted == 1
        assert bus.stats.dropped == 1

    def test_latency_spike_is_charged_not_slept(self):
        bus = make_bus()
        injector = FaultInjector(
            single_spec_plan(
                FaultSpec(kind=FaultKind.LATENCY, at_steps=(0,), latency_s=0.25)
            )
        )
        injector.install_bus(bus)
        assert bus.call("echo", "ping") == {"ok": True}
        assert bus.stats.simulated_latency_s == pytest.approx(0.25)
        assert "latency_s=0.250" in injector.trace.lines()[0]

    def test_composed_faults_merge(self):
        bus = make_bus()
        plan = FaultPlan(
            [
                FaultSpec(kind=FaultKind.LATENCY, at_steps=(0,), latency_s=0.1),
                FaultSpec(kind=FaultKind.DROP, at_steps=(0,)),
            ],
            name="combo",
        )
        injector = FaultInjector(plan)
        injector.install_bus(bus)
        with pytest.raises(NetworkError):
            bus.call("echo", "ping")
        assert bus.stats.simulated_latency_s == pytest.approx(0.1)
        assert bus.stats.dropped == 1
        assert injector.trace.counts() == {"latency": 1, "drop": 1}


class TestDatastorePlane:
    def test_failed_insert_leaves_store_untouched(self):
        store = Datastore()
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.STORE_WRITE_FAIL, target="insert"))
        )
        injector.install_datastore(store)
        with pytest.raises(StorageError):
            store.insert(make_observation())
        assert store.count() == 0
        assert store.total_inserted == 0
        assert store.total_write_failures == 1
        assert injector.trace.lines() == [
            "step=000000 site=datastore kind=store_write_fail target=insert "
            "detail=temperature"
        ]

    def test_forget_target_spares_inserts(self):
        store = Datastore()
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.STORE_WRITE_FAIL, target="forget"))
        )
        injector.install_datastore(store)
        store.insert(make_observation(subject_id="mary"))
        with pytest.raises(StorageError):
            store.forget_subject("mary")
        # The guard fires before any mutation: the data survives.
        assert store.count() == 1
        assert store.query(subject_id="mary")


class TestSensorPlane:
    class FakeSensor:
        def __init__(self, sensor_id, sensor_type):
            self.sensor_id = sensor_id
            self.sensor_type = sensor_type

    class FakeSubsystem:
        def __init__(self):
            self.planes = []

        def install_fault_plane(self, plane):
            self.planes.append(plane)

        def remove_fault_plane(self, plane):
            self.planes.remove(plane)

    def test_stall_matches_by_id_or_type(self):
        subsystem = self.FakeSubsystem()
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.SENSOR_STALL, target="motion-1"))
        )
        injector.install_subsystem(subsystem)
        (plane,) = subsystem.planes
        assert plane(self.FakeSensor("motion-1", "motion_sensor"))
        assert not plane(self.FakeSensor("motion-2", "motion_sensor"))

        by_type = FaultInjector(
            single_spec_plan(
                FaultSpec(kind=FaultKind.SENSOR_STALL, target="motion_sensor")
            )
        )
        by_type.install_subsystem(subsystem)
        assert subsystem.planes[-1](self.FakeSensor("motion-9", "motion_sensor"))

    def test_uninstall_removes_plane(self):
        subsystem = self.FakeSubsystem()
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.SENSOR_STALL))
        )
        injector.install_subsystem(subsystem)
        injector.uninstall()
        assert subsystem.planes == []


class TestPolicyStorePlane:
    class FakeStore:
        def __init__(self):
            self.fetches = 0

        def candidate_policies(self, request):
            self.fetches += 1
            return ["policy-a"]

    def test_fetch_faults_then_uninstall_restores(self):
        store = self.FakeStore()
        injector = FaultInjector(
            single_spec_plan(
                FaultSpec(kind=FaultKind.POLICY_FETCH_FAIL, at_steps=(0,))
            )
        )
        injector.install_policy_store(store)
        with pytest.raises(StorageError):
            store.candidate_policies(object())
        assert store.fetches == 0
        # Step 1 is clean: the wrapped fetch falls through.
        assert store.candidate_policies(object()) == ["policy-a"]
        assert store.fetches == 1
        injector.uninstall()
        assert store.candidate_policies.__self__ is store
        assert injector.trace.counts() == {"policy_fetch_fail": 1}


class TestGlobalStepCounter:
    def test_steps_are_shared_across_sites(self):
        bus = make_bus()
        store = Datastore()
        injector = FaultInjector(
            FaultPlan(
                [
                    FaultSpec(kind=FaultKind.DROP, at_steps=(0,)),
                    FaultSpec(kind=FaultKind.STORE_WRITE_FAIL, at_steps=(1,)),
                ],
                name="interleave",
            )
        )
        injector.install_bus(bus)
        injector.install_datastore(store)
        with pytest.raises(NetworkError):
            bus.call("echo", "ping")          # step 0: bus
        with pytest.raises(StorageError):
            store.insert(make_observation())  # step 1: datastore
        assert bus.call("echo", "ping") == {"ok": True}  # step 2: clean
        assert injector.step == 3
        assert [event.step for event in injector.trace.events] == [0, 1]

    def test_uninstall_silences_everything(self):
        bus = make_bus()
        store = Datastore()
        injector = FaultInjector(
            FaultPlan(
                [
                    FaultSpec(kind=FaultKind.DROP),
                    FaultSpec(kind=FaultKind.STORE_WRITE_FAIL),
                ],
                name="always-on",
            )
        )
        injector.install_bus(bus)
        injector.install_datastore(store)
        with pytest.raises(NetworkError):
            bus.call("echo", "ping")
        injector.uninstall()
        assert bus.call("echo", "ping") == {"ok": True}
        store.insert(make_observation())
        assert store.count() == 1
