"""Unit tests for the sensor health supervisor (quarantine cycle)."""

import pytest

from repro.errors import SensorError
from repro.obs.metrics import MetricsRegistry
from repro.sensors.subsystem import SensorSubsystem
from repro.tippers.sensor_manager import SensorHealthSupervisor


class FakeSensor:
    """The minimal surface the subsystem and supervisor touch."""

    def __init__(self, sensor_id):
        self.sensor_id = sensor_id
        self.sensor_type = "fake"
        self.subsystem = "fakes"

    def sample(self, now, environment):
        return []


def make_subsystem(*sensor_ids):
    subsystem = SensorSubsystem("fakes")
    for sensor_id in sensor_ids:
        subsystem.add(FakeSensor(sensor_id))
    return subsystem


def run_pass(subsystem, supervisor, stall=()):
    """One sampling pass: gate, stall the named sensors, digest health."""
    plane_calls = []

    def plane(sensor):
        plane_calls.append(sensor.sensor_id)
        return sensor.sensor_id in stall

    subsystem.install_fault_plane(plane)
    try:
        subsystem.sample_all(0.0, None, gate=supervisor.should_sample)
    finally:
        subsystem.remove_fault_plane(plane)
    supervisor.observe_pass(subsystem)
    return plane_calls


class TestValidation:
    def test_bad_thresholds_rejected(self):
        with pytest.raises(SensorError):
            SensorHealthSupervisor(miss_threshold=0)
        with pytest.raises(SensorError):
            SensorHealthSupervisor(probe_rate=0.0)
        with pytest.raises(SensorError):
            SensorHealthSupervisor(probe_rate=1.5)


class TestQuarantine:
    def test_quarantines_after_threshold_consecutive_misses(self):
        supervisor = SensorHealthSupervisor(
            miss_threshold=3, metrics=MetricsRegistry()
        )
        subsystem = make_subsystem("ap-01", "ap-02")
        for _ in range(2):
            run_pass(subsystem, supervisor, stall=("ap-01",))
        assert supervisor.quarantined() == []
        run_pass(subsystem, supervisor, stall=("ap-01",))
        assert supervisor.quarantined() == ["ap-01"]
        assert supervisor.health("ap-01").quarantines == 1
        assert supervisor.health("ap-02").consecutive_misses == 0

    def test_an_answer_resets_the_miss_streak(self):
        supervisor = SensorHealthSupervisor(
            miss_threshold=3, metrics=MetricsRegistry()
        )
        subsystem = make_subsystem("ap-01")
        run_pass(subsystem, supervisor, stall=("ap-01",))
        run_pass(subsystem, supervisor, stall=("ap-01",))
        run_pass(subsystem, supervisor)  # heartbeat lands
        run_pass(subsystem, supervisor, stall=("ap-01",))
        run_pass(subsystem, supervisor, stall=("ap-01",))
        assert supervisor.quarantined() == []

    def test_empty_output_is_not_a_heartbeat_miss(self):
        """An empty room is a healthy reading -- only stalls count."""
        supervisor = SensorHealthSupervisor(
            miss_threshold=1, metrics=MetricsRegistry()
        )
        subsystem = make_subsystem("ap-01")  # FakeSensor answers []
        for _ in range(5):
            run_pass(subsystem, supervisor)
        assert supervisor.quarantined() == []


class TestProbeAndReadmission:
    def test_quarantined_sensor_is_gated_out(self):
        metrics = MetricsRegistry()
        supervisor = SensorHealthSupervisor(
            miss_threshold=1, probe_rate=0.5, seed=3, metrics=metrics
        )
        subsystem = make_subsystem("ap-01")
        run_pass(subsystem, supervisor, stall=("ap-01",))
        assert supervisor.quarantined() == ["ap-01"]
        gated_before = subsystem.gated_samples
        for _ in range(20):
            run_pass(subsystem, supervisor, stall=("ap-01",))
        assert subsystem.gated_samples > gated_before
        assert metrics.total("quarantine_skipped_samples_total") > 0
        assert metrics.total("quarantine_probes_total") == 20

    def test_gated_sensor_consumes_no_injector_step(self):
        supervisor = SensorHealthSupervisor(
            miss_threshold=1, probe_rate=0.5, seed=1, metrics=MetricsRegistry()
        )
        subsystem = make_subsystem("ap-01")
        run_pass(subsystem, supervisor, stall=("ap-01",))
        held, probed = 0, 0
        for _ in range(30):
            plane_calls = run_pass(subsystem, supervisor, stall=("ap-01",))
            if plane_calls:
                probed += 1
            else:
                held += 1  # the fault plane never saw the sensor
        assert held > 0 and probed > 0

    def test_failed_probe_stays_quarantined_until_a_clean_answer(self):
        supervisor = SensorHealthSupervisor(
            miss_threshold=3, probe_rate=1.0, seed=0, metrics=MetricsRegistry()
        )
        subsystem = make_subsystem("ap-01")
        for _ in range(3):
            run_pass(subsystem, supervisor, stall=("ap-01",))
        assert supervisor.quarantined() == ["ap-01"]
        # probe_rate=1.0: every pass probes; the stall continues.
        for _ in range(5):
            run_pass(subsystem, supervisor, stall=("ap-01",))
        assert supervisor.quarantined() == ["ap-01"]
        assert supervisor.health("ap-01").probes == 5
        # The stall clears: the next probe answers and re-admits.
        run_pass(subsystem, supervisor)
        assert supervisor.quarantined() == []
        assert supervisor.health("ap-01").readmissions == 1
        assert supervisor.health("ap-01").consecutive_misses == 0

    def test_readmission_is_metered(self):
        metrics = MetricsRegistry()
        supervisor = SensorHealthSupervisor(
            miss_threshold=1, probe_rate=1.0, metrics=metrics
        )
        subsystem = make_subsystem("ap-01")
        run_pass(subsystem, supervisor, stall=("ap-01",))
        run_pass(subsystem, supervisor)
        assert metrics.total("quarantine_events_total") == 1
        assert metrics.total("quarantine_readmissions_total") == 1
        assert metrics.total(
            "quarantine_events_by_sensor_total", {"sensor": "ap-01"}
        ) == 1


class TestDeterminism:
    def test_same_seed_probes_identically(self):
        def run(seed):
            supervisor = SensorHealthSupervisor(
                miss_threshold=1, probe_rate=0.3, seed=seed,
                metrics=MetricsRegistry(),
            )
            subsystem = make_subsystem("ap-01")
            run_pass(subsystem, supervisor, stall=("ap-01",))
            log = []
            for tick in range(40):
                stall = ("ap-01",) if tick < 20 else ()
                run_pass(subsystem, supervisor, stall=stall)
                log.append(
                    (tuple(supervisor.quarantined()),
                     supervisor.health("ap-01").probes)
                )
            return log

        first = run(11)
        assert first == run(11)
        assert first != run(12)
        # The sensor must eventually be re-admitted once the stall ends.
        assert first[-1][0] == ()
