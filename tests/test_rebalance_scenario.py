"""End-to-end tests for the elastic-membership rebalance scenario.

The scenario's own machine-checked invariants are the primary gate
(``report.ok``); the tests here additionally pin the *shape* of the run
-- both fault windows fired exactly once, the journal-guided resumption
actually took the committed path, every forwarded decision is marked
and matched one-for-one by its audit record, and the byte-for-byte
determinism the ``make rebalance`` diff relies on.
"""

import json

import pytest

from repro.__main__ import main
from repro.simulation.rebalance import run_rebalance_scenario

PLAN, SEED = "ring-change", 23


@pytest.fixture(scope="module")
def report():
    return run_rebalance_scenario(plan_name=PLAN, seed=SEED)


class TestInvariants:
    def test_scenario_passes_its_own_invariants(self, report):
        assert report.ok, report.report_text

    def test_both_fault_windows_fired_exactly_once(self, report):
        assert report.fault_counts.get("cutover_partition") == 1
        assert report.fault_counts.get("crash_mid_migration") == 1

    def test_the_ring_changed_twice_and_membership_settled(self, report):
        assert report.ring_version == 3
        assert report.decommissioned == [report.drained_building]
        assert report.drained_building not in report.final_residents_by_building
        assert report.new_building in report.final_residents_by_building
        # No user was lost or duplicated by the moves.
        assert (
            sum(report.final_residents_by_building.values())
            == report.population
        )

    def test_migrations_converge_with_a_journal_resumption(self, report):
        stats = report.migration_stats
        assert stats["planned"] == report.wave1_planned + report.wave2_planned
        assert (
            stats["completed"] + stats["already_finalized"]
            == stats["planned"]
        )
        assert report.pending_remaining == 0
        assert stats["crashes"] == 1
        assert stats["partitioned"] == 1
        # Both interrupted migrations resumed through the replayed WAL
        # journal (dest had ``committed``), not by re-copying.
        assert stats["resumed_committed"] == 2
        assert report.observations_moved > 0
        assert report.preferences_moved > 0

    def test_the_crash_recovers_through_the_wal(self, report):
        assert report.crashed and report.recovered
        assert report.crash_building == report.new_building
        assert report.recovery is not None
        assert report.recovery.frames_replayed > 0
        assert report.journal_entries >= 2

    def test_forwarded_decisions_are_marked_and_ledgered(self, report):
        assert report.forwarded_responses > 0
        assert report.unmarked_responses == 0
        assert report.marked_responses == report.forwarded_responses
        # Zero lost, zero duplicated: each marked response has exactly
        # one marked audit record.
        assert report.marked_audit == report.marked_responses

    def test_dark_destination_is_fail_closed(self, report):
        assert report.failclosed_probes > 0
        assert report.failclosed_denied == report.failclosed_probes
        assert report.failclosed_allows == 0

    def test_the_dsar_lands_mid_migration_and_sticks(self, report):
        assert report.dsar_mid_flight
        assert len(report.dsar_buildings) >= 2
        assert report.dsar_erased > 0
        # The physical sweep re-opened every shard directory (the
        # decommissioned building's included) with the standalone
        # reader: no observation and no journaled migration snapshot
        # may still hold the erased subject.
        assert report.swept_shards == len(report.buildings) + 1
        assert report.resurrected == 0
        assert report.journal_snapshots_with_subject == 0

    def test_decommissioning_is_complete(self, report):
        assert report.unknown_probes > 0
        assert report.unknown_rejections >= report.unknown_probes
        assert report.breaker_entries_left == 0

    def test_critical_is_never_shed(self, report):
        assert report.critical.shed == 0
        assert report.critical.failed == 0
        assert report.critical.completed == report.critical.attempted

    def test_ledger_identity_holds(self, report):
        assert report.ledger_checked == (
            report.ledger_admitted + report.ledger_shed
        )
        assert report.bus_attempts == (
            report.bus_logical_calls + report.bus_retries
        )


class TestDeterminism:
    def test_same_seed_reports_are_byte_identical(self, report):
        again = run_rebalance_scenario(plan_name=PLAN, seed=SEED)
        assert report.report_text == again.report_text
        assert json.dumps(report.to_dict(), sort_keys=True) == json.dumps(
            again.to_dict(), sort_keys=True
        )

    def test_another_seed_also_satisfies_the_invariants(self):
        other = run_rebalance_scenario(plan_name=PLAN, seed=5)
        assert other.ok, other.report_text

    def test_rejects_an_unknown_plan(self):
        from repro.errors import FaultError

        with pytest.raises(FaultError):
            run_rebalance_scenario(plan_name="no-such-plan", seed=SEED)


class TestCli:
    def test_rebalance_text_report(self, capsys):
        assert main(["rebalance", "--plan", PLAN, "--seed", str(SEED)]) == 0
        out = capsys.readouterr().out
        assert "rebalance run: plan=ring-change seed=23" in out
        assert "result: OK" in out

    def test_rebalance_json(self, capsys):
        assert main(
            ["rebalance", "--plan", PLAN, "--seed", str(SEED), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["plan"] == PLAN
        assert payload["crash"]["recovered"] is True

    def test_rebalance_report_out(self, tmp_path, capsys):
        out_path = tmp_path / "rebalance.txt"
        assert main(
            ["rebalance", "--seed", str(SEED), "--report-out", str(out_path)]
        ) == 0
        assert out_path.read_text() == capsys.readouterr().out

    def test_rebalance_rejects_unknown_plan(self, capsys):
        assert main(["rebalance", "--plan", "no-such-plan"]) == 2
        assert "error" in capsys.readouterr().err
