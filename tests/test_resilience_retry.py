"""RetryPolicy and Deadline semantics, plus their bus integration."""

import pytest

from repro.errors import DeadlineError, NetworkError
from repro.faults import FaultInjector, FaultKind, FaultSpec, single_spec_plan
from repro.net.bus import MessageBus
from repro.net.resilience import Deadline, RetryPolicy
from repro.obs.metrics import MetricsRegistry


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().base_delay_for(0)

    def test_base_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_retries=6, base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0,
            jitter=0.0,
        )
        assert policy.base_schedule() == (0.1, 0.2, 0.4, 0.8, 1.0, 1.0)

    def test_zero_jitter_schedule_equals_base(self):
        policy = RetryPolicy(jitter=0.0)
        assert policy.schedule() == policy.base_schedule()

    def test_jitter_is_deterministic_per_seed(self):
        first = RetryPolicy(seed=7).schedule()
        second = RetryPolicy(seed=7).schedule()
        assert first == second
        assert RetryPolicy(seed=8).schedule() != first

    def test_jitter_stays_within_band_and_cap(self):
        policy = RetryPolicy(
            max_retries=8, base_delay_s=0.5, multiplier=2.0, max_delay_s=2.0,
            jitter=0.1, seed=3,
        )
        for attempt in range(1, 9):
            base = policy.base_delay_for(attempt)
            delay = policy.delay_for(attempt)
            assert delay <= policy.max_delay_s
            assert base * (1 - policy.jitter) <= delay or delay == policy.max_delay_s
            assert delay <= base * (1 + policy.jitter)

    def test_schedule_within_respects_budget(self):
        policy = RetryPolicy(max_retries=5, jitter=0.0, base_delay_s=0.1,
                             multiplier=2.0, max_delay_s=10.0)
        # Full schedule: 0.1, 0.2, 0.4, 0.8, 1.6
        assert policy.schedule_within(0.75) == (0.1, 0.2, 0.4)
        assert policy.schedule_within(0.05) == ()
        assert sum(policy.schedule_within(100.0)) == pytest.approx(3.1)
        with pytest.raises(ValueError):
            policy.schedule_within(-1.0)


class TestDeadline:
    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(1.0).try_charge(-0.1)

    def test_spend_down(self):
        deadline = Deadline(1.0)
        assert deadline.try_charge(0.6)
        assert deadline.remaining_s == pytest.approx(0.4)
        assert not deadline.try_charge(0.5)
        assert deadline.remaining_s == pytest.approx(0.4)  # refused, not charged
        assert deadline.try_charge(0.4)
        assert deadline.expired

    def test_charge_raises_when_overdrawn(self):
        deadline = Deadline(0.5)
        deadline.charge(0.3)
        with pytest.raises(DeadlineError):
            deadline.charge(0.3)


class TestBusRetryIntegration:
    def make_bus(self):
        bus = MessageBus(metrics=MetricsRegistry())
        bus.register_handler("echo", lambda method, payload: {"ok": True})
        return bus

    def test_retry_policy_recovers_from_injected_drops(self):
        bus = self.make_bus()
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.DROP, at_steps=(0, 1)))
        )
        injector.install_bus(bus)
        policy = RetryPolicy(max_retries=3, jitter=0.0)
        assert bus.call("echo", "ping", retry_policy=policy) == {"ok": True}
        assert bus.stats.logical_calls == 1
        assert bus.stats.retries == 2
        assert bus.stats.calls == bus.stats.logical_calls + bus.stats.retries
        # The first two backoff delays were charged as simulated latency.
        assert bus.stats.simulated_latency_s == pytest.approx(
            sum(policy.schedule()[:2])
        )

    def test_deadline_stops_retrying_midway(self):
        bus = self.make_bus()
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.DROP))  # every attempt
        )
        injector.install_bus(bus)
        policy = RetryPolicy(max_retries=5, base_delay_s=0.1, multiplier=2.0,
                             jitter=0.0, max_delay_s=10.0)
        deadline = Deadline(0.35)  # affords 0.1 + 0.2, not the 0.4 after
        with pytest.raises(DeadlineError):
            bus.call("echo", "ping", retry_policy=policy, deadline=deadline)
        assert bus.stats.retries == 2
        assert bus.stats.calls == 3  # first attempt + two retries
        assert deadline.remaining_s == pytest.approx(0.05)

    def test_budget_exhaustion_is_metered(self):
        metrics = MetricsRegistry()
        bus = MessageBus(metrics=metrics)
        bus.register_handler("echo", lambda method, payload: {"ok": True})
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.DROP))
        )
        injector.install_bus(bus)
        with pytest.raises(DeadlineError):
            bus.call(
                "echo", "ping",
                retry_policy=RetryPolicy(jitter=0.0),
                deadline=Deadline(0.01),
            )
        assert metrics.total("bus_deadline_exhausted_total") == 1

    def test_retry_budget_exhausted_raises_last_error(self):
        bus = self.make_bus()
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.DROP))
        )
        injector.install_bus(bus)
        with pytest.raises(NetworkError):
            bus.call("echo", "ping", retry_policy=RetryPolicy(max_retries=2, jitter=0.0))
        assert bus.stats.calls == 3
        assert bus.stats.retries == 2
