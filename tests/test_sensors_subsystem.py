"""Unit tests for repro.sensors.subsystem."""

import pytest

from repro.errors import SensorError
from repro.sensors.drivers import MotionSensor, SurveillanceCamera
from repro.sensors.environment import EnvironmentView, PresentDevice
from repro.sensors.subsystem import SensorSubsystem


class TwoRoomWorld(EnvironmentView):
    def devices_in(self, space_id):
        if space_id == "r1":
            return [PresentDevice("mary", "aa:bb")]
        return []


@pytest.fixture
def subsystem():
    sub = SensorSubsystem("camera")
    sub.add(SurveillanceCamera("cam-1", "r1"))
    sub.add(SurveillanceCamera("cam-2", "r2"))
    return sub


class TestRegistry:
    def test_duplicate_id_rejected(self, subsystem):
        with pytest.raises(SensorError):
            subsystem.add(SurveillanceCamera("cam-1", "r3"))

    def test_get_unknown(self, subsystem):
        with pytest.raises(SensorError):
            subsystem.get("cam-99")

    def test_remove(self, subsystem):
        subsystem.remove("cam-1")
        assert len(subsystem) == 1
        assert "cam-1" not in subsystem

    def test_sensors_in_space(self, subsystem):
        assert [s.sensor_id for s in subsystem.sensors_in_space("r1")] == ["cam-1"]

    def test_select(self, subsystem):
        chosen = subsystem.select(lambda s: s.space_id == "r2")
        assert [s.sensor_id for s in chosen] == ["cam-2"]


class TestActuation:
    def test_actuate_all(self, subsystem):
        count = subsystem.actuate_all({"recording": "off"})
        assert count == 2
        assert all(s.settings.get("recording") == "off" for s in subsystem)

    def test_actuate_with_predicate(self, subsystem):
        count = subsystem.actuate_all(
            {"recording": "off"}, predicate=lambda s: s.space_id == "r1"
        )
        assert count == 1
        assert subsystem.get("cam-1").settings.get("recording") == "off"
        assert subsystem.get("cam-2").settings.get("recording") == "on"

    def test_actuate_invalid_setting_raises(self, subsystem):
        with pytest.raises(SensorError):
            subsystem.actuate_all({"resolution": "8k"})


class TestSampling:
    def test_sample_all_gathers_everything(self, subsystem):
        observations = subsystem.sample_all(0.0, TwoRoomWorld())
        assert {o.sensor_id for o in observations} == {"cam-1", "cam-2"}

    def test_disabled_sensor_skipped(self, subsystem):
        subsystem.get("cam-2").disable()
        observations = subsystem.sample_all(0.0, TwoRoomWorld())
        assert {o.sensor_id for o in observations} == {"cam-1"}
