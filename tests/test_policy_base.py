"""Unit tests for repro.core.policy.base."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.errors import PolicyError


def make_request(**overrides) -> DataRequest:
    defaults = dict(
        requester_id="svc",
        requester_kind=RequesterKind.BUILDING_SERVICE,
        phase=DecisionPhase.SHARING,
        category=DataCategory.LOCATION,
        subject_id="mary",
        space_id="r1",
        timestamp=100.0,
        purpose=Purpose.PROVIDING_SERVICE,
    )
    defaults.update(overrides)
    return DataRequest(**defaults)


class TestDataRequest:
    def test_empty_requester_rejected(self):
        with pytest.raises(PolicyError):
            make_request(requester_id="")

    def test_negative_timestamp_rejected(self):
        with pytest.raises(PolicyError):
            make_request(timestamp=-1.0)

    def test_with_granularity_copies(self):
        request = make_request()
        coarse = request.with_granularity(GranularityLevel.COARSE)
        assert coarse.granularity is GranularityLevel.COARSE
        assert request.granularity is GranularityLevel.PRECISE
        assert coarse.subject_id == request.subject_id
        assert coarse.purpose == request.purpose

    def test_is_attributable(self):
        assert make_request().is_attributable
        assert not make_request(subject_id=None).is_attributable

    def test_requests_are_hashable_ignoring_attributes(self):
        # frozen dataclass with a dict field is not hashable; verify the
        # documented workaround (attributes default) doesn't break eq.
        a = make_request()
        b = make_request()
        assert a == b


class TestEnums:
    def test_all_phases_present(self):
        assert {p.value for p in DecisionPhase} == {
            "capture",
            "storage",
            "processing",
            "sharing",
        }

    def test_effects(self):
        assert Effect("allow") is Effect.ALLOW
        assert Effect("deny") is Effect.DENY

    def test_requester_kinds_cover_paper_actors(self):
        values = {k.value for k in RequesterKind}
        assert {"building", "building_service", "third_party_service", "user", "external"} == values
