"""Unit tests for the tracer: span nesting, exception-safety, clocks."""

import pytest

from repro.errors import NetworkError
from repro.net.bus import Endpoint, MessageBus, RpcError
from repro.obs.instrument import timed
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import ManualClock, NullTracer, Tracer, get_tracer, set_tracer


class TestSpanNesting:
    def test_parent_child_links(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child_1") as child1:
                with tracer.span("grandchild") as grandchild:
                    pass
            with tracer.span("child_2") as child2:
                pass
        assert parent.children == [child1, child2]
        assert child1.children == [grandchild]
        assert grandchild.parent is child1
        assert parent.parent is None
        assert list(tracer.roots) == [parent]

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        names = [span.name for span in tracer.spans()]
        assert names == ["a", "b", "c", "d"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_current_span_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer"):
            assert tracer.current().name == "outer"
            with tracer.span("inner"):
                assert tracer.current().name == "inner"
            assert tracer.current().name == "outer"
        assert tracer.current() is None

    def test_attributes_recorded(self):
        tracer = Tracer()
        with tracer.span("bus.call", target="tippers", method="locate_user") as span:
            pass
        assert span.attributes == {"target": "tippers", "method": "locate_user"}

    def test_roots_bounded(self):
        tracer = Tracer(max_roots=3)
        for index in range(10):
            with tracer.span("s%d" % index):
                pass
        assert [r.name for r in tracer.roots] == ["s7", "s8", "s9"]


class _Failing(Endpoint):
    def handle(self, method, payload):
        raise NetworkError("endpoint exploded")


class TestExceptionSafety:
    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(NetworkError):
            with tracer.span("doomed"):
                raise NetworkError("boom")
        (root,) = tracer.roots
        assert root.finished
        assert root.status == "error"
        assert "NetworkError" in root.error
        assert tracer.errored == 1
        assert tracer.current() is None

    def test_nested_spans_all_close_when_inner_raises(self):
        tracer = Tracer()
        with pytest.raises(NetworkError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise NetworkError("boom")
        (outer,) = tracer.roots
        (inner,) = outer.children
        assert outer.finished and inner.finished
        assert outer.status == "error" and inner.status == "error"

    def test_bus_call_span_closes_on_rpc_error(self):
        tracer = Tracer()
        bus = MessageBus(metrics=MetricsRegistry(), tracer=tracer)
        bus.register("svc", _Failing())
        with pytest.raises(RpcError):
            bus.call("svc", "anything")
        (span,) = tracer.find("bus.call")
        assert span.finished
        assert span.status == "error"
        assert "RpcError" in span.error

    def test_bus_call_span_closes_on_network_loss(self):
        import random

        tracer = Tracer()
        bus = MessageBus(
            drop_rate=0.999999,
            rng=random.Random(0),
            metrics=MetricsRegistry(),
            tracer=tracer,
        )
        bus.register("svc", _Failing())
        with pytest.raises(NetworkError):
            bus.call("svc", "anything", retries=2)
        (span,) = tracer.find("bus.call")
        assert span.finished
        assert span.status == "error"


class TestSimulatedClock:
    def test_durations_use_injected_clock(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(2.0)
            with tracer.span("inner"):
                clock.advance(0.5)
        (outer,) = tracer.roots
        (inner,) = outer.children
        assert outer.duration == pytest.approx(2.5)
        assert inner.duration == pytest.approx(0.5)
        assert inner.start == pytest.approx(2.0)

    def test_manual_clock_cannot_rewind(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1)

    def test_slowest_roots_ordering(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        for name, duration in (("fast", 0.1), ("slow", 5.0), ("medium", 1.0)):
            with tracer.span(name):
                clock.advance(duration)
        assert [s.name for s in tracer.slowest_roots(2)] == ["slow", "medium"]


class TestRendering:
    def test_tree_lines_indent_children(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("root", kind="demo"):
            with tracer.span("leaf"):
                clock.advance(1.0)
        (root,) = tracer.roots
        lines = root.tree_lines()
        assert lines[0].startswith("root")
        assert "kind=demo" in lines[0]
        assert lines[1].startswith("  leaf")


class TestTimedDecorator:
    def test_records_durations_and_reraises(self):
        registry = MetricsRegistry()

        @timed("op_seconds", registry=registry)
        def flaky(fail):
            if fail:
                raise NetworkError("nope")
            return 42

        assert flaky(False) == 42
        with pytest.raises(NetworkError):
            flaky(True)
        histogram = registry.histogram("op_seconds")
        assert histogram.count == 2

    def test_default_registry_resolved_per_call(self):
        from repro.obs.metrics import get_registry, set_registry

        @timed("late_seconds")
        def work():
            return 1

        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            work()
        finally:
            set_registry(previous)
        assert fresh.histogram("late_seconds").count == 1


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("anything"):
            pass
        assert list(tracer.roots) == []


class TestDefaultTracer:
    def test_set_tracer_swaps_and_returns_previous(self):
        fresh = Tracer()
        previous = set_tracer(fresh)
        try:
            assert get_tracer() is fresh
        finally:
            set_tracer(previous)
        assert get_tracer() is previous
