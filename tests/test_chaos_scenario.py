"""The chaos scenario: determinism regression, invariants, and the CLI."""

import json

import pytest

from repro.__main__ import main
from repro.faults import named_plans
from repro.simulation.chaos import run_chaos_scenario

SEED = 11
SMALL = dict(seed=SEED, population=5, ticks=3)


@pytest.fixture(scope="module")
def monkey_runs():
    """Two independent monkey runs with identical parameters."""
    return (
        run_chaos_scenario(plan_name="monkey", **SMALL),
        run_chaos_scenario(plan_name="monkey", **SMALL),
    )


class TestChaosDeterminism:
    def test_fault_traces_are_byte_identical(self, monkey_runs):
        first, second = monkey_runs
        assert first.trace_text == second.trace_text
        assert first.trace_text  # the monkey plan actually fired

    def test_decisions_and_audit_are_identical(self, monkey_runs):
        first, second = monkey_runs
        assert first.decisions == second.decisions
        assert first.audit_effects == second.audit_effects
        assert first.to_dict() == second.to_dict()

    def test_different_seed_changes_the_run(self):
        base = run_chaos_scenario(plan_name="monkey", **SMALL)
        other = run_chaos_scenario(
            plan_name="monkey", seed=SEED + 1, population=5, ticks=3
        )
        assert base.trace_text != other.trace_text

    def test_every_named_plan_is_deterministic(self):
        for name in named_plans():
            first = run_chaos_scenario(plan_name=name, **SMALL)
            second = run_chaos_scenario(plan_name=name, **SMALL)
            assert first.trace_text == second.trace_text, name
            assert first.decisions == second.decisions, name


class TestChaosInvariants:
    def test_bus_accounting_identity_survives_chaos(self, monkey_runs):
        report = monkey_runs[0]
        assert report.bus_attempts == report.bus_logical_calls + report.bus_retries
        assert report.bus_corrupted <= report.bus_faulted
        assert report.bus_faulted <= report.bus_dropped

    def test_no_allow_for_a_faulted_policy_fetch(self):
        # The engine is non-caching, so each decision performs exactly
        # one policy fetch: every injected fetch fault must surface as a
        # fail-closed deny, for every shipped plan.
        for name in named_plans():
            report = run_chaos_scenario(plan_name=name, **SMALL)
            fetch_faults = report.fault_counts.get("policy_fetch_fail", 0)
            assert report.failclosed == fetch_faults, name

    def test_policy_outage_actually_fails_closed(self):
        report = run_chaos_scenario(plan_name="policy-outage", **SMALL)
        assert report.failclosed > 0
        assert "deny" in report.audit_effects

    def test_datastore_brownout_loses_writes_without_crashing(self):
        report = run_chaos_scenario(plan_name="datastore-brownout", **SMALL)
        clean = run_chaos_scenario(plan_name="lossy", **SMALL)
        assert report.write_failures > 0
        assert report.stored < clean.stored + report.write_failures

    def test_monkey_exercises_every_fault_site(self, monkey_runs):
        counts = monkey_runs[0].fault_counts
        assert counts.get("drop", 0) > 0
        assert counts.get("policy_fetch_fail", 0) > 0
        assert counts.get("store_write_fail", 0) > 0
        assert counts.get("sensor_stall", 0) > 0

    def test_queries_are_conserved(self, monkey_runs):
        report = monkey_runs[0]
        assert report.delivered + report.undelivered == (
            report.population * report.ticks
        )
        assert len(report.decisions) == report.delivered


class TestChaosCLI:
    ARGS = ["chaos", "--seed", str(SEED), "--population", "4", "--ticks", "2"]

    def test_summary_output(self, capsys):
        assert main(self.ARGS + ["--plan", "monkey"]) == 0
        out = capsys.readouterr().out
        assert "chaos run: plan=monkey seed=%d" % SEED in out
        assert "queries: delivered=" in out
        assert "faults fired:" in out

    def test_json_output_is_valid(self, capsys):
        assert main(self.ARGS + ["--plan", "lossy", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["plan"] == "lossy"
        assert report["bus"]["attempts"] == (
            report["bus"]["logical_calls"] + report["bus"]["retries"]
        )
        assert report["faults_fired"] == sum(report["fault_counts"].values())

    def test_trace_output(self, capsys):
        assert main(self.ARGS + ["--plan", "monkey", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "== fault trace ==" in out
        assert "step=" in out and "site=" in out

    def test_plan_list(self, capsys):
        assert main(["chaos", "--plan", "list"]) == 0
        out = capsys.readouterr().out
        for name in named_plans():
            assert name in out

    def test_unknown_plan_fails_cleanly(self, capsys):
        assert main(["chaos", "--plan", "volcano"]) == 2
        assert "unknown fault plan" in capsys.readouterr().err
