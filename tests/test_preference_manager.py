"""Unit tests for the user preference manager."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel
from repro.core.policy import catalog
from repro.core.policy.base import DecisionPhase, Effect
from repro.core.policy.preference import UserPreference
from repro.core.reasoner.conflicts import ConflictKind
from repro.errors import PolicyError


def preference(pid="f1", user="mary", **overrides):
    defaults = dict(
        preference_id=pid,
        user_id=user,
        description="d",
        effect=Effect.DENY,
        categories=(DataCategory.LOCATION,),
        phases=(DecisionPhase.SHARING,),
    )
    defaults.update(overrides)
    return UserPreference(**defaults)


class TestSubmission:
    def test_submit_stores_and_reports_conflicts(self, tippers):
        conflicts = tippers.preference_manager.submit(
            catalog.preference_2_no_location("mary")
        )
        kinds = {c.kind for c in conflicts}
        assert ConflictKind.HARD in kinds  # vs mandatory policy-2
        prefs = tippers.preference_manager.preferences_of("mary")
        assert len(prefs) == 1

    def test_unknown_user_rejected(self, tippers):
        with pytest.raises(PolicyError):
            tippers.preference_manager.submit(preference(user="ghost"))

    def test_resubmission_replaces(self, tippers):
        tippers.preference_manager.submit(preference())
        tippers.preference_manager.submit(
            preference(categories=(DataCategory.PRESENCE,))
        )
        prefs = tippers.preference_manager.preferences_of("mary")
        assert len(prefs) == 1
        assert prefs[0].categories == (DataCategory.PRESENCE,)

    def test_non_conflicting_preference_reports_nothing(self, tippers):
        conflicts = tippers.preference_manager.submit(
            preference(categories=(DataCategory.SOCIAL_TIES,))
        )
        assert conflicts == []

    def test_submit_permission(self, tippers):
        conflicts = tippers.preference_manager.submit_permission(
            catalog.preference_3_concierge_location("mary")
        )
        prefs = tippers.preference_manager.preferences_of("mary")
        assert len(prefs) == 1
        assert prefs[0].effect is Effect.ALLOW


class TestWithdrawal:
    def test_withdraw_single(self, tippers):
        tippers.preference_manager.submit(preference("f1"))
        tippers.preference_manager.submit(preference("f2"))
        tippers.preference_manager.withdraw("mary", "f1")
        remaining = tippers.preference_manager.preferences_of("mary")
        assert [p.preference_id for p in remaining] == ["f2"]
        # The store must reflect the withdrawal too.
        assert len(tippers.store.preferences) == 1

    def test_withdraw_unknown_rejected(self, tippers):
        with pytest.raises(PolicyError):
            tippers.preference_manager.withdraw("mary", "ghost")

    def test_withdraw_all(self, tippers):
        tippers.preference_manager.submit(preference("f1"))
        tippers.preference_manager.submit(preference("f2"))
        assert tippers.preference_manager.withdraw_all("mary") == 2
        assert tippers.preference_manager.preferences_of("mary") == []
        assert tippers.store.preferences == []


class TestSelections:
    def test_apply_selection_generates_preferences(self, tippers):
        conflicts = tippers.preference_manager.apply_selection(
            "mary", {"location": "off"}
        )
        assert conflicts, "opting out conflicts with the mandatory policy"
        prefs = tippers.preference_manager.preferences_of("mary")
        assert len(prefs) == 1
        assert prefs[0].effect is Effect.DENY
        assert tippers.preference_manager.selection_of("mary") == {"location": "off"}

    def test_coarse_selection_caps(self, tippers):
        tippers.preference_manager.apply_selection("mary", {"location": "coarse"})
        prefs = tippers.preference_manager.preferences_of("mary")
        assert prefs[0].granularity_cap is GranularityLevel.COARSE

    def test_invalid_selection_rejected(self, tippers):
        with pytest.raises(PolicyError):
            tippers.preference_manager.apply_selection("mary", {"location": "sometimes"})


class TestIntrospection:
    def test_users_with_preferences(self, tippers):
        tippers.preference_manager.submit(preference())
        tippers.preference_manager.submit(preference("f2", user="bob"))
        assert tippers.preference_manager.users_with_preferences() == ["bob", "mary"]
        assert tippers.preference_manager.count() == 2

    def test_conflicts_of(self, tippers):
        tippers.preference_manager.submit(catalog.preference_2_no_location("mary"))
        conflicts = tippers.preference_manager.conflicts_of("mary")
        assert conflicts
        assert all(c.preference.user_id == "mary" for c in conflicts)
