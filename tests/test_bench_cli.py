"""Unit tests for the bench trajectory: runner, compare gate, and CLI.

The suite itself is exercised at the cheap ``smoke`` scale once (module
fixture) and the resulting record is reused across tests; degraded
candidates are built by perturbing its numbers, not by re-running.
"""

import dataclasses
import json

import pytest

from repro import bench
from repro.__main__ import main
from repro.errors import BenchError

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def smoke_record():
    return bench.run_suite(scale="smoke", label="unit-test")


def degrade(record, latency_factor=1.0, throughput_factor=1.0):
    """A copy of ``record`` with every benchmark made slower."""
    benchmarks = {}
    for name, entry in record.benchmarks.items():
        latency = entry.decision_latency
        benchmarks[name] = dataclasses.replace(
            entry,
            decision_latency=dataclasses.replace(
                latency,
                p50_us=latency.p50_us * latency_factor,
                p99_us=latency.p99_us * latency_factor,
                mean_us=latency.mean_us * latency_factor,
                max_us=latency.max_us * latency_factor,
            ),
            ingest_throughput_per_s=(
                entry.ingest_throughput_per_s / throughput_factor
            ),
        )
    return dataclasses.replace(record, benchmarks=benchmarks)


class TestRunSuite:
    def test_record_is_valid_and_complete(self, smoke_record):
        smoke_record.validate()
        assert set(smoke_record.benchmarks) == set(bench.BENCHMARK_NAMES)
        assert smoke_record.scale == "smoke"
        assert smoke_record.peak_rss_kb > 0

    def test_every_benchmark_measured_real_work(self, smoke_record):
        for entry in smoke_record.benchmarks.values():
            assert entry.decision_latency.count > 0
            assert entry.ingest_throughput_per_s > 0.0
        assert smoke_record.benchmarks["scale_ingest"].wal_bytes > 0
        assert smoke_record.benchmarks["scale_overload"].shed_rate > 0.0

    def test_enforcement_reports_index_speedup(self, smoke_record):
        extra = smoke_record.benchmarks["scale_enforcement"].extra
        assert extra["linear_speedup"] > 0.0

    def test_unknown_scale_is_rejected(self):
        with pytest.raises(BenchError, match="scale"):
            bench.run_suite(scale="galactic")


class TestTrajectory:
    def test_append_numbers_sequentially(self, smoke_record, tmp_path):
        first, first_path = bench.append_record(smoke_record, str(tmp_path))
        second, second_path = bench.append_record(smoke_record, str(tmp_path))
        assert first.record_id == 1
        assert second.record_id == 2
        assert first_path.endswith("BENCH_0001.json")
        assert second_path.endswith("BENCH_0002.json")
        assert bench.latest_record(str(tmp_path)).record_id == 2

    def test_scratch_outputs_never_become_baselines(
        self, smoke_record, tmp_path
    ):
        bench.write_record(smoke_record, str(tmp_path / "BENCH_PR.json"))
        assert bench.latest_record(str(tmp_path)) is None
        assert bench.list_records(str(tmp_path)) == []

    def test_write_is_atomic(self, smoke_record, tmp_path):
        path = tmp_path / "BENCH_0001.json"
        bench.write_record(smoke_record, str(path))
        assert not (tmp_path / "BENCH_0001.json.tmp").exists()
        assert bench.load_record(str(path)).benchmarks


class TestCompare:
    def test_identical_records_pass(self, smoke_record):
        report = bench.compare_records(smoke_record, smoke_record)
        assert report.ok
        assert not report.regressions

    def test_latency_regression_is_caught(self, smoke_record):
        report = bench.compare_records(
            smoke_record, degrade(smoke_record, latency_factor=100.0)
        )
        assert not report.ok
        assert any("decision_latency" in v.metric for v in report.regressions)

    def test_throughput_regression_is_caught(self, smoke_record):
        report = bench.compare_records(
            smoke_record, degrade(smoke_record, throughput_factor=100.0)
        )
        assert not report.ok
        assert any("throughput" in v.metric for v in report.regressions)

    def test_missing_benchmark_is_a_regression(self, smoke_record):
        benchmarks = dict(smoke_record.benchmarks)
        del benchmarks["scale_week"]
        candidate = dataclasses.replace(smoke_record, benchmarks=benchmarks)
        report = bench.compare_records(smoke_record, candidate)
        assert any(v.detail.startswith("benchmark missing")
                   for v in report.regressions)

    def test_report_renders_and_serializes(self, smoke_record):
        report = bench.compare_records(smoke_record, smoke_record)
        assert any("result: OK" in line for line in report.lines())
        payload = report.to_dict()
        assert payload["ok"] is True
        assert len(payload["verdicts"]) == len(report.verdicts)


class TestBenchCLI:
    def test_run_json_validates(self, capsys):
        assert main(["bench", "run", "--scale", "smoke", "--json"]) == 0
        out = capsys.readouterr().out
        record = bench.BenchRecord.loads(out)
        assert record.scale == "smoke"

    def test_record_then_compare_pass_and_fail(
        self, smoke_record, tmp_path, capsys
    ):
        trajectory = str(tmp_path)
        bench.append_record(smoke_record, trajectory)
        good = tmp_path / "candidate-good.json"
        bench.write_record(smoke_record, str(good))
        assert main(
            ["bench", "compare", "--dir", trajectory,
             "--candidate", str(good)]
        ) == 0
        bad = tmp_path / "candidate-bad.json"
        bench.write_record(degrade(smoke_record, latency_factor=100.0),
                           str(bad))
        assert main(
            ["bench", "compare", "--dir", trajectory,
             "--candidate", str(bad)]
        ) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_without_baseline_is_usage_error(self, tmp_path, capsys):
        assert main(["bench", "compare", "--dir", str(tmp_path)]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_run_out_writes_record(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_PR.json"
        assert main(
            ["bench", "run", "--scale", "smoke", "--out", str(out_path)]
        ) == 0
        assert bench.load_record(str(out_path)).scale == "smoke"


class TestSoakCLI:
    def test_soak_reports_and_writes_deterministic_text(
        self, tmp_path, capsys
    ):
        report_path = tmp_path / "soak.txt"
        assert main(
            ["soak", "--populations", "500,5000", "--ticks", "2",
             "--report-out", str(report_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "max sustainable population: 5000" in out
        assert report_path.read_text() == out

    def test_soak_json_round_trips(self, capsys):
        assert main(
            ["soak", "--populations", "500", "--ticks", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_sustainable_population"] == 500

    def test_soak_with_no_sustainable_step_exits_nonzero(self, capsys):
        assert main(
            ["soak", "--populations", "200000", "--ticks", "2"]
        ) == 1

    def test_soak_rejects_bad_populations(self, capsys):
        assert main(["soak", "--populations", "abc"]) == 2
