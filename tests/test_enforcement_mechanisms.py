"""Unit tests for privacy mechanisms."""

import random

import pytest

from repro.core.enforcement.mechanisms import (
    aggregate_counts,
    coarsen_space,
    degrade_observation,
    laplace_noise,
    noisy_counts,
    suppress_personal_fields,
)
from repro.core.language.vocabulary import GranularityLevel
from repro.errors import EnforcementError
from repro.sensors.base import Observation
from repro.sensors.ontology import default_ontology
from repro.spatial.model import build_simple_building


@pytest.fixture
def spatial():
    return build_simple_building("b", floors=2, rooms_per_floor=4)


def observation(space_id="b-1001", subject="mary", sensor_type="wifi_access_point"):
    return Observation.create(
        sensor_id="ap-1",
        sensor_type=sensor_type,
        timestamp=10.0,
        space_id=space_id,
        payload={"device_mac": "aa:bb", "ap_mac": "ap:1", "rssi": -40.0},
        subject_id=subject,
    )


class TestCoarsenSpace:
    def test_precise_keeps_space(self, spatial):
        assert coarsen_space("b-1001", GranularityLevel.PRECISE, spatial) == "b-1001"

    def test_coarse_reports_floor(self, spatial):
        assert coarsen_space("b-1001", GranularityLevel.COARSE, spatial) == "b-f1"

    def test_building_level(self, spatial):
        assert coarsen_space("b-1001", GranularityLevel.BUILDING, spatial) == "b"

    def test_none_hides(self, spatial):
        assert coarsen_space("b-1001", GranularityLevel.NONE, spatial) is None

    def test_missing_model_hides_rather_than_leaks(self):
        assert coarsen_space("b-1001", GranularityLevel.COARSE, None) is None

    def test_unknown_space_hides(self, spatial):
        assert coarsen_space("mars", GranularityLevel.COARSE, spatial) is None

    def test_already_coarse_space_kept(self, spatial):
        assert coarsen_space("b-f1", GranularityLevel.COARSE, spatial) == "b-f1"
        assert coarsen_space("b", GranularityLevel.COARSE, spatial) == "b"

    def test_none_space_passthrough(self, spatial):
        assert coarsen_space(None, GranularityLevel.COARSE, spatial) is None


class TestSuppressFields:
    def test_redacts_only_listed(self):
        out = suppress_personal_fields({"a": 1, "b": 2}, ["a"])
        assert out == {"a": "[redacted]", "b": 2}

    def test_original_untouched(self):
        payload = {"a": 1}
        suppress_personal_fields(payload, ["a"])
        assert payload == {"a": 1}


class TestDegradeObservation:
    def test_none_drops(self, spatial):
        assert degrade_observation(observation(), GranularityLevel.NONE, spatial) is None

    def test_precise_identity(self, spatial):
        obs = observation()
        assert degrade_observation(obs, GranularityLevel.PRECISE, spatial) is obs

    def test_coarse_moves_to_floor(self, spatial):
        out = degrade_observation(observation(), GranularityLevel.COARSE, spatial)
        assert out.space_id == "b-f1"
        assert out.subject_id == "mary", "coarse keeps attribution"
        assert out.granularity == "coarse"

    def test_aggregate_deidentifies(self, spatial):
        out = degrade_observation(
            observation(),
            GranularityLevel.AGGREGATE,
            spatial,
            ontology=default_ontology(),
        )
        assert out.subject_id is None
        assert out.payload["device_mac"] == "[redacted]"
        assert out.payload["rssi"] == -40.0, "non-personal fields kept"

    def test_aggregate_without_ontology_keeps_payload(self, spatial):
        out = degrade_observation(observation(), GranularityLevel.AGGREGATE, spatial)
        assert out.subject_id is None
        assert out.payload["device_mac"] == "aa:bb"


class TestAggregateCounts:
    def make(self, space, subject):
        return Observation.create("s", "bluetooth_beacon", 0.0, space, {}, subject_id=subject)

    def test_k_suppression(self):
        observations = [
            self.make("r1", "a"), self.make("r1", "b"), self.make("r1", "c"),
            self.make("r2", "d"), self.make("r2", "e"),
        ]
        counts = aggregate_counts(observations, k=3)
        assert counts == {"r1": 3}

    def test_distinct_subjects_counted_once(self):
        observations = [self.make("r1", "a")] * 5
        assert aggregate_counts(observations, k=1) == {"r1": 1}

    def test_unattributed_ignored(self):
        observations = [self.make("r1", None), self.make(None, "a")]
        assert aggregate_counts(observations, k=1) == {}

    def test_invalid_k(self):
        with pytest.raises(EnforcementError):
            aggregate_counts([], k=0)


class TestLaplaceNoise:
    def test_deterministic_with_seed(self):
        a = laplace_noise(10.0, rng=random.Random(1))
        b = laplace_noise(10.0, rng=random.Random(1))
        assert a == b

    def test_mean_approximately_unbiased(self):
        rng = random.Random(42)
        samples = [laplace_noise(0.0, 1.0, 1.0, rng) for _ in range(5000)]
        assert abs(sum(samples) / len(samples)) < 0.1

    def test_scale_shrinks_with_epsilon(self):
        rng = random.Random(0)
        wide = [abs(laplace_noise(0.0, 1.0, 0.1, rng)) for _ in range(2000)]
        rng = random.Random(0)
        narrow = [abs(laplace_noise(0.0, 1.0, 10.0, rng)) for _ in range(2000)]
        assert sum(wide) > sum(narrow) * 10

    def test_invalid_parameters(self):
        with pytest.raises(EnforcementError):
            laplace_noise(0.0, epsilon=0.0)
        with pytest.raises(EnforcementError):
            laplace_noise(0.0, sensitivity=-1.0)

    def test_noisy_counts_deterministic(self):
        counts = {"r1": 3, "r2": 5}
        a = noisy_counts(counts, rng=random.Random(7))
        b = noisy_counts(counts, rng=random.Random(7))
        assert a == b
        assert set(a) == {"r1", "r2"}
