"""The interprocedural privacy-flow analyzer (rules F001-F006).

Each scenario is a tiny in-memory module tree fed through
``analyze_flow_sources`` with a narrow :class:`FlowModel`, so every
rule is exercised in isolation: firing, suppression, and the baseline
subtraction that makes the gate adoptable.
"""

import json
import textwrap

import pytest

from repro.__main__ import main
from repro.analysis.flow import (
    FLOW_BASELINE_VERSION,
    BaselineEntry,
    FlowBaseline,
    apply_baseline,
    baseline_from_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.flow.analyzer import analyze_flow_sources
from repro.analysis.flow.callgraph import (
    build_call_graph_from_sources,
    collect_files,
)
from repro.analysis.flow.model import FlowModel
from repro.errors import AnalysisError

#: A self-contained pipeline: sensor source, response sink, engine
#: sanitizer, audit log -- everything the F-rules talk about.
MODEL = FlowModel(
    source_specs=(r"^repro\.pipe\.app\.Sensor\.sample$",),
    sink_specs=(r"^repro\.pipe\.app\.Response(\.denied)?$",),
    sanitizer_specs=(r"^repro\.pipe\.app\.Engine\.decide$",),
    audit_specs=(r"^repro\.pipe\.app\.Audit\.record$",),
)

APP_PATH = "src/repro/pipe/app.py"

COMMON = textwrap.dedent(
    """
    class Sensor:
        def sample(self):
            return {"who": "mary"}

    class Response:
        def __init__(self, rows):
            self.rows = rows

        @classmethod
        def denied(cls, reasons):
            return cls(tuple(reasons))

    class Engine:
        def decide(self, request):
            return request

    class Audit:
        def record(self, entry):
            return entry
    """
)


def analyze(body, model=MODEL, path=APP_PATH, extra=None):
    sources = {path: COMMON + textwrap.dedent(body)}
    if extra:
        sources.update(extra)
    return analyze_flow_sources(sources, model=model)


class TestCallGraph:
    def test_declares_functions_methods_and_class_nodes(self):
        graph = build_call_graph_from_sources({APP_PATH: COMMON}, MODEL)
        assert "repro.pipe.app.Sensor.sample" in graph.functions
        assert "repro.pipe.app.Response.denied" in graph.functions
        assert graph.functions["repro.pipe.app.Sensor"].is_class

    def test_constructor_pseudo_edge(self):
        graph = build_call_graph_from_sources({APP_PATH: COMMON}, MODEL)
        sites = graph.sites_of("repro.pipe.app.Response")
        assert any(
            site.candidates == ("repro.pipe.app.Response.__init__",)
            for site in sites
        )

    def test_param_annotation_resolves_receiver(self):
        graph = build_call_graph_from_sources({APP_PATH: COMMON + textwrap.dedent(
            """
            def use(sensor: Sensor):
                return sensor.sample()
            """
        )}, MODEL)
        assert "repro.pipe.app.use" in graph.callers_of(
            "repro.pipe.app.Sensor.sample"
        )

    def test_bus_topic_registration_builds_a_direct_edge(self):
        sources = {
            "src/repro/pipe/endpoint.py": textwrap.dedent(
                """
                class Endpoint:
                    def handle(self, method, payload):
                        return payload
                """
            ),
            "src/repro/pipe/wiring.py": textwrap.dedent(
                """
                from repro.pipe.endpoint import Endpoint

                def wire(bus):
                    endpoint = Endpoint()
                    bus.register("pipe", endpoint)

                def client(bus):
                    return bus.call("pipe", "method", {})
                """
            ),
        }
        graph = build_call_graph_from_sources(sources, MODEL)
        assert graph.topics == {"pipe": "repro.pipe.endpoint.Endpoint.handle"}
        sites = graph.sites_of("repro.pipe.wiring.client")
        assert any(
            site.candidates == ("repro.pipe.endpoint.Endpoint.handle",)
            for site in sites
        )

    def test_non_constant_bus_target_is_a_dynamic_site(self):
        graph = build_call_graph_from_sources({
            "src/repro/pipe/wiring.py": textwrap.dedent(
                """
                def client(bus, topic):
                    return bus.call(topic, "method", {})
                """
            ),
        }, MODEL)
        sites = graph.sites_of("repro.pipe.wiring.client")
        assert any(site.dynamic for site in sites)

    def test_prefix_registration_resolves_sharded_call_sites(self):
        # The federation pattern: endpoints register under
        # ``PREFIX + building_id`` with the prefix constant imported
        # from another module; calls through the same expression (or a
        # constant topic sharing the prefix) must resolve, not go
        # dynamic.
        sources = {
            "src/repro/pipe/naming.py": 'SHARD_PREFIX = "shard-"\n',
            "src/repro/pipe/endpoint.py": textwrap.dedent(
                """
                class Endpoint:
                    def handle(self, method, payload):
                        return payload
                """
            ),
            "src/repro/pipe/wiring.py": textwrap.dedent(
                """
                from repro.pipe.endpoint import Endpoint
                from repro.pipe.naming import SHARD_PREFIX

                def wire(bus, building_id):
                    endpoint = Endpoint()
                    bus.register(SHARD_PREFIX + building_id, endpoint)

                def client(bus, building_id):
                    return bus.call(SHARD_PREFIX + building_id, "m", {})

                def pinned_client(bus):
                    return bus.call("shard-bldg-a", "m", {})
                """
            ),
        }
        graph = build_call_graph_from_sources(sources, MODEL)
        handle = "repro.pipe.endpoint.Endpoint.handle"
        assert graph.topic_prefixes == {"shard-": handle}
        for caller in ("client", "pinned_client"):
            sites = graph.sites_of("repro.pipe.wiring.%s" % caller)
            assert [s.candidates for s in sites] == [(handle,)]
            assert not any(s.dynamic for s in sites)

    def test_longest_registered_prefix_wins(self):
        sources = {
            "src/repro/pipe/endpoint.py": textwrap.dedent(
                """
                class Endpoint:
                    def handle(self, method, payload):
                        return payload

                class Registry:
                    def handle(self, method, payload):
                        return payload
                """
            ),
            "src/repro/pipe/wiring.py": textwrap.dedent(
                """
                from repro.pipe.endpoint import Endpoint, Registry

                SHORT = "svc-"
                LONG = "svc-registry-"

                def wire(bus, suffix):
                    endpoint = Endpoint()
                    registry = Registry()
                    bus.register(SHORT + suffix, endpoint)
                    bus.register(LONG + suffix, registry)

                def client(bus, suffix):
                    return bus.call(LONG + suffix, "m", {})
                """
            ),
        }
        graph = build_call_graph_from_sources(sources, MODEL)
        sites = graph.sites_of("repro.pipe.wiring.client")
        assert [s.candidates for s in sites] == [
            ("repro.pipe.endpoint.Registry.handle",),
        ]

    def test_classmethod_cls_call_resolves_to_the_class(self):
        graph = build_call_graph_from_sources({APP_PATH: COMMON}, MODEL)
        sites = graph.sites_of("repro.pipe.app.Response.denied")
        assert [s.candidates for s in sites] == [("repro.pipe.app.Response",)]
        assert not any(s.dynamic for s in sites)

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError):
            collect_files(["/no/such/tree"])


class TestF001UnenforcedFlow:
    def test_source_to_sink_without_enforcement_fires(self):
        findings = analyze(
            """
            def leak(sensor: Sensor):
                rows = sensor.sample()
                return Response(rows)
            """
        )
        assert [f.rule_id for f in findings] == ["F001"]
        assert "repro.pipe.app.leak" == findings[0].subject
        assert "repro.pipe.app.Sensor.sample" in findings[0].message

    def test_enforced_flow_is_clean(self):
        findings = analyze(
            """
            def safe(sensor: Sensor, engine: Engine):
                rows = sensor.sample()
                decision = engine.decide(rows)
                if decision:
                    return Response(rows)
                return None
            """
        )
        assert findings == []

    def test_wrapper_blocks_only_itself_not_a_parallel_path(self):
        # ``route`` calls the sanitizing wrapper AND leaks directly;
        # the wrapper must not shield the parallel path.
        findings = analyze(
            """
            def enforce(engine: Engine, rows):
                return engine.decide(rows)

            def route(sensor: Sensor, engine: Engine):
                rows = sensor.sample()
                enforce(engine, rows)
                return Response(rows)
            """
        )
        assert any(
            f.rule_id == "F001" and f.subject == "repro.pipe.app.route"
            for f in findings
        )


class TestF002UncheckedDecision:
    def test_discarded_decision_fires(self):
        findings = analyze(
            """
            def check(engine: Engine, rows):
                engine.decide(rows)
                return rows
            """
        )
        assert [f.rule_id for f in findings] == ["F002"]
        assert "discarded" in findings[0].message

    def test_assigned_but_never_read_fires(self):
        findings = analyze(
            """
            def check(engine: Engine, rows):
                decision = engine.decide(rows)
                return rows
            """
        )
        assert [f.rule_id for f in findings] == ["F002"]
        assert "never read" in findings[0].message

    def test_consulted_decision_is_clean(self):
        findings = analyze(
            """
            def check(engine: Engine, rows):
                decision = engine.decide(rows)
                return rows if decision else None
            """
        )
        assert findings == []

    def test_noqa_suppresses(self):
        findings = analyze(
            """
            def check(engine: Engine, rows):
                engine.decide(rows)  # repro: noqa=F002
                return rows
            """
        )
        assert findings == []


class TestF003SuppressedSource:
    def test_suppressed_f001_leaves_a_residual_at_the_source(self):
        findings = analyze(
            """
            def leak(sensor: Sensor):
                rows = sensor.sample()
                return Response(rows)  # repro: noqa=F001
            """
        )
        assert [f.rule_id for f in findings] == ["F003"]
        assert findings[0].subject == "repro.pipe.app.Sensor.sample"

    def test_residual_is_itself_suppressible(self):
        source = COMMON.replace(
            "def sample(self):",
            "def sample(self):  # repro: noqa=F003",
        ) + textwrap.dedent(
            """
            def leak(sensor: Sensor):
                rows = sensor.sample()
                return Response(rows)  # repro: noqa=F001
            """
        )
        findings = analyze_flow_sources({APP_PATH: source}, model=MODEL)
        assert findings == []


class TestF004UnauditedDeny:
    def test_deny_without_audit_fires(self):
        findings = analyze(
            """
            def refuse():
                return Response.denied(("nope",))
            """
        )
        assert [f.rule_id for f in findings] == ["F004"]
        assert findings[0].subject == "repro.pipe.app.refuse"

    def test_audited_deny_is_clean(self):
        findings = analyze(
            """
            def refuse(audit: Audit):
                audit.record("deny")
                return Response.denied(("nope",))
            """
        )
        assert findings == []

    def test_enforced_deny_is_clean(self):
        findings = analyze(
            """
            def refuse(engine: Engine, request):
                decision = engine.decide(request)
                if decision:
                    return None
                return Response.denied(("nope",))
            """
        )
        assert findings == []


class TestF005BrownoutDropped:
    def test_unread_brownout_level_fires(self):
        findings = analyze(
            """
            def answer(rows, brownout_level):
                return rows
            """
        )
        assert [f.rule_id for f in findings] == ["F005"]
        assert "brownout" in findings[0].message

    def test_read_brownout_level_is_clean(self):
        findings = analyze(
            """
            def answer(rows, brownout_level):
                return rows[:brownout_level]
            """
        )
        assert findings == []


class TestF006DynamicDispatch:
    def test_dynamic_call_on_tainted_path_fires(self):
        findings = analyze(
            """
            def fanout(sensor: Sensor, callback):
                data = sensor.sample()
                callback(data)
                return data
            """
        )
        assert [f.rule_id for f in findings] == ["F006"]
        assert "callback" in findings[0].message

    def test_dynamic_call_off_the_tainted_path_is_clean(self):
        findings = analyze(
            """
            def notify(callback):
                callback("static text")
            """
        )
        assert findings == []

    def test_allowlisted_function_is_clean(self):
        import dataclasses

        model = dataclasses.replace(
            MODEL, dynamic_allowlist=("repro.pipe.app.fanout",)
        )
        findings = analyze(
            """
            def fanout(sensor: Sensor, callback):
                data = sensor.sample()
                callback(data)
                return data
            """,
            model=model,
        )
        assert findings == []

    def test_sharded_bus_call_on_tainted_path_is_not_dynamic(self):
        # Regression: a router addressing shards via PREFIX + suffix
        # used to be an unresolvable dynamic site, so any taint in the
        # router module tripped F006 on calls that in fact route to a
        # registered (enforcing) endpoint.
        findings = analyze(
            """
            SHARD_PREFIX = "shard-"

            def wire(bus):
                endpoint = Engine()
                bus.register(SHARD_PREFIX + "a", endpoint)

            def route(bus, sensor: Sensor, building_id):
                data = sensor.sample()
                return bus.call(SHARD_PREFIX + building_id, "m", data)
            """
        )
        assert findings == []

    def test_stale_allowlist_entry_is_reported(self):
        import dataclasses

        model = dataclasses.replace(
            MODEL, dynamic_allowlist=("repro.pipe.app.no_such_function",)
        )
        findings = analyze("", model=model)
        assert [f.rule_id for f in findings] == ["F006"]
        assert "stale" in findings[0].message


class TestBaseline:
    def entry(self, **overrides):
        fields = dict(
            rule_id="F001",
            file="src/repro/pipe/app.py",
            function="repro.pipe.app.leak",
            justification="reviewed: replay of enforced data",
        )
        fields.update(overrides)
        return BaselineEntry(**fields)

    def test_round_trip(self, tmp_path):
        baseline = FlowBaseline(entries=(self.entry(),))
        path = str(tmp_path / "baseline.json")
        write_baseline(baseline, path)
        assert load_baseline(path) == baseline

    def test_dumps_is_deterministic(self):
        baseline = FlowBaseline(entries=(self.entry(),))
        assert baseline.dumps() == baseline.dumps()
        assert baseline.dumps().endswith("\n")

    def test_version_gate_rejects_other_versions(self):
        data = FlowBaseline(entries=(self.entry(),)).to_dict()
        data["schema_version"] = FLOW_BASELINE_VERSION + 1
        with pytest.raises(AnalysisError, match="schema_version"):
            FlowBaseline.from_dict(data)

    def test_empty_justification_rejected(self):
        data = FlowBaseline(entries=(self.entry(justification=" "),)).to_dict()
        with pytest.raises(AnalysisError, match="justification"):
            FlowBaseline.from_dict(data)

    def test_duplicate_entries_rejected(self):
        data = FlowBaseline(entries=(self.entry(), self.entry())).to_dict()
        with pytest.raises(AnalysisError, match="duplicates"):
            FlowBaseline.from_dict(data)

    def test_apply_subtracts_matching_findings(self):
        findings = analyze(
            """
            def leak(sensor: Sensor):
                rows = sensor.sample()
                return Response(rows)
            """
        )
        baseline = baseline_from_findings(findings, justification="reviewed")
        kept, stale = apply_baseline(findings, baseline)
        assert kept == []
        assert stale == []

    def test_unused_entries_are_stale(self):
        baseline = FlowBaseline(entries=(self.entry(),))
        kept, stale = apply_baseline([], baseline)
        assert kept == []
        assert stale == list(baseline.entries)

    def test_line_numbers_do_not_affect_matching(self):
        # The same leak shifted down three lines still matches the
        # (rule, file, function) baseline key.
        body = """
            def leak(sensor: Sensor):
                rows = sensor.sample()
                return Response(rows)
            """
        baseline = baseline_from_findings(
            analyze(body), justification="reviewed"
        )
        shifted = analyze("\n\n\n" + textwrap.dedent(body))
        kept, stale = apply_baseline(shifted, baseline)
        assert kept == []
        assert stale == []


@pytest.fixture
def bypass_tree(tmp_path):
    """A tree whose leak matches the *default* model's specs."""
    sensors = tmp_path / "src" / "repro" / "sensors"
    tippers = tmp_path / "src" / "repro" / "tippers"
    sensors.mkdir(parents=True)
    tippers.mkdir(parents=True)
    (sensors / "drivers.py").write_text(textwrap.dedent(
        """
        class Probe:
            def sample(self):
                return {"who": "mary"}
        """
    ))
    (tippers / "request_manager.py").write_text(textwrap.dedent(
        """
        from repro.sensors.drivers import Probe

        class QueryResponse:
            def __init__(self, rows):
                self.rows = rows

        def leak(probe: Probe):
            return QueryResponse(probe.sample())
        """
    ))
    return str(tmp_path)


class TestCli:
    def test_main_tree_is_clean_with_committed_baseline(self, capsys):
        assert main(["lint", "--flow", "src"]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out

    def test_bypass_fixture_exits_one(self, capsys, bypass_tree):
        assert main(["lint", "--flow", "--no-baseline", bypass_tree]) == 1
        out = capsys.readouterr().out
        assert "F001" in out

    def test_repeated_runs_are_byte_identical(self, capsys, bypass_tree):
        main(["lint", "--flow", "--no-baseline", bypass_tree])
        first = capsys.readouterr().out
        main(["lint", "--flow", "--no-baseline", bypass_tree])
        second = capsys.readouterr().out
        assert first == second

    def test_json_format_is_pure_json(self, capsys, bypass_tree):
        assert main([
            "lint", "--flow", "--no-baseline", "--format", "json",
            bypass_tree,
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] >= 1
        assert payload["stale_baseline_entries"] == []

    def test_sarif_format_carries_the_findings(self, capsys, bypass_tree):
        assert main([
            "lint", "--flow", "--no-baseline", "--format", "sarif",
            bypass_tree,
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert any(
            result["ruleId"] == "F001" for result in run["results"]
        )

    def test_write_baseline_then_gate_passes(self, capsys, bypass_tree, tmp_path):
        baseline_path = str(tmp_path / "pinned.json")
        assert main([
            "lint", "--flow", "--select", "F001", bypass_tree,
            "--write-baseline", baseline_path,
        ]) == 0
        capsys.readouterr()
        assert main([
            "lint", "--flow", "--select", "F001", bypass_tree,
            "--baseline", baseline_path,
        ]) == 0

    def test_stale_entries_reported_on_stderr(self, capsys, tmp_path):
        baseline_path = str(tmp_path / "pinned.json")
        committed = load_baseline("flow_baseline.json")
        write_baseline(FlowBaseline(entries=committed.entries + (BaselineEntry(
            rule_id="F001",
            file="src/repro/gone.py",
            function="repro.gone.nothing",
            justification="reviewed long ago",
        ),)), baseline_path)
        assert main([
            "lint", "--flow", "src", "--baseline", baseline_path,
        ]) == 0
        err = capsys.readouterr().err
        assert "stale baseline entry" in err

    def test_baseline_flags_require_flow(self, capsys):
        assert main(["lint", "src", "--no-baseline"]) == 2
        assert "--flow" in capsys.readouterr().err

    def test_committed_baseline_justifications_are_real(self):
        baseline = load_baseline("flow_baseline.json")
        assert baseline.entries, "the committed baseline pins the WAL replay"
        for entry in baseline.entries:
            assert len(entry.justification) > 40
