"""Unit tests for the policy-set linter (rules P001-P010)."""

import pytest

from repro.analysis.policy_lint import (
    PURPOSE_MAX_RETENTION,
    PolicyLinter,
    lint_dbh_scenario,
)
from repro.core.language.duration import Duration
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DecisionPhase, Effect
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.preference import UserPreference
from repro.spatial.model import build_simple_building


def policy(**overrides) -> BuildingPolicy:
    defaults = dict(
        policy_id="p",
        name="p",
        description="d",
        effect=Effect.ALLOW,
        categories=(DataCategory.LOCATION,),
        phases=(DecisionPhase.CAPTURE,),
        granularity=GranularityLevel.PRECISE,
    )
    defaults.update(overrides)
    return BuildingPolicy(**defaults)


def preference(**overrides) -> UserPreference:
    defaults = dict(
        preference_id="f",
        user_id="mary",
        description="d",
        effect=Effect.DENY,
        categories=(DataCategory.LOCATION,),
        phases=(DecisionPhase.CAPTURE,),
    )
    defaults.update(overrides)
    return UserPreference(**defaults)


@pytest.fixture
def spatial():
    return build_simple_building("b", 1, 2)


@pytest.fixture
def linter(spatial):
    return PolicyLinter(spatial=spatial)


def broken_resource_entry():
    """One resource entry seeding P002, P003, P004, and P007."""
    return {
        "info": {"name": "spy"},
        "sensor": {"type": "quantum_imager"},
        "purpose": {"vibes": "ambience curation", "comfort": "HVAC"},
        "observations": [
            {
                "name": "location",
                "granularity": "coarse",
                "inferred": ["astrological_sign"],
            }
        ],
        "retention": {"duration": "P10Y"},
    }


def broken_settings():
    """Settings offering finer location than the document declares (P008)."""
    return {
        "settings": [
            {
                "name": "location",
                "select": [
                    {
                        "description": "track me precisely",
                        "on": "always",
                        "granularity": "precise",
                    }
                ],
            }
        ]
    }


def broken_advertisements():
    bad = {
        "advertisement_id": "ad-ghost",
        "kind": "resource",
        "coverage_space_id": "ghost-wing",  # P001
        "document": {"resources": [broken_resource_entry()]},
        "settings": broken_settings(),
    }
    dup = {
        "advertisement_id": "ad-dup",
        "kind": "resource",
        "coverage_space_id": "b",
        "document": {"resources": []},
        "settings": None,
    }
    return [bad, dup, dict(dup)]  # duplicate id -> P010


def broken_policies():
    deny_all = policy(
        policy_id="deny-all",
        effect=Effect.DENY,
        categories=(),
        phases=tuple(DecisionPhase),
        priority=5,
    )
    shadowed = policy(policy_id="allow-hvac", priority=1)  # P005
    twin_allow = policy(
        policy_id="twin-allow", categories=(DataCategory.PRESENCE,)
    )
    twin_deny = policy(
        policy_id="twin-deny",
        categories=(DataCategory.PRESENCE,),
        effect=Effect.DENY,
    )  # P006 with twin_allow
    mandatory = policy(policy_id="must-locate", mandatory=True)  # P009 driver
    return [deny_all, shadowed, twin_allow, twin_deny, mandatory]


class TestBrokenFixture:
    def test_flags_many_distinct_defect_kinds(self, linter):
        findings = linter.lint_building(
            broken_policies(),
            preferences=[preference()],
            registry=broken_advertisements(),
        )
        found_rules = {finding.rule_id for finding in findings}
        expected = {
            "P001", "P002", "P003", "P004", "P005",
            "P006", "P007", "P008", "P009", "P010",
        }
        assert expected <= found_rules
        assert len(found_rules) >= 6

    def test_registry_accepts_plain_dicts(self, linter):
        findings = linter.lint_registry(broken_advertisements())
        assert any(f.rule_id == "P001" for f in findings)
        assert any(f.rule_id == "P010" for f in findings)

    def test_findings_carry_subjects(self, linter):
        findings = linter.lint_registry(broken_advertisements())
        assert all(f.subject for f in findings)


class TestIndividualRules:
    def test_p001_dangling_space_selector(self, linter):
        bad = policy(space_ids=("nowhere",))
        assert ["P001"] == [f.rule_id for f in linter.lint_policies([bad])]

    def test_p001_needs_a_spatial_model(self):
        bare = PolicyLinter()  # no spatial model: cannot check spaces
        assert bare.lint_policies([policy(space_ids=("nowhere",))]) == []

    def test_p002_unknown_sensor_selector(self, linter):
        bad = policy(sensor_types=("quantum_imager",))
        assert ["P002"] == [f.rule_id for f in linter.lint_policies([bad])]

    def test_p002_sensorless_placeholder_exempt(self, linter):
        entry = broken_resource_entry()
        entry["sensor"] = {"type": "none"}
        entry["purpose"] = {"comfort": "HVAC"}
        entry["observations"] = [{"name": "presence"}]
        entry["retention"] = {"duration": "P7D"}
        findings = linter.lint_resource_document({"resources": [entry]}, "ad")
        assert findings == []

    def test_p005_disjoint_scopes_clean(self, linter):
        deny = policy(
            policy_id="deny-presence",
            effect=Effect.DENY,
            categories=(DataCategory.PRESENCE,),
        )
        allow = policy(policy_id="allow-location")
        findings = [f for f in linter.lint_policies([deny, allow]) if f.rule_id == "P005"]
        assert findings == []

    def test_p005_mandatory_policies_not_shadowed(self, linter):
        deny_all = policy(
            policy_id="deny-all", effect=Effect.DENY, categories=(), priority=9
        )
        protected = policy(policy_id="must-run", mandatory=True)
        findings = [
            f
            for f in linter.lint_policies([deny_all, protected])
            if f.rule_id == "P005" and f.subject == "must-run"
        ]
        assert findings == []

    def test_p007_retention_within_bound_clean(self, linter):
        ok = policy(
            purposes=(Purpose.COMFORT,),
            retention=Duration.parse("P7D"),
        )
        assert [f for f in linter.lint_policies([ok]) if f.rule_id == "P007"] == []

    def test_p007_uses_most_permissive_purpose(self, linter):
        # RESEARCH allows P3Y, so COMFORT+RESEARCH at P2Y is fine.
        ok = policy(
            purposes=(Purpose.COMFORT, Purpose.RESEARCH),
            retention=Duration.parse("P2Y"),
        )
        assert [f for f in linter.lint_policies([ok]) if f.rule_id == "P007"] == []

    def test_p009_non_mandatory_policy_is_negotiable(self, linter):
        findings = linter.lint_conflicts([policy()], [preference()])
        assert findings == []

    def test_p009_mandatory_vs_optout(self, linter):
        findings = linter.lint_conflicts(
            [policy(mandatory=True)], [preference()]
        )
        assert [f.rule_id for f in findings] == ["P009"]
        assert "mary" in findings[0].message

    def test_purpose_table_covers_every_purpose(self):
        assert set(PURPOSE_MAX_RETENTION) == set(Purpose)


class TestSelection:
    def test_select_restricts_output(self, spatial):
        narrow = PolicyLinter(spatial=spatial, select={"P001"})
        findings = narrow.lint_building(
            broken_policies(),
            preferences=[preference()],
            registry=broken_advertisements(),
        )
        assert findings
        assert {f.rule_id for f in findings} == {"P001"}


class TestShippedScenario:
    def test_dbh_scenario_is_clean(self):
        assert lint_dbh_scenario() == []
