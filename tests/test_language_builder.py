"""Unit tests for the fluent document builders."""

import pytest

from repro.core.language.builder import (
    ResourcePolicyBuilder,
    ServicePolicyBuilder,
    SettingsBuilder,
)
from repro.core.language.vocabulary import GranularityLevel
from repro.errors import SchemaError


class TestResourcePolicyBuilder:
    def test_builds_figure2(self):
        document = (
            ResourcePolicyBuilder()
            .resource("Location tracking in DBH")
            .at("Donald Bren Hall", "Building", owner="UCI", more_info="https://uci.edu")
            .sensor("WiFi Access Point", "Installed inside the building")
            .purpose("emergency response", "Location is stored continuously")
            .observes("MAC address of the device", "MAC is stored")
            .retain("P6M")
            .build()
        )
        data = document.to_dict()
        assert data["resources"][0]["retention"]["duration"] == "P6M"
        assert data["resources"][0]["context"]["location"]["location_owner"]["name"] == "UCI"

    def test_multiple_resources(self):
        document = (
            ResourcePolicyBuilder()
            .resource("A")
            .at("B", "Building")
            .sensor("camera")
            .purpose("security")
            .observes("presence")
            .done()
            .resource("B")
            .at("B", "Building")
            .sensor("power_meter")
            .purpose("energy_management")
            .observes("energy_use")
            .build()
        )
        assert len(document.resources) == 2

    def test_describe_before_resource_rejected(self):
        with pytest.raises(SchemaError):
            ResourcePolicyBuilder().at("B", "Building")

    def test_bad_retention_rejected_eagerly(self):
        builder = ResourcePolicyBuilder().resource("A")
        with pytest.raises(SchemaError):
            builder.retain("half a year")

    def test_resource_without_observations_fails_at_build(self):
        builder = (
            ResourcePolicyBuilder()
            .resource("A")
            .at("B", "Building")
            .sensor("camera")
            .purpose("security")
        )
        with pytest.raises(SchemaError):
            builder.build()


class TestServicePolicyBuilder:
    def test_builds_figure3(self):
        document = (
            ServicePolicyBuilder("Concierge")
            .observes("wifi_access_point", "MAC stored")
            .observes("bluetooth_beacon", "room stored")
            .purpose("providing_service", "directions")
            .build()
        )
        assert document.service_id == "Concierge"
        assert len(document.observations) == 2

    def test_third_party_flag(self):
        document = (
            ServicePolicyBuilder("food")
            .observes("location")
            .purpose("providing_service")
            .developer("LunchCo", third_party=True)
            .build()
        )
        assert document.third_party

    def test_empty_purposes_rejected(self):
        with pytest.raises(SchemaError):
            ServicePolicyBuilder("s").observes("x").build()


class TestSettingsBuilder:
    def test_builds_figure4(self):
        document = (
            SettingsBuilder()
            .group("location")
            .option("fine grained location sensing", "wifi=opt-in", GranularityLevel.PRECISE)
            .option("coarse grained location sensing", "wifi=opt-in", GranularityLevel.COARSE)
            .option("No location sensing", "wifi=opt-out", GranularityLevel.NONE)
            .build()
        )
        assert len(document.groups[0]) == 3
        assert document.names == ["location"]

    def test_option_without_group_starts_one(self):
        document = SettingsBuilder().option("a", "x=1").build()
        assert len(document.groups) == 1

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            SettingsBuilder().build()
