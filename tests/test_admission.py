"""Unit tests for the admission controller and its building blocks."""

import pytest

from repro.errors import AdmissionError, AdmissionShedError
from repro.net.admission import (
    BROWNOUT_LATTICE,
    DEFAULT_METHOD_PRIORITIES,
    AdmissionController,
    BrownoutPolicy,
    LoadLevel,
    Priority,
    TokenBucket,
    TopicQueue,
)
from repro.net.bus import MessageBus
from repro.obs.metrics import MetricsRegistry


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(AdmissionError):
            TokenBucket(capacity=0, refill_per_step=1.0)
        with pytest.raises(AdmissionError):
            TokenBucket(capacity=1.0, refill_per_step=-0.1)

    def test_starts_full_and_spends_down(self):
        bucket = TokenBucket(capacity=2.0, refill_per_step=0.5)
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_is_stepwise_and_capped(self):
        bucket = TokenBucket(capacity=2.0, refill_per_step=0.5)
        bucket.try_take(2.0)
        bucket.step()
        assert not bucket.try_take()  # 0.5 < 1.0
        bucket.step()
        assert bucket.try_take()  # 1.0 available
        for _ in range(100):
            bucket.step()
        assert bucket.tokens == pytest.approx(2.0)  # capped at capacity


class TestTopicQueue:
    def test_watermark_geometry_validation(self):
        with pytest.raises(AdmissionError):
            TopicQueue(capacity=0)
        with pytest.raises(AdmissionError):
            TopicQueue(high_watermark=0.0)
        with pytest.raises(AdmissionError):
            TopicQueue(high_watermark=0.8, shed_watermark=0.5)
        with pytest.raises(AdmissionError):
            TopicQueue(drain_per_step=0.0)

    def test_levels_track_the_watermarks(self):
        queue = TopicQueue(capacity=10, high_watermark=0.5, shed_watermark=0.8)
        assert queue.level() is LoadLevel.NOMINAL
        queue.arrive(5.0)
        assert queue.level() is LoadLevel.BROWNOUT
        queue.arrive(3.0)
        assert queue.level() is LoadLevel.OVERLOAD

    def test_depth_is_bounded_and_drains_to_zero(self):
        queue = TopicQueue(capacity=4, drain_per_step=1.0)
        queue.arrive(100.0)
        assert queue.depth == 4.0
        assert queue.load == 1.0
        for _ in range(4):
            queue.drain()
        assert queue.depth == 0.0
        queue.drain()  # never negative
        assert queue.depth == 0.0

    def test_negative_arrivals_rejected(self):
        with pytest.raises(AdmissionError):
            TopicQueue().arrive(-1.0)


class TestBrownoutPolicy:
    def test_max_levels_bounded_by_lattice(self):
        with pytest.raises(AdmissionError):
            BrownoutPolicy(max_levels=0)
        with pytest.raises(AdmissionError):
            BrownoutPolicy(max_levels=len(BROWNOUT_LATTICE))

    def test_level_ramps_between_watermarks(self):
        policy = BrownoutPolicy(max_levels=2)
        assert policy.level_for(0.4, 0.5, 0.8) == 0
        assert policy.level_for(0.5, 0.5, 0.8) == 1
        assert policy.level_for(0.79, 0.5, 0.8) == 2
        assert policy.level_for(0.8, 0.5, 0.8) == 2
        assert policy.level_for(1.0, 0.5, 0.8) == 2

    def test_coarsen_walks_the_lattice_and_floors(self):
        assert BrownoutPolicy.coarsen("precise", 1) == "coarse"
        assert BrownoutPolicy.coarsen("precise", 2) == "building"
        assert BrownoutPolicy.coarsen("precise", 99) == "building"
        assert BrownoutPolicy.coarsen("coarse", 1) == "building"
        # Already coarser than the floor: pass through untouched.
        assert BrownoutPolicy.coarsen("aggregate", 2) == "aggregate"
        assert BrownoutPolicy.coarsen("none", 1) == "none"
        assert BrownoutPolicy.coarsen("precise", 0) == "precise"


class TestClassification:
    def test_privacy_calls_are_critical(self):
        controller = AdmissionController(metrics=MetricsRegistry())
        for method in ("get_policy_document", "submit_preference",
                       "dsar_report", "dsar_erase"):
            assert controller.classify("tippers", method) is Priority.CRITICAL

    def test_unknown_methods_default_to_normal(self):
        controller = AdmissionController(metrics=MetricsRegistry())
        assert controller.classify("x", "frobnicate") is Priority.NORMAL

    def test_custom_priorities_override(self):
        controller = AdmissionController(
            metrics=MetricsRegistry(),
            method_priorities={"frobnicate": Priority.DEFERRABLE},
        )
        assert controller.classify("x", "frobnicate") is Priority.DEFERRABLE
        # Defaults survive alongside the override.
        assert controller.classify("x", "discover") is Priority.DEFERRABLE


def saturate(controller, target="tippers", method="locate_user", calls=64):
    """Drive the target's queue to full depth with admitted traffic."""
    burst = [lambda t, m: 8]
    controller.install_fault_plane(burst[0])
    for _ in range(calls):
        controller.admit(target, method)
    controller.remove_fault_plane(burst[0])


class TestAdmitVerdicts:
    def make(self, **kwargs):
        kwargs.setdefault("metrics", MetricsRegistry())
        kwargs.setdefault("queue_capacity", 10)
        return AdmissionController(**kwargs)

    def test_nominal_load_admits_everything_unbrowned(self):
        controller = self.make()
        for method in ("get_policy_document", "locate_user", "discover"):
            ticket = controller.admit("tippers", method)
            assert ticket.admitted
            assert ticket.brownout_level == 0

    def test_critical_is_never_shed_even_saturated(self):
        controller = self.make()
        saturate(controller)
        assert controller.queue("tippers").level() is LoadLevel.OVERLOAD
        for _ in range(50):
            ticket = controller.admit("tippers", "dsar_erase")
            assert ticket.admitted, ticket.reason
        assert controller.ledger.shed_by_class.get("critical", 0) == 0

    def test_normal_sheds_past_the_hard_watermark(self):
        controller = self.make()
        saturate(controller)
        ticket = controller.admit("tippers", "locate_user")
        assert not ticket.admitted
        assert "shed watermark" in ticket.reason

    def test_normal_browns_out_between_watermarks(self):
        controller = self.make(queue_capacity=100, drain_per_step=1.0)
        queue = controller.queue("tippers")
        queue.arrive(60.0)  # 0.6 after the admit's drain+arrive: brownout band
        ticket = controller.admit("tippers", "locate_user")
        assert ticket.admitted
        assert ticket.browned_out
        assert 1 <= ticket.brownout_level <= 2

    def test_deferrable_always_sheds_past_watermark(self):
        controller = self.make()
        saturate(controller)
        ticket = controller.admit("irr-1", "discover")
        assert ticket.admitted  # separate target, separate queue
        saturate(controller, target="irr-1", method="discover")
        ticket = controller.admit("irr-1", "discover")
        assert not ticket.admitted

    def test_principal_budget_sheds_normal_but_not_critical(self):
        controller = self.make(
            principal_capacity=2.0, principal_refill_per_step=0.0
        )
        assert controller.admit("t", "locate_user", "greedy").admitted
        assert controller.admit("t", "locate_user", "greedy").admitted
        over = controller.admit("t", "locate_user", "greedy")
        assert not over.admitted
        assert "over budget" in over.reason
        # CRITICAL ignores the budget; other principals are unaffected.
        assert controller.admit("t", "dsar_report", "greedy").admitted
        assert controller.admit("t", "locate_user", "patient").admitted

    def test_ledger_identity_and_shed_rates(self):
        controller = self.make()
        saturate(controller)
        for _ in range(10):
            controller.admit("tippers", "locate_user")
            controller.admit("tippers", "dsar_report")
        ledger = controller.ledger
        assert ledger.checked == ledger.admitted + ledger.shed
        assert ledger.shed_rate(Priority.CRITICAL) == 0.0
        assert ledger.shed_rate(Priority.NORMAL) > 0.0
        assert 0.0 < ledger.shed_rate() < 1.0

    def test_same_seed_runs_are_identical(self):
        def run(seed):
            controller = AdmissionController(
                seed=seed, queue_capacity=100, metrics=MetricsRegistry()
            )
            # Hold the load inside the probabilistic brownout band: the
            # per-admit drain cancels the arrival, so deferrable sheds
            # are pure draws from the controller's seeded RNG.
            controller.queue("tippers").arrive(65.0)
            verdicts = []
            for index in range(80):
                method = ("discover", "locate_user")[index % 2]
                ticket = controller.admit("tippers", method)
                verdicts.append((ticket.admitted, ticket.brownout_level))
            return verdicts, controller.loads()

        first = run(7)
        assert first == run(7)
        assert first != run(8)
        sheds = [entry for entry in first[0] if not entry[0]]
        assert sheds, "the brownout band must shed some deferrables"

    def test_loads_and_levels_are_sorted_introspection(self):
        controller = self.make()
        controller.admit("zeta", "locate_user")
        controller.admit("alpha", "locate_user")
        assert list(controller.loads()) == ["alpha", "zeta"]
        assert set(controller.levels().values()) <= {
            "nominal", "brownout", "overload"
        }


class TestBusIntegration:
    def make_bus(self, **admission_kwargs):
        metrics = MetricsRegistry()
        admission_kwargs.setdefault("queue_capacity", 10)
        controller = AdmissionController(metrics=metrics, **admission_kwargs)
        bus = MessageBus(metrics=metrics, admission=controller)
        bus.register_handler(
            "tippers", lambda method, payload: {"echo": dict(payload)}
        )
        return bus, controller, metrics

    def test_shed_calls_never_become_logical_calls(self):
        bus, controller, metrics = self.make_bus()
        saturate(controller, target="tippers")
        with pytest.raises(AdmissionShedError):
            bus.call("tippers", "locate_user", {})
        assert bus.stats.shed == 1
        assert bus.stats.logical_calls == 0
        assert bus.stats.calls == bus.stats.logical_calls + bus.stats.retries
        assert metrics.total(
            "bus_admission_shed_total", {"target": "tippers", "class": "normal"}
        ) == 1

    def test_browned_out_call_carries_the_level_in_payload(self):
        bus, controller, _ = self.make_bus(queue_capacity=100)
        controller.queue("tippers").arrive(60.0)
        result = bus.call("tippers", "locate_user", {"user": "mary"})
        assert result["echo"]["brownout_level"] >= 1
        assert result["echo"]["user"] == "mary"

    def test_nominal_call_payload_is_untouched(self):
        bus, _, _ = self.make_bus()
        result = bus.call("tippers", "locate_user", {"user": "mary"})
        assert "brownout_level" not in result["echo"]

    def test_critical_calls_flow_during_overload(self):
        bus, controller, _ = self.make_bus()
        saturate(controller, target="tippers")
        assert bus.call("tippers", "dsar_report", {})["echo"] == {}
