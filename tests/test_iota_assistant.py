"""Unit tests for the IoT Assistant (discovery, settings, feedback)."""

import pytest

from repro.core.language.builder import ResourcePolicyBuilder, ServicePolicyBuilder
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.iota.assistant import (
    IoTAssistant,
    practices_from_resource,
    practices_from_service,
)
from repro.iota.personas import PERSONAS, generate_decisions
from repro.iota.preference_model import DataPractice, PreferenceModel
from repro.irr.registry import IoTResourceRegistry
from repro.net.bus import MessageBus


@pytest.fixture
def wired(tippers):
    """TIPPERS + IRR on a bus, with the building's policies published."""
    bus = MessageBus()
    bus.register("tippers", tippers)
    registry = IoTResourceRegistry("irr-1", tippers.spatial)
    bus.register("irr-1", registry)
    document = tippers.policy_manager.compile_policy_document()
    settings = tippers.policy_manager.settings_space.to_document()
    registry.publish_resource("building-policies", "b", document, settings=settings)
    return bus, registry, tippers


def make_assistant(bus, persona="fundamentalist", user_id="mary"):
    model = PreferenceModel().fit(
        generate_decisions(PERSONAS[persona], 200, seed=1, noise=0.0)
    )
    return IoTAssistant(
        user_id, bus, model=model, registry_endpoints=["irr-1"]
    )


class TestPracticeExtraction:
    def test_from_figure2_resource(self):
        document = (
            ResourcePolicyBuilder()
            .resource("Location tracking in DBH")
            .at("DBH", "Building")
            .sensor("WiFi Access Point")
            .purpose("emergency response", "stored")
            .observes("MAC address of the device")
            .retain("P6M")
            .build()
        )
        practices = practices_from_resource(document.resources[0])
        assert len(practices) == 1
        assert practices[0].category is DataCategory.LOCATION, "sensor-type fallback"
        assert practices[0].purpose is Purpose.EMERGENCY_RESPONSE
        assert practices[0].retention_days == pytest.approx(180.0)

    def test_inferred_hint_wins(self):
        document = (
            ResourcePolicyBuilder()
            .resource("r")
            .at("B", "Building")
            .sensor("mystery_box")
            .purpose("security")
            .observes("blob", inferred=["identity"])
            .build()
        )
        practices = practices_from_resource(document.resources[0])
        assert practices[0].category is DataCategory.IDENTITY

    def test_category_named_observation(self):
        document = (
            ResourcePolicyBuilder()
            .resource("r")
            .at("B", "Building")
            .sensor("mystery")
            .purpose("security")
            .observes("occupancy")
            .build()
        )
        assert practices_from_resource(document.resources[0])[0].category is DataCategory.OCCUPANCY

    def test_from_service_third_party(self):
        document = (
            ServicePolicyBuilder("food")
            .observes("location")
            .purpose("providing_service")
            .developer("LunchCo", third_party=True)
            .build()
        )
        practices = practices_from_service(document)
        assert practices[0].third_party


class TestDiscovery:
    def test_discovers_building_policies(self, wired):
        bus, _, _ = wired
        assistant = make_assistant(bus)
        result = assistant.discover("b-1001", now=100.0)
        assert result.registry_ids == ["irr-1"]
        assert result.resources, "building resources found"
        assert result.settings, "settings document attached"

    def test_fundamentalist_gets_notifications(self, wired):
        bus, _, _ = wired
        assistant = make_assistant(bus, "fundamentalist")
        result = assistant.discover("b-1001", now=100.0)
        assert result.notifications

    def test_unreachable_registry_skipped(self, wired):
        bus, _, _ = wired
        assistant = make_assistant(bus)
        assistant.registry_endpoints = ["irr-ghost", "irr-1"]
        result = assistant.discover("b-1001", now=100.0)
        assert result.registry_ids == ["irr-1"]

    def test_malformed_advertisement_survived(self, wired):
        bus, registry, _ = wired
        # Inject a raw malformed advertisement.
        registry._advertisements["bad"] = type(registry._advertisements["building-policies"])(
            advertisement_id="bad",
            kind="resource",
            coverage_space_id="b",
            document={"resources": "not-a-list"},
        )
        assistant = make_assistant(bus)
        result = assistant.discover("b-1001", now=100.0)
        assert result.resources, "good advertisements still absorbed"


class TestSettingsConfiguration:
    def test_fundamentalist_opts_out(self, wired):
        bus, _, tippers = wired
        assistant = make_assistant(bus, "fundamentalist")
        selection = assistant.configure_building_settings(now=100.0)
        assert selection == {"location": "off"}
        assert assistant.reported_conflicts, "hard conflict with policy-2 reported"
        prefs = tippers.preference_manager.preferences_of("mary")
        assert len(prefs) == 1

    def test_unconcerned_opts_in(self, wired):
        bus, _, tippers = wired
        assistant = make_assistant(bus, "unconcerned")
        selection = assistant.configure_building_settings(now=100.0)
        assert selection == {"location": "fine"}

    def test_submit_explicit_preference(self, wired):
        bus, _, tippers = wired
        assistant = make_assistant(bus)
        conflicts = assistant.submit_preference(catalog.preference_2_no_location("mary"))
        assert conflicts
        assert tippers.preference_manager.preferences_of("mary")


class TestEffectPreview:
    def test_preview_reports_partial_honouring(self, wired):
        bus, _, tippers = wired
        assistant = make_assistant(bus, "fundamentalist")
        assistant.configure_building_settings(now=100.0)
        lines = assistant.fetch_effect_preview(now=200.0)
        assert any("location/sharing: blocked" in line for line in lines)
        assert any(
            "location/capture: allowed" in line and "overrides" in line
            for line in lines
        ), "the mandatory emergency policy's override must be visible"

    def test_preview_for_permissive_user(self, wired):
        bus, _, _ = wired
        assistant = make_assistant(bus, "unconcerned")
        assistant.configure_building_settings(now=100.0)
        lines = assistant.fetch_effect_preview(now=200.0)
        assert any(
            "location/sharing: allowed at precise" in line for line in lines
        )

    def test_unknown_user_is_rpc_error(self, wired):
        bus, _, _ = wired
        from repro.net.bus import RpcError

        assistant = IoTAssistant("ghost", bus, registry_endpoints=["irr-1"])
        with pytest.raises(RpcError):
            assistant.fetch_effect_preview(now=0.0)


class TestFeedbackLoop:
    def test_record_feedback_updates_model(self, wired):
        bus, _, _ = wired
        assistant = make_assistant(bus, "fundamentalist")
        p = DataPractice(
            category=DataCategory.LOCATION,
            purpose=Purpose.PROVIDING_SERVICE,
            granularity=GranularityLevel.PRECISE,
        )
        before = assistant.model.comfort(p)
        for _ in range(10):
            assistant.record_feedback(p, allowed=True)
        assert assistant.model.comfort(p) > before
