"""Unit tests for the message bus and codec."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.bus import Endpoint, MessageBus, RpcError
from repro.net.codec import decode_message, encode_message


class Echo(Endpoint):
    def handle(self, method, payload):
        if method == "echo":
            return {"echoed": payload}
        if method == "boom":
            raise NetworkError("kaboom")
        return super().handle(method, payload)


class TestCodec:
    def test_round_trip(self):
        message = {"a": 1, "b": [1, 2], "c": {"d": None}}
        assert decode_message(encode_message(message)) == message

    def test_non_serializable_rejected(self):
        with pytest.raises(NetworkError):
            encode_message({"x": object()})

    def test_nan_rejected(self):
        with pytest.raises(NetworkError):
            encode_message({"x": float("nan")})

    def test_malformed_text_rejected(self):
        with pytest.raises(NetworkError):
            decode_message("{oops")

    def test_non_object_rejected(self):
        with pytest.raises(NetworkError):
            decode_message("[1,2]")


class TestBus:
    def test_call_round_trip(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        assert bus.call("echo", "echo", {"x": 1}) == {"echoed": {"x": 1}}

    def test_unknown_target(self):
        with pytest.raises(NetworkError):
            MessageBus().call("ghost", "m")

    def test_remote_error_becomes_rpc_error(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        with pytest.raises(RpcError) as excinfo:
            bus.call("echo", "boom")
        assert "kaboom" in str(excinfo.value)

    def test_unhandled_method(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        with pytest.raises(RpcError):
            bus.call("echo", "unknown-method")

    def test_payload_must_be_wire_safe(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        with pytest.raises(NetworkError):
            bus.call("echo", "echo", {"bad": object()})

    def test_duplicate_registration_rejected(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        with pytest.raises(NetworkError):
            bus.register("echo", Echo())

    def test_register_handler_function(self):
        bus = MessageBus()
        bus.register_handler("fn", lambda method, payload: {"m": method})
        assert bus.call("fn", "hello") == {"m": "hello"}

    def test_unregister(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        bus.unregister("echo")
        assert "echo" not in bus


class TestLossAndLatency:
    def test_drop_rate_raises(self):
        bus = MessageBus(drop_rate=0.999999, rng=random.Random(0))
        bus.register("echo", Echo())
        with pytest.raises(NetworkError):
            bus.call("echo", "echo", {})
        assert bus.stats.dropped >= 1

    def test_retries_recover_from_loss(self):
        bus = MessageBus(drop_rate=0.5, rng=random.Random(3))
        bus.register("echo", Echo())
        # With enough retries one attempt gets through.
        result = bus.call("echo", "echo", {"x": 1}, retries=50)
        assert result == {"echoed": {"x": 1}}

    def test_rpc_errors_not_retried(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        with pytest.raises(RpcError):
            bus.call("echo", "boom", retries=5)
        assert bus.stats.calls == 1, "application errors must not be retried"

    def test_latency_accumulated(self):
        bus = MessageBus(latency_s=0.05)
        bus.register("echo", Echo())
        bus.call("echo", "echo", {})
        bus.call("echo", "echo", {})
        assert bus.stats.simulated_latency_s == pytest.approx(0.1)

    def test_invalid_parameters(self):
        with pytest.raises(NetworkError):
            MessageBus(drop_rate=1.0)
        with pytest.raises(NetworkError):
            MessageBus(latency_s=-1)

    def test_byte_counters_advance(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        bus.call("echo", "echo", {"x": "hello"})
        assert bus.stats.bytes_sent > 0
        assert bus.stats.bytes_received > 0
