"""Unit tests for the message bus and codec."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.bus import Endpoint, MessageBus, RpcError
from repro.net.codec import decode_message, encode_message
from repro.obs.metrics import MetricsRegistry


class Echo(Endpoint):
    def handle(self, method, payload):
        if method == "echo":
            return {"echoed": payload}
        if method == "boom":
            raise NetworkError("kaboom")
        return super().handle(method, payload)


class TestCodec:
    def test_round_trip(self):
        message = {"a": 1, "b": [1, 2], "c": {"d": None}}
        assert decode_message(encode_message(message)) == message

    def test_non_serializable_rejected(self):
        with pytest.raises(NetworkError):
            encode_message({"x": object()})

    def test_nan_rejected(self):
        with pytest.raises(NetworkError):
            encode_message({"x": float("nan")})

    def test_malformed_text_rejected(self):
        with pytest.raises(NetworkError):
            decode_message("{oops")

    def test_non_object_rejected(self):
        with pytest.raises(NetworkError):
            decode_message("[1,2]")


class TestBus:
    def test_call_round_trip(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        assert bus.call("echo", "echo", {"x": 1}) == {"echoed": {"x": 1}}

    def test_unknown_target(self):
        with pytest.raises(NetworkError):
            MessageBus().call("ghost", "m")

    def test_remote_error_becomes_rpc_error(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        with pytest.raises(RpcError) as excinfo:
            bus.call("echo", "boom")
        assert "kaboom" in str(excinfo.value)

    def test_unhandled_method(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        with pytest.raises(RpcError):
            bus.call("echo", "unknown-method")

    def test_payload_must_be_wire_safe(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        with pytest.raises(NetworkError):
            bus.call("echo", "echo", {"bad": object()})

    def test_duplicate_registration_rejected(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        with pytest.raises(NetworkError):
            bus.register("echo", Echo())

    def test_register_handler_function(self):
        bus = MessageBus()
        bus.register_handler("fn", lambda method, payload: {"m": method})
        assert bus.call("fn", "hello") == {"m": "hello"}

    def test_unregister(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        bus.unregister("echo")
        assert "echo" not in bus


class TestLossAndLatency:
    def test_drop_rate_raises(self):
        bus = MessageBus(drop_rate=0.999999, rng=random.Random(0))
        bus.register("echo", Echo())
        with pytest.raises(NetworkError):
            bus.call("echo", "echo", {})
        assert bus.stats.dropped >= 1

    def test_retries_recover_from_loss(self):
        bus = MessageBus(drop_rate=0.5, rng=random.Random(3))
        bus.register("echo", Echo())
        # With enough retries one attempt gets through.
        result = bus.call("echo", "echo", {"x": 1}, retries=50)
        assert result == {"echoed": {"x": 1}}

    def test_rpc_errors_not_retried(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        with pytest.raises(RpcError):
            bus.call("echo", "boom", retries=5)
        assert bus.stats.calls == 1, "application errors must not be retried"

    def test_latency_accumulated(self):
        bus = MessageBus(latency_s=0.05)
        bus.register("echo", Echo())
        bus.call("echo", "echo", {})
        bus.call("echo", "echo", {})
        assert bus.stats.simulated_latency_s == pytest.approx(0.1)

    def test_invalid_parameters(self):
        with pytest.raises(NetworkError):
            MessageBus(drop_rate=1.0)
        with pytest.raises(NetworkError):
            MessageBus(latency_s=-1)

    def test_byte_counters_advance(self):
        bus = MessageBus()
        bus.register("echo", Echo())
        bus.call("echo", "echo", {"x": "hello"})
        assert bus.stats.bytes_sent > 0
        assert bus.stats.bytes_received > 0


class TestRetryAccounting:
    """Pins the attempts-vs-logical-calls stat semantics.

    ``stats.calls`` counts transport *attempts* (each retry is one more
    attempt), while ``stats.logical_calls`` counts ``call()``
    invocations and ``stats.retries`` the re-sends -- so lossy-run rates
    can pick the right denominator instead of skewing attempt counts
    against logical outcomes.
    """

    def test_attempts_split_into_logical_calls_and_retries(self):
        bus = MessageBus(drop_rate=0.4, rng=random.Random(7), metrics=MetricsRegistry())
        bus.register("echo", Echo())
        succeeded = failed = 0
        for index in range(50):
            try:
                bus.call("echo", "echo", {"i": index}, retries=3)
                succeeded += 1
            except NetworkError:
                failed += 1
        assert succeeded + failed == 50
        assert bus.stats.logical_calls == 50
        assert bus.stats.retries > 0, "a 40% loss rate must force retries"
        assert bus.stats.calls == bus.stats.logical_calls + bus.stats.retries
        assert bus.stats.attempts == bus.stats.calls
        # With no endpoint errors, every attempt either dropped or
        # succeeded, and each success completes one logical call.
        assert bus.stats.errors == 0
        assert bus.stats.calls - bus.stats.dropped == succeeded
        # A failed logical call burns exactly 1 + retries attempts.
        assert bus.stats.dropped == bus.stats.retries + failed

    def test_lossless_bus_never_retries(self):
        bus = MessageBus(metrics=MetricsRegistry())
        bus.register("echo", Echo())
        for index in range(10):
            bus.call("echo", "echo", {"i": index}, retries=5)
        assert bus.stats.logical_calls == 10
        assert bus.stats.retries == 0
        assert bus.stats.calls == 10

    def test_rpc_error_consumes_single_attempt(self):
        bus = MessageBus(metrics=MetricsRegistry())
        bus.register("echo", Echo())
        with pytest.raises(RpcError):
            bus.call("echo", "boom", retries=5)
        assert bus.stats.logical_calls == 1
        assert bus.stats.retries == 0
        assert bus.stats.calls == 1

    def test_registry_mirrors_stats(self):
        registry = MetricsRegistry()
        bus = MessageBus(drop_rate=0.3, rng=random.Random(11), metrics=registry)
        bus.register("echo", Echo())
        for index in range(30):
            try:
                bus.call("echo", "echo", {"i": index}, retries=2)
            except NetworkError:
                pass
        assert registry.total("bus_attempts_total") == bus.stats.calls
        assert registry.total("bus_calls_total") == bus.stats.logical_calls
        assert registry.total("bus_retries_total") == bus.stats.retries
        assert registry.total("bus_dropped_total") == bus.stats.dropped
        assert registry.total("bus_bytes_sent_total") == bus.stats.bytes_sent
        assert registry.total("bus_bytes_received_total") == bus.stats.bytes_received
        histogram = registry.histogram(
            "bus_call_seconds", {"target": "echo", "method": "echo"}
        )
        assert histogram.count == bus.stats.logical_calls
        assert histogram.percentile(95) is not None
