"""Unit tests for the TIPPERS facade and its bus endpoint."""

import pytest

from repro.core.policy import catalog
from repro.core.policy.serialization import preference_to_dict
from repro.errors import NetworkError, PolicyError
from repro.net.bus import MessageBus, RpcError
from repro.spatial.model import build_simple_building
from repro.tippers.bms import TIPPERS
from repro.users.profile import UserProfile


class TestConstruction:
    def test_unknown_building_rejected(self, small_building):
        with pytest.raises(PolicyError):
            TIPPERS(small_building, "ghost-tower")

    def test_deploy_to_unknown_space_rejected(self, tippers):
        with pytest.raises(PolicyError):
            tippers.deploy_sensor("camera", "cam-x", "atlantis")

    def test_add_user_refreshes_context_groups(self, tippers):
        tippers.add_user(
            UserProfile(
                user_id="carol",
                name="Carol",
                groups=frozenset({"staff"}),
                device_macs=("aa:bb:cc:00:00:03",),
            )
        )
        assert "staff" in tippers.context.groups_of("carol")


class TestOperation:
    def test_retention_sweep_uses_policy_schedule(self, tippers, world):
        world.put("mary", "aa:bb:cc:00:00:01", "b-1001")
        tippers.tick(0.0, world)
        assert tippers.datastore.count("wifi_access_point") == 1
        # After the P6M retention elapses, the observation is purged.
        purged = tippers.run_retention(7 * 30 * 86400.0)
        assert purged >= 1
        assert tippers.datastore.count("wifi_access_point") == 0

    def test_comfort_control_actuates_occupied_rooms(self, tippers, world):
        world.put("mary", "aa:bb:cc:00:00:01", "b-1001")
        tippers.tick(0.0, world)  # motion recorded in b-1001
        actuated = tippers.run_comfort_control(60.0)
        assert actuated == 1
        assert tippers.sensor_manager.sensor("hvac-1").settings.get("fan_speed") == "auto"


class TestBusEndpoint:
    @pytest.fixture
    def bus(self, tippers):
        bus = MessageBus()
        bus.register("tippers", tippers)
        return bus

    def test_get_policy_document(self, bus):
        document = bus.call("tippers", "get_policy_document")
        assert document["resources"], "policies advertised"

    def test_get_settings_document(self, bus):
        document = bus.call("tippers", "get_settings_document")
        assert document["settings"][0]["select"]

    def test_submit_selection_reports_conflicts(self, bus):
        response = bus.call(
            "tippers",
            "submit_selection",
            {"user_id": "mary", "selection": {"location": "off"}},
        )
        assert response["conflicts"], "opt-out conflicts with mandatory policy"

    def test_submit_preference_over_wire(self, bus):
        payload = preference_to_dict(catalog.preference_2_no_location("mary"))
        response = bus.call("tippers", "submit_preference", {"preference": payload})
        assert response["conflicts"]

    def test_locate_user_over_wire(self, bus, tippers, world):
        world.put("mary", "aa:bb:cc:00:00:01", "b-1001")
        tippers.tick(100.0, world)
        response = bus.call(
            "tippers",
            "locate_user",
            {"requester_id": "svc", "subject_id": "mary", "now": 160.0},
        )
        assert response["allowed"]
        assert response["location"]["space_id"] == "b-1001"

    def test_room_occupancy_over_wire(self, bus):
        response = bus.call(
            "tippers",
            "room_occupancy",
            {"requester_id": "svc", "space_id": "b-1001", "now": 100.0},
        )
        assert response["allowed"]
        assert response["occupied"] is False

    def test_unknown_method_is_rpc_error(self, bus):
        with pytest.raises(RpcError):
            bus.call("tippers", "self_destruct")

    def test_application_errors_surface_as_rpc_errors(self, bus):
        with pytest.raises(RpcError):
            bus.call(
                "tippers",
                "submit_selection",
                {"user_id": "ghost", "selection": {"location": "off"}},
            )

    def test_malformed_payload_is_rpc_error(self, bus):
        with pytest.raises(RpcError):
            bus.call("tippers", "locate_user", {"subject_id": "mary"})
