"""Unit tests for the simulated sensor drivers."""

import pytest

from repro.sensors.drivers import (
    BluetoothBeacon,
    HVACUnit,
    IDCardReader,
    MotionSensor,
    PowerOutletMeter,
    SurveillanceCamera,
    TemperatureSensor,
    WiFiAccessPoint,
    create_sensor,
)
from repro.sensors.environment import EnvironmentView, PresentDevice


class Room(EnvironmentView):
    """A single-space world with controllable contents."""

    def __init__(self, space_id="r1"):
        self.space_id = space_id
        self.devices = []
        self.temperature = 71.5
        self.power = 250.0
        self.credential = None

    def devices_in(self, space_id):
        return list(self.devices) if space_id == self.space_id else []

    def temperature_of(self, space_id):
        return self.temperature

    def power_draw_of(self, space_id):
        return self.power

    def credential_presented(self, space_id):
        cred, self.credential = self.credential, None
        return cred


@pytest.fixture
def room():
    return Room()


class TestWiFiAccessPoint:
    def test_logs_present_devices_without_attribution(self, room):
        ap = WiFiAccessPoint("ap-1", "r1")
        room.devices = [PresentDevice("mary", "aa:bb")]
        observations = ap.sample(0.0, room)
        assert len(observations) == 1
        assert observations[0].payload["device_mac"] == "aa:bb"
        assert observations[0].subject_id is None, "AP must not attribute"

    def test_respects_log_interval(self, room):
        ap = WiFiAccessPoint("ap-1", "r1", {"log_interval_s": 100.0})
        room.devices = [PresentDevice("mary", "aa:bb")]
        assert ap.sample(0.0, room)
        assert ap.sample(50.0, room) == []
        assert ap.sample(100.0, room)

    def test_logging_off_produces_nothing(self, room):
        ap = WiFiAccessPoint("ap-1", "r1", {"logging": "off"})
        room.devices = [PresentDevice("mary", "aa:bb")]
        assert ap.sample(0.0, room) == []

    def test_disabled_produces_nothing(self, room):
        ap = WiFiAccessPoint("ap-1", "r1")
        ap.disable()
        room.devices = [PresentDevice("mary", "aa:bb")]
        assert ap.sample(0.0, room) == []


class TestBluetoothBeacon:
    def test_only_iota_devices_report(self, room):
        beacon = BluetoothBeacon("bc-1", "r1")
        room.devices = [
            PresentDevice("mary", "aa:bb", has_iota=True),
            PresentDevice("bob", "cc:dd", has_iota=False),
        ]
        observations = beacon.sample(0.0, room)
        assert len(observations) == 1
        assert observations[0].subject_id == "mary"


class TestSurveillanceCamera:
    def test_frame_rate_honoured(self, room):
        camera = SurveillanceCamera("cam-1", "r1", {"capture_fps": 1.0})
        assert camera.sample(0.0, room)
        assert camera.sample(0.5, room) == []
        assert camera.sample(1.0, room)

    def test_recording_off_produces_nothing(self, room):
        camera = SurveillanceCamera("cam-1", "r1", {"recording": "off"})
        assert camera.sample(0.0, room) == []

    def test_faces_detected_counts_occupants(self, room):
        camera = SurveillanceCamera("cam-1", "r1")
        room.devices = [PresentDevice("a", "m1"), PresentDevice("b", "m2")]
        obs = camera.sample(0.0, room)[0]
        assert obs.payload["faces_detected"] == 2


class TestPowerAndTemperature:
    def test_power_meter_samples_draw(self, room):
        meter = PowerOutletMeter("pm-1", "r1", {"sample_interval_s": 10.0})
        obs = meter.sample(0.0, room)[0]
        assert obs.payload["watts"] == 250.0
        assert meter.sample(5.0, room) == []

    def test_temperature_sampled(self, room):
        sensor = TemperatureSensor("t-1", "r1", {"sample_interval_s": 10.0})
        obs = sensor.sample(0.0, room)[0]
        assert obs.payload["fahrenheit"] == 71.5


class TestMotionSensor:
    def test_motion_flag(self, room):
        motion = MotionSensor("m-1", "r1")
        assert motion.sample(0.0, room)[0].payload["motion"] == 0
        room.devices = [PresentDevice("mary", "aa:bb")]
        assert motion.sample(1.0, room)[0].payload["motion"] == 1


class TestHVACUnit:
    def test_reports_own_settings(self, room):
        hvac = HVACUnit("h-1", "r1", {"setpoint_f": 68.0})
        obs = hvac.sample(0.0, room)[0]
        assert obs.payload["setpoint_f"] == 68.0

    def test_actuation_visible_next_sample(self, room):
        hvac = HVACUnit("h-1", "r1")
        hvac.actuate({"fan_speed": "high"})
        assert hvac.sample(0.0, room)[0].payload["fan_speed"] == "high"


class TestIDCardReader:
    def test_nothing_without_credential(self, room):
        reader = IDCardReader("rd-1", "r1")
        assert reader.sample(0.0, room) == []

    def test_credential_attributed(self, room):
        reader = IDCardReader("rd-1", "r1")
        room.credential = "cred:mary"
        obs = reader.sample(0.0, room)[0]
        assert obs.payload["credential_id"] == "cred:mary"
        assert obs.subject_id == "mary"


class TestFactory:
    def test_create_known_types(self):
        sensor = create_sensor("camera", "c-1", "r1")
        assert isinstance(sensor, SurveillanceCamera)

    def test_create_unknown_type(self):
        with pytest.raises(KeyError):
            create_sensor("sonar", "s-1", "r1")
