"""Unit tests for user profiles and the directory."""

import pytest

from repro.errors import PolicyError
from repro.users.profile import UserDirectory, UserProfile


def profile(user_id="mary", macs=("aa:bb",), groups=frozenset({"faculty"})):
    return UserProfile(
        user_id=user_id,
        name=user_id.title(),
        groups=groups,
        device_macs=tuple(macs),
    )


class TestUserProfile:
    def test_empty_id_rejected(self):
        with pytest.raises(PolicyError):
            UserProfile(user_id="", name="x")

    def test_in_group(self):
        assert profile().in_group("faculty")
        assert not profile().in_group("staff")


class TestUserDirectory:
    def test_add_and_get(self):
        directory = UserDirectory()
        directory.add(profile())
        assert directory.get("mary").name == "Mary"
        assert "mary" in directory
        assert len(directory) == 1

    def test_duplicate_user_rejected(self):
        directory = UserDirectory()
        directory.add(profile())
        with pytest.raises(PolicyError):
            directory.add(profile())

    def test_duplicate_device_rejected(self):
        directory = UserDirectory()
        directory.add(profile())
        with pytest.raises(PolicyError):
            directory.add(profile(user_id="bob", macs=("aa:bb",)))

    def test_unknown_user(self):
        with pytest.raises(PolicyError):
            UserDirectory().get("ghost")

    def test_owner_of_device(self):
        directory = UserDirectory()
        directory.add(profile())
        assert directory.owner_of_device("aa:bb") == "mary"
        assert directory.owner_of_device("zz:zz") is None

    def test_members_of(self):
        directory = UserDirectory()
        directory.add(profile())
        directory.add(profile(user_id="bob", macs=("cc:dd",), groups=frozenset({"staff"})))
        assert [u.user_id for u in directory.members_of("staff")] == ["bob"]

    def test_group_map_shape(self):
        directory = UserDirectory()
        directory.add(profile())
        assert directory.group_map() == {"mary": frozenset({"faculty"})}

    def test_iteration(self):
        directory = UserDirectory()
        directory.add(profile())
        directory.add(profile(user_id="bob", macs=("cc:dd",)))
        assert {u.user_id for u in directory} == {"mary", "bob"}
