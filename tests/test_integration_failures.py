"""Integration tests: the framework under injected failures.

Failures are driven through the deterministic fault-injection harness
(:mod:`repro.faults`) rather than ad-hoc drop rates: a seeded
:class:`FaultPlan` decides which bus attempts drop, when the registry
endpoint crashes, and which datastore writes fail.  The IoTA and
TIPPERS must degrade gracefully -- the paper's interaction loop is
built from independent request/response exchanges, so each should
either complete via retries or fail without corrupting state.
"""

import pytest

from repro.core.policy import catalog
from repro.errors import NetworkError, StorageError
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec, single_spec_plan
from repro.iota.assistant import IoTAssistant
from repro.iota.personas import PERSONAS, generate_decisions
from repro.iota.preference_model import PreferenceModel
from repro.irr.registry import IoTResourceRegistry
from repro.net.bus import MessageBus
from repro.net.resilience import RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.sensors.base import Observation
from repro.tippers.bms import TIPPERS
from repro.tippers.dsar import erase_subject


def lossy_plan(seed=42, rate=0.3):
    """A plan dropping ``rate`` of bus attempts, deterministically."""
    return FaultPlan(
        [FaultSpec(kind=FaultKind.DROP, rate=rate)], seed=seed, name="lossy-it"
    )


@pytest.fixture
def lossy_setup(tippers):
    """TIPPERS + IRR behind a bus dropping 30% of attempts (injected)."""
    bus = MessageBus()
    bus.register("tippers", tippers)
    registry = IoTResourceRegistry("irr-1", tippers.spatial)
    bus.register("irr-1", registry)
    document = tippers.policy_manager.compile_policy_document()
    settings = tippers.policy_manager.settings_space.to_document()
    registry.publish_resource("ads", "b", document, settings=settings)
    injector = FaultInjector(lossy_plan())
    injector.install_bus(bus)
    model = PreferenceModel().fit(
        generate_decisions(PERSONAS["fundamentalist"], 150, seed=1, noise=0.0)
    )
    assistant = IoTAssistant(
        "mary", bus, model=model, registry_endpoints=["irr-1"]
    )
    return bus, assistant, tippers


class TestLossyNetwork:
    def test_discovery_succeeds_with_retries(self, lossy_setup):
        bus, assistant, _ = lossy_setup
        # discover() retries each registry call twice; at 30% loss a
        # seeded run completes.  If every retry is eaten, the result is
        # simply empty -- never an exception.
        result = assistant.discover("b-1001", now=100.0)
        assert result.registry_ids in ([], ["irr-1"])
        assert bus.stats.dropped >= 0

    def test_repeated_discovery_eventually_succeeds(self, lossy_setup):
        bus, assistant, _ = lossy_setup
        results = [assistant.discover("b-1001", now=float(i)) for i in range(10)]
        assert any(r.resources for r in results), "some sweep must get through"

    def test_settings_configuration_state_consistent(self, lossy_setup):
        bus, assistant, tippers = lossy_setup
        submitted = None
        for attempt in range(10):
            try:
                submitted = assistant.configure_building_settings(now=100.0 + attempt)
                break
            except NetworkError:
                continue
        assert submitted is not None, "retries must eventually land"
        # Building state reflects exactly the submitted selection.
        assert tippers.preference_manager.selection_of("mary") == submitted

    def test_injected_loss_is_reproducible(self, tippers):
        def run():
            bus = MessageBus()
            bus.register("tippers", tippers)
            registry = IoTResourceRegistry("irr-run", tippers.spatial)
            bus.register("irr-run", registry)
            registry.publish_resource(
                "ads", "b", tippers.policy_manager.compile_policy_document()
            )
            injector = FaultInjector(lossy_plan())
            injector.install_bus(bus)
            assistant = IoTAssistant("mary", bus, registry_endpoints=["irr-run"])
            outcomes = [
                bool(assistant.discover("b-1001", now=float(i)).registry_ids)
                for i in range(10)
            ]
            return outcomes, injector.trace.to_text(), bus.stats.dropped

        first, second = run(), run()
        assert first == second

    def test_zero_loss_control(self, tippers):
        bus = MessageBus(drop_rate=0.0)
        bus.register("tippers", tippers)
        registry = IoTResourceRegistry("irr-1", tippers.spatial)
        bus.register("irr-1", registry)
        registry.publish_resource(
            "ads", "b", tippers.policy_manager.compile_policy_document()
        )
        assistant = IoTAssistant("mary", bus, registry_endpoints=["irr-1"])
        assert assistant.discover("b-1001", now=0.0).resources


class TestPartialDeployments:
    def test_missing_registry_is_not_fatal(self, tippers):
        bus = MessageBus()
        bus.register("tippers", tippers)
        assistant = IoTAssistant(
            "mary", bus, registry_endpoints=["irr-ghost-1", "irr-ghost-2"]
        )
        result = assistant.discover("b-1001", now=0.0)
        assert result.registry_ids == []
        assert result.resources == []

    def test_tippers_without_settings_space_still_answers_queries(self, small_building, mary):
        bms = TIPPERS(small_building, "b")
        bms.add_user(mary)
        bms.define_policy(catalog.policy_service_sharing("b"))
        from repro.core.policy.base import RequesterKind

        response = bms.locate_user(
            "svc", RequesterKind.BUILDING_SERVICE, "mary", 100.0
        )
        assert response.allowed  # no data yet, but the path works
        assert response.value is None


class TestEndpointCrashMidDiscovery:
    """The registry endpoint crashes mid-sequence, then restarts.

    Each discovery sweep issues one logical call with two retries (three
    transport attempts); the crash window is sized in those attempts.
    """

    def test_discovery_rides_out_a_registry_crash(self, tippers):
        bus = MessageBus()
        bus.register("tippers", tippers)
        registry = IoTResourceRegistry("irr-1", tippers.spatial)
        bus.register("irr-1", registry)
        registry.publish_resource(
            "ads", "b", tippers.policy_manager.compile_policy_document()
        )
        # Steps 1..6 cover sweeps 2 and 3 (3 attempts each); the window
        # closing at step 7 is the restart.
        injector = FaultInjector(
            single_spec_plan(
                FaultSpec(kind=FaultKind.CRASH, target="irr-1", start=1, stop=7)
            )
        )
        injector.install_bus(bus)
        assistant = IoTAssistant("mary", bus, registry_endpoints=["irr-1"])

        before = assistant.discover("b-1001", now=0.0)
        assert before.registry_ids == ["irr-1"]

        during = [assistant.discover("b-1001", now=float(i)) for i in (1, 2)]
        assert all(r.registry_ids == [] for r in during)
        assert all(r.resources == [] for r in during)

        after = assistant.discover("b-1001", now=3.0)
        assert after.registry_ids == ["irr-1"]
        assert after.resources

        # All six crashed attempts are visible in the books and trace.
        assert bus.stats.faulted == 6
        assert bus.stats.dropped == 6
        assert injector.trace.counts() == {"crash": 6}
        assert bus.stats.calls == bus.stats.logical_calls + bus.stats.retries


class TestDatastoreFailureMidDSAR:
    """A write failure mid-erasure must not corrupt state.

    The store's write guard fires before any mutation, so a faulted
    erasure leaves both the data and the audit log exactly as they
    were; the retry after recovery completes the request.
    """

    def observations_for(self, subject, count=3):
        return [
            Observation.create(
                sensor_id="ap-1",
                sensor_type="wifi_access_point",
                timestamp=100.0 + i,
                space_id="b-1001",
                payload={"device_mac": "aa:bb", "ap_mac": "x", "rssi": -40.0},
                subject_id=subject,
            )
            for i in range(count)
        ]

    def test_erasure_fails_atomically_then_succeeds_on_retry(self, tippers):
        for observation in self.observations_for("mary"):
            tippers.datastore.insert(observation)
        assert tippers.datastore.count() == 3
        audit_before = len(tippers.audit)

        injector = FaultInjector(
            single_spec_plan(
                FaultSpec(kind=FaultKind.STORE_WRITE_FAIL, target="forget")
            )
        )
        injector.install_datastore(tippers.datastore)
        with pytest.raises(StorageError):
            erase_subject(tippers, "mary", now=500.0)

        # Nothing moved: data intact, no erasure record, failure counted.
        assert tippers.datastore.count() == 3
        assert len(tippers.datastore.query(subject_id="mary")) == 3
        assert len(tippers.audit) == audit_before
        assert tippers.datastore.total_write_failures == 1

        injector.uninstall()
        receipt = erase_subject(tippers, "mary", now=501.0)
        assert receipt.erased_observations == 3
        assert tippers.datastore.query(subject_id="mary") == []
        erasure = tippers.audit.records()[-1]
        assert erasure.category == "erasure"
        assert "3 observations deleted" in erasure.reasons[0]


class TestInjectedRetryAccounting:
    """Satellite check: retries caused by *injected* faults stay inside
    the ``calls == logical_calls + retries`` identity and reconcile
    with the metrics registry."""

    def test_identity_and_metrics_reconcile(self, tippers):
        metrics = MetricsRegistry()
        bus = MessageBus(metrics=metrics, tracer=Tracer())
        bus.register("tippers", tippers)
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.DROP, at_steps=(0, 1, 3)))
        )
        injector.install_bus(bus)
        policy = RetryPolicy(max_retries=3, jitter=0.0, seed=7)

        from repro.core.policy.base import RequesterKind

        payload = {
            "requester_id": "svc",
            "requester_kind": RequesterKind.BUILDING_SERVICE.value,
            "subject_id": "mary",
            "now": 100.0,
        }
        # Call 1: attempts at steps 0, 1 drop; step 2 succeeds.
        bus.call("tippers", "locate_user", payload, retry_policy=policy)
        # Call 2: attempt at step 3 drops; step 4 succeeds.
        bus.call("tippers", "locate_user", payload, retry_policy=policy)

        assert bus.stats.logical_calls == 2
        assert bus.stats.retries == 3
        assert bus.stats.faulted == 3
        assert bus.stats.calls == 5
        assert bus.stats.calls == bus.stats.logical_calls + bus.stats.retries
        # The registry mirrors the books exactly.
        assert metrics.total("bus_attempts_total") == bus.stats.calls
        assert metrics.total("bus_retries_total") == bus.stats.retries
        assert metrics.total("bus_dropped_total") == bus.stats.dropped
        assert metrics.total(
            "bus_fault_dropped_total", {"target": "tippers"}
        ) == bus.stats.faulted
        # The charged backoff equals the policy's first delays, exactly.
        expected = sum(policy.schedule()[:2]) + policy.schedule()[0]
        assert bus.stats.simulated_latency_s == pytest.approx(expected)


class TestFailureVisibility:
    """Injected failures must be *visible* in metrics.

    After a lossy Figure-1 exchange, the drop, error, and retry counters
    on the registry must reconcile exactly with the outcomes the caller
    observed -- otherwise the observability layer under-reports exactly
    the incidents it exists to explain.
    """

    @pytest.fixture
    def observed_lossy_setup(self, tippers):
        registry = MetricsRegistry()
        tracer = Tracer()
        bus = MessageBus(metrics=registry, tracer=tracer)
        bus.register("tippers", tippers)
        irr = IoTResourceRegistry("irr-1", tippers.spatial)
        bus.register("irr-1", irr)
        document = tippers.policy_manager.compile_policy_document()
        irr.publish_resource("ads", "b", document)
        injector = FaultInjector(lossy_plan())
        injector.install_bus(bus)
        assistant = IoTAssistant(
            "mary", bus, registry_endpoints=["irr-1"], metrics=registry
        )
        return registry, tracer, bus, assistant

    def test_drops_and_retries_reconcile_with_outcomes(self, observed_lossy_setup):
        registry, _, bus, assistant = observed_lossy_setup
        results = [assistant.discover("b-1001", now=float(i)) for i in range(20)]
        reached = sum(1 for result in results if result.registry_ids)

        # Registry counters mirror the bus's own books exactly.
        assert registry.total("bus_attempts_total") == bus.stats.calls
        assert registry.total("bus_calls_total") == bus.stats.logical_calls
        assert registry.total("bus_retries_total") == bus.stats.retries
        assert registry.total("bus_dropped_total") == bus.stats.dropped
        # Every drop came from the fault plane, and is marked as such.
        assert registry.total("bus_fault_dropped_total") == bus.stats.faulted
        assert bus.stats.faulted == bus.stats.dropped

        # The accounting identity: every attempt is a first send or a retry.
        assert bus.stats.calls == bus.stats.logical_calls + bus.stats.retries
        # One logical call per sweep (a single registry endpoint).
        assert bus.stats.logical_calls == 20
        # No endpoint failures in this setup: every attempt either
        # dropped or succeeded, and successes == sweeps that reached
        # the registry.
        assert bus.stats.errors == 0
        assert bus.stats.calls - bus.stats.dropped == reached
        # Failed sweeps are exactly the ones whose every attempt dropped.
        failed = 20 - reached
        assert bus.stats.dropped == bus.stats.retries + failed
        # A 30% loss rate over 20 sweeps must show up in the counters.
        assert bus.stats.dropped > 0

        # IoTA-level counters agree with the caller-visible outcome.
        assert registry.total("iota_discovery_rounds_total") == 20
        assert registry.total("iota_registries_reached_total") == reached
        assert registry.total("iota_registries_unreachable_total") == failed

    def test_spans_record_failed_sweeps_as_errors(self, observed_lossy_setup):
        registry, tracer, bus, assistant = observed_lossy_setup
        for index in range(20):
            assistant.discover("b-1001", now=float(index))
        discover_spans = tracer.find("iota.discover")
        assert len(discover_spans) == 20
        assert all(span.finished for span in discover_spans)
        call_spans = tracer.find("bus.call")
        assert len(call_spans) == bus.stats.logical_calls
        # A bus.call span errors exactly when its logical call failed,
        # which is exactly an unreachable-registry sweep.
        errored = sum(1 for span in call_spans if span.status == "error")
        assert errored == registry.total("iota_registries_unreachable_total")

    def test_rpc_errors_surface_in_error_counters(self, tippers):
        registry = MetricsRegistry()
        bus = MessageBus(metrics=registry, tracer=Tracer())
        bus.register("tippers", tippers)
        from repro.net.bus import RpcError

        with pytest.raises(RpcError):
            bus.call("tippers", "no_such_method", {})
        assert bus.stats.errors == 1
        assert registry.total("bus_errors_total") == 1
        assert registry.total(
            "bus_rpc_errors_total",
            {"target": "tippers", "method": "no_such_method"},
        ) == 1


class TestCachedTippersEquivalence:
    def test_cached_bms_matches_uncached(self, small_building, mary, bob):
        from repro.core.policy.base import RequesterKind

        def build(cache):
            bms = TIPPERS(
                build_spatial(), "b", cache_decisions=cache
            )
            bms.define_policy(catalog.policy_2_emergency_location("b"))
            bms.define_policy(catalog.policy_service_sharing("b"))
            bms.add_user(mary)
            bms.add_user(bob)
            return bms

        def build_spatial():
            from repro.spatial.model import build_simple_building

            return build_simple_building("b", 2, 4)

        cached, plain = build(True), build(False)
        cached.submit_preference(catalog.preference_2_no_location("mary"))
        plain.submit_preference(catalog.preference_2_no_location("mary"))
        for subject in ("mary", "bob"):
            for t in (100.0, 200.0, 300.0):
                a = cached.locate_user("svc", RequesterKind.BUILDING_SERVICE, subject, t)
                b = plain.locate_user("svc", RequesterKind.BUILDING_SERVICE, subject, t)
                assert a.allowed == b.allowed
