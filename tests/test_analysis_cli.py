"""End-to-end tests for ``python -m repro lint`` and the rule docs."""

import json
import os

import pytest

from repro.__main__ import main
from repro.analysis import all_rules

#: One seeded violation per code rule; each snippet triggers exactly
#: the rule it is named after when dropped into the fixture tree.
VIOLATIONS = {
    "C001": "import time\nstamp = time.time()\n",
    "C002": "import random\nrng = random.Random()\n",
    "C003": "try:\n    pass\nexcept:\n    pass\n",
    "C004": "def f(items=[]):\n    return items\n",
    "C005": "def run(registry):\n    registry.counter('cacheHits')\n",
    "C006": "from repro.tippers.policy_manager import PolicyManager\n",
    # C007 only applies to the client layers; the fixture routes it
    # into src/repro/services/ below.
    "C007": "def f(bus):\n    return bus.call('tippers', 'locate_user', {})\n",
}


@pytest.fixture
def fixture_tree(tmp_path):
    """A tree with one file per code rule, each seeding one violation."""
    for rule_id, source in VIOLATIONS.items():
        layer = "services" if rule_id == "C007" else "core"
        package = tmp_path / "src" / "repro" / layer
        package.mkdir(parents=True, exist_ok=True)
        (package / ("bad_%s.py" % rule_id.lower())).write_text(source)
    return str(tmp_path)


class TestMergedTreeIsClean:
    def test_lint_src_and_tests_exits_zero(self, capsys):
        assert main(["lint", "src", "tests"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_policy_audit_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out


class TestFixtureTree:
    def test_every_code_rule_fires_once(self, capsys, fixture_tree):
        assert main(["lint", fixture_tree]) == 1
        out = capsys.readouterr().out
        for rule_id in VIOLATIONS:
            assert out.count(rule_id) == 1, "expected exactly one %s" % rule_id
        assert "7 finding(s)" in out

    def test_single_rule_selection(self, capsys, fixture_tree):
        assert main(["lint", "--select", "C003", fixture_tree]) == 1
        out = capsys.readouterr().out
        assert "C003" in out
        assert "C001" not in out

    def test_json_format(self, capsys, fixture_tree):
        assert main(["lint", "--format", "json", fixture_tree]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(VIOLATIONS)
        fired = {entry["rule_id"] for entry in payload["findings"]}
        assert fired == set(VIOLATIONS)
        assert all(entry["file"] for entry in payload["findings"])

    def test_noqa_silences_the_fixture(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\nrng = random.Random()  # repro: noqa=C002\n"
        )
        assert main(["lint", str(tmp_path)]) == 0


class TestJsonOutputIsPure:
    """``--format json``/``sarif`` stdout must be exactly one JSON doc.

    Regression guard: no banner, summary line, or stale-baseline note
    may ever leak onto stdout in machine-readable modes -- CI pipes
    these straight into parsers.
    """

    def test_whole_stdout_parses_with_findings(self, capsys, fixture_tree):
        assert main(["lint", "--format", "json", fixture_tree]) == 1
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["count"] == len(VIOLATIONS)
        assert out.strip().startswith("{")
        assert out.strip().endswith("}")

    def test_whole_stdout_parses_when_clean(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", "--format", "json", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out) == {
            "count": 0,
            "findings": [],
        }

    def test_policy_audit_json_is_pure(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0

    def test_sarif_stdout_is_pure(self, capsys, fixture_tree):
        assert main(["lint", "--format", "sarif", fixture_tree]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert len(payload["runs"][0]["results"]) == len(VIOLATIONS)

    def test_flow_json_stdout_is_pure(self, capsys):
        assert main(["lint", "--flow", "src", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["stale_baseline_entries"] == []


class TestUsageErrors:
    def test_unknown_select_exits_two(self, capsys):
        assert main(["lint", "--select", "Z999", "src"]) == 2
        assert "matches no registered rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/no/such/tree"]) == 2
        assert "no such file" in capsys.readouterr().err


class TestRuleCatalogDocs:
    def test_every_rule_id_documented(self):
        docs = os.path.join(os.path.dirname(__file__), "..", "docs", "ANALYSIS.md")
        with open(docs, "r", encoding="utf-8") as handle:
            text = handle.read()
        for rule in all_rules():
            assert rule.rule_id in text, (
                "rule %s is not documented in docs/ANALYSIS.md" % rule.rule_id
            )
            assert rule.name in text, (
                "rule name %r is not documented in docs/ANALYSIS.md" % rule.name
            )

    def test_help_mentions_lint_modes(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--help"])
        out = capsys.readouterr().out
        assert "--select" in out
        assert "--format" in out
        assert "--flow" in out
        assert "--write-baseline" in out
