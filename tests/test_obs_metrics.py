"""Unit tests for the metrics registry: counters, gauges, histograms."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_name_and_labels_share_a_counter(self):
        registry = MetricsRegistry()
        a = registry.counter("c", {"target": "tippers", "method": "locate"})
        # Label order must not matter.
        b = registry.counter("c", {"method": "locate", "target": "tippers"})
        assert a is b

    def test_distinct_labels_are_distinct_counters(self):
        registry = MetricsRegistry()
        a = registry.counter("c", {"effect": "allow"})
        b = registry.counter("c", {"effect": "deny"})
        a.inc(3)
        b.inc(1)
        assert a.value == 3 and b.value == 1
        assert registry.total("c") == 4
        assert registry.total("c", {"effect": "allow"}) == 3

    def test_counter_cannot_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_float_increments_allowed(self):
        counter = MetricsRegistry().counter("seconds_total")
        counter.inc(0.25)
        counter.inc(0.75)
        assert counter.value == pytest.approx(1.0)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("cache_size")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_labeled_gauges_independent(self):
        registry = MetricsRegistry()
        registry.gauge("g", {"zone": "a"}).set(1)
        registry.gauge("g", {"zone": "b"}).set(2)
        assert registry.gauge("g", {"zone": "a"}).value == 1


class TestHistogram:
    def test_percentiles_exact_at_bucket_boundaries(self):
        # Samples placed exactly on the bucket bounds must come back
        # exactly: a sample at bound b lands in the bucket whose upper
        # bound is b, and the estimator reports that upper bound.
        histogram = Histogram("h", boundaries=(1.0, 2.0, 4.0, 8.0))
        for value in (1.0, 1.0, 2.0, 4.0):
            histogram.observe(value)
        assert histogram.percentile(25) == 1.0
        assert histogram.percentile(50) == 1.0
        assert histogram.percentile(75) == 2.0
        assert histogram.percentile(95) == 4.0
        assert histogram.percentile(100) == 4.0

    def test_percentile_of_overflow_bucket_is_observed_max(self):
        histogram = Histogram("h", boundaries=(1.0, 2.0))
        histogram.observe(50.0)
        assert histogram.percentile(99) == 50.0

    def test_percentile_clamped_to_max_within_bucket(self):
        # 0.3 lands in the (0.25, 0.5] bucket; the raw estimate 0.5 is
        # clamped to the observed max so it never exceeds reality.
        histogram = Histogram("h", boundaries=(0.25, 0.5, 1.0))
        histogram.observe(0.3)
        assert histogram.percentile(50) == 0.3

    def test_empty_percentile_is_none(self):
        assert Histogram("h", boundaries=(1.0,)).percentile(50) is None

    def test_invalid_percentile_rejected(self):
        histogram = Histogram("h", boundaries=(1.0,))
        histogram.observe(0.5)
        with pytest.raises(ValueError):
            histogram.percentile(0)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_count_sum_min_max(self):
        histogram = Histogram("h", boundaries=DEFAULT_COUNT_BUCKETS)
        for value in (3, 1, 4, 1, 5):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == 14
        assert histogram.min == 1
        assert histogram.max == 5
        assert histogram.mean == pytest.approx(2.8)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(1.0,)).observe(float("nan"))

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", boundaries=())

    def test_merge_requires_matching_bounds(self):
        a = Histogram("h", boundaries=(1.0, 2.0))
        b = Histogram("h", boundaries=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_adds_counts(self):
        a = Histogram("h", boundaries=(1.0, 2.0, 4.0))
        b = Histogram("h", boundaries=(1.0, 2.0, 4.0))
        a.observe(0.5)
        a.observe(3.0)
        b.observe(1.5)
        merged = a.merge(b)
        assert merged.count == 3
        assert merged.min == 0.5
        assert merged.max == 3.0
        assert sum(merged.counts) == 3

    def test_default_latency_buckets_strictly_increasing(self):
        bounds = DEFAULT_LATENCY_BUCKETS
        assert all(a < b for a, b in zip(bounds, bounds[1:]))
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] == pytest.approx(10.0)


class TestRegistrySnapshot:
    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c", {"k": "v"}).inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", boundaries=(1.0, 2.0)).observe(1.5)
        parsed = json.loads(json.dumps(registry.snapshot()))
        assert parsed["counters"][0]["value"] == 2

    def test_restore_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", {"k": "v"}).inc(2)
        registry.gauge("g").set(-3)
        histogram = registry.histogram("h", boundaries=(1.0, 2.0, 4.0))
        histogram.observe(0.5)
        histogram.observe(3.0)
        restored = MetricsRegistry.restore(registry.snapshot())
        assert restored.snapshot() == registry.snapshot()
        assert restored.histogram("h", boundaries=(1.0, 2.0, 4.0)).percentile(
            50
        ) == histogram.percentile(50)

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0


class TestRender:
    def test_render_shows_percentiles(self):
        registry = MetricsRegistry()
        registry.counter("bus_calls_total", {"target": "tippers"}).inc(3)
        histogram = registry.histogram("decide_seconds", boundaries=(0.001, 0.01))
        histogram.observe(0.0005)
        lines = "\n".join(registry.render())
        assert "bus_calls_total{target=tippers}" in lines
        assert "p50=" in lines and "p95=" in lines and "p99=" in lines

    def test_empty_histogram_renders_count_zero(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        assert "count=0" in registry.render()[0]


class TestDefaultRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestEnforcementMetricCompatibility:
    """The compiled engine must emit the reference engine's metric
    families with identical names and label keys -- dashboards keyed on
    enforcement_decisions_total{effect=...} and
    enforcement_decide_seconds must not notice the switch -- and its new
    table metrics carry only the documented result labels."""

    @staticmethod
    def _build(compiled):
        from repro.core.enforcement.engine import EnforcementEngine
        from repro.core.language.vocabulary import DataCategory, Purpose
        from repro.core.policy import catalog
        from repro.core.policy.base import (
            DataRequest,
            DecisionPhase,
            RequesterKind,
        )

        registry = MetricsRegistry()
        engine = EnforcementEngine(metrics=registry, compiled=compiled)
        engine.store.add_policy(catalog.policy_service_sharing("b"))
        for timestamp in (100.0, 200.0):
            engine.decide(
                DataRequest(
                    requester_id="svc",
                    requester_kind=RequesterKind.BUILDING_SERVICE,
                    phase=DecisionPhase.SHARING,
                    category=DataCategory.LOCATION,
                    subject_id="mary",
                    space_id=None,
                    timestamp=timestamp,
                    purpose=Purpose.PROVIDING_SERVICE,
                )
            )
        return registry

    @staticmethod
    def _families(registry, prefix):
        families = {}
        for store in (registry._counters, registry._gauges, registry._histograms):
            for name, labels in store:
                if name.startswith(prefix):
                    families.setdefault(name, set()).add(
                        tuple(sorted(key for key, _ in labels))
                    )
        return families

    def test_shared_families_have_identical_label_keys(self):
        reference = self._families(self._build(compiled=False), "enforcement_")
        compiled = self._families(self._build(compiled=True), "enforcement_")
        for name, label_keys in reference.items():
            assert compiled.get(name) == label_keys, (
                "compiled engine changed labels of %s" % name
            )

    def test_decision_counter_totals_match(self):
        reference = self._build(compiled=False)
        compiled = self._build(compiled=True)
        assert compiled.total("enforcement_decisions_total") == reference.total(
            "enforcement_decisions_total"
        )
        assert (
            compiled.histogram("enforcement_decide_seconds").count
            == reference.histogram("enforcement_decide_seconds").count
        )

    def test_table_metrics_use_documented_result_labels(self):
        registry = self._build(compiled=True)
        families = self._families(registry, "enforcement_table_")
        assert families["enforcement_table_total"] == {("result",)}
        assert families["enforcement_table_shards"] == {()}
        assert families["enforcement_table_rows"] == {()}
        assert families["enforcement_table_invalidations_total"] == {()}
        results = {
            dict(labels)["result"]
            for (name, labels) in registry._counters
            if name == "enforcement_table_total"
        }
        assert results == {"hit", "miss", "uncacheable"}
        assert registry.total("enforcement_table_total", {"result": "hit"}) == 1
        assert registry.total("enforcement_table_total", {"result": "miss"}) == 1
