"""Unit tests for the policy matcher."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.conditions import EvaluationContext
from repro.core.policy.preference import UserPreference
from repro.core.reasoner.index import LinearRuleStore
from repro.core.reasoner.matcher import PolicyMatcher


def request(**overrides) -> DataRequest:
    defaults = dict(
        requester_id="svc",
        requester_kind=RequesterKind.BUILDING_SERVICE,
        phase=DecisionPhase.SHARING,
        category=DataCategory.LOCATION,
        subject_id="mary",
        space_id="r1",
        timestamp=0.0,
        purpose=Purpose.PROVIDING_SERVICE,
    )
    defaults.update(overrides)
    return DataRequest(**defaults)


def policy(pid, **overrides) -> BuildingPolicy:
    defaults = dict(
        policy_id=pid,
        name=pid,
        description="d",
        phases=(DecisionPhase.SHARING,),
        categories=(DataCategory.LOCATION,),
    )
    defaults.update(overrides)
    return BuildingPolicy(**defaults)


def preference(pid, user="mary", **overrides) -> UserPreference:
    defaults = dict(
        preference_id=pid,
        user_id=user,
        description="d",
        effect=Effect.DENY,
        categories=(DataCategory.LOCATION,),
        phases=(DecisionPhase.SHARING,),
    )
    defaults.update(overrides)
    return UserPreference(**defaults)


@pytest.fixture
def matcher():
    return PolicyMatcher(LinearRuleStore(), EvaluationContext())


class TestMatching:
    def test_applicable_rules_found(self, matcher):
        matcher.store.add_policy(policy("p1"))
        matcher.store.add_preference(preference("f1"))
        result = matcher.match(request())
        assert [p.policy_id for p in result.policies] == ["p1"]
        assert [p.preference_id for p in result.preferences] == ["f1"]

    def test_non_applicable_filtered(self, matcher):
        matcher.store.add_policy(policy("p1", categories=(DataCategory.ENERGY_USE,)))
        matcher.store.add_preference(preference("f1", user="bob"))
        result = matcher.match(request())
        assert result.policies == []
        assert result.preferences == []

    def test_policies_ordered_by_priority_then_id(self, matcher):
        matcher.store.add_policy(policy("p-b", priority=0))
        matcher.store.add_policy(policy("p-a", priority=0))
        matcher.store.add_policy(policy("p-z", priority=5))
        result = matcher.match(request())
        assert [p.policy_id for p in result.policies] == ["p-z", "p-a", "p-b"]

    def test_preferences_sorted_by_id(self, matcher):
        matcher.store.add_preference(preference("f-b"))
        matcher.store.add_preference(preference("f-a"))
        result = matcher.match(request())
        assert [p.preference_id for p in result.preferences] == ["f-a", "f-b"]


class TestMatchResultViews:
    def test_partitions(self, matcher):
        matcher.store.add_policy(policy("allow-1"))
        matcher.store.add_policy(policy("deny-1", effect=Effect.DENY))
        matcher.store.add_policy(policy("mand-1", mandatory=True))
        matcher.store.add_preference(preference("deny-p"))
        matcher.store.add_preference(
            preference("allow-p", effect=Effect.ALLOW,
                       granularity_cap=GranularityLevel.COARSE)
        )
        result = matcher.match(request())
        assert {p.policy_id for p in result.allowing_policies} == {"allow-1", "mand-1"}
        assert {p.policy_id for p in result.denying_policies} == {"deny-1"}
        assert {p.policy_id for p in result.mandatory_policies} == {"mand-1"}
        assert {p.preference_id for p in result.denying_preferences} == {"deny-p"}
        assert {p.preference_id for p in result.allowing_preferences} == {"allow-p"}
        assert result.has_building_authorization
        assert result.user_objects

    def test_empty_match(self, matcher):
        result = matcher.match(request())
        assert not result.has_building_authorization
        assert not result.user_objects

    def test_default_store_is_linear(self):
        matcher = PolicyMatcher()
        assert matcher.match(request()).policies == []
