"""Unit tests for the DBH simulation substrate."""

import pytest

from repro.errors import ReproError
from repro.simulation.dbh import (
    BEACON_COUNT,
    CAMERA_COUNT,
    POWER_METER_COUNT,
    WIFI_AP_COUNT,
    build_dbh_spatial,
    deploy_dbh_sensors,
    make_dbh_tippers,
)
from repro.simulation.inhabitants import Inhabitant, Schedule, generate_inhabitants
from repro.simulation.mobility import BuildingWorld
from repro.spatial.model import SpaceType


class TestDBHModel:
    def test_spatial_inventory(self):
        spatial = build_dbh_spatial()
        assert len(spatial.spaces_of_type(SpaceType.FLOOR)) == 6
        assert len(spatial.spaces_of_type(SpaceType.ROOM)) == 120
        spatial.validate()

    def test_meeting_rooms_and_coffee_tagged(self):
        spatial = build_dbh_spatial()
        meeting_rooms = [
            s for s in spatial.spaces_of_type(SpaceType.ROOM)
            if s.attributes.get("meeting_room") == "yes"
        ]
        coffee = [
            s for s in spatial.spaces_of_type(SpaceType.ROOM)
            if s.attributes.get("coffee_machine") == "yes"
        ]
        assert len(meeting_rooms) == 30  # every 4th of 120
        assert len(coffee) == 6  # one per floor

    def test_sensor_inventory_matches_paper(self):
        tippers = make_dbh_tippers(deploy_sensors=False)
        summary = deploy_dbh_sensors(tippers)
        assert summary.by_type["camera"] == CAMERA_COUNT == 40
        assert summary.by_type["wifi_access_point"] == WIFI_AP_COUNT == 60
        assert summary.by_type["bluetooth_beacon"] == BEACON_COUNT == 200
        assert summary.by_type["power_meter"] == POWER_METER_COUNT == 100
        assert summary.by_type["motion_sensor"] == 120
        assert summary.total == tippers.sensor_manager.count()


class TestSchedule:
    def test_in_building(self):
        schedule = Schedule(arrival_hour=9.0, departure_hour=17.0)
        assert schedule.in_building(12.0)
        assert not schedule.in_building(8.0)
        assert not schedule.in_building(17.0)

    def test_lunch_window(self):
        schedule = Schedule(arrival_hour=9.0, departure_hour=17.0, lunch_hour=12.0)
        assert schedule.at_lunch(12.25)
        assert not schedule.at_lunch(13.0)

    def test_invalid_hours(self):
        with pytest.raises(ReproError):
            Schedule(arrival_hour=18.0, departure_hour=9.0)


class TestInhabitants:
    def test_reproducible(self):
        spatial = build_dbh_spatial()
        a = generate_inhabitants(spatial, 20, seed=3)
        b = generate_inhabitants(spatial, 20, seed=3)
        assert [p.user_id for p in a] == [p.user_id for p in b]
        assert [p.profile.office_id for p in a] == [p.profile.office_id for p in b]

    def test_roles_and_offices(self):
        spatial = build_dbh_spatial()
        people = generate_inhabitants(spatial, 60, seed=1)
        roles = {next(iter(p.profile.groups)) for p in people}
        assert roles <= {"faculty", "staff", "grad-student", "undergrad"}
        for person in people:
            role = next(iter(person.profile.groups))
            if role == "undergrad":
                assert person.profile.office_id is None
            else:
                assert person.profile.office_id is not None

    def test_unique_devices(self):
        spatial = build_dbh_spatial()
        people = generate_inhabitants(spatial, 50, seed=1)
        macs = [m for p in people for m in p.profile.device_macs]
        assert len(macs) == len(set(macs))

    def test_negative_count_rejected(self):
        with pytest.raises(ReproError):
            generate_inhabitants(build_dbh_spatial(), -1)


class TestBuildingWorld:
    @pytest.fixture
    def world(self):
        spatial = build_dbh_spatial()
        people = generate_inhabitants(spatial, 10, seed=2)
        return BuildingWorld(spatial, people, seed=2), people

    def test_outside_before_arrival(self, world):
        sim, people = world
        sim.step(3 * 3600.0)  # 3am
        for person in people:
            assert sim.location_of(person.user_id) is None

    def test_office_workers_in_office_midmorning(self, world):
        sim, people = world
        sim.step(10.5 * 3600.0)
        for person in people:
            role = next(iter(person.profile.groups))
            if role in ("staff",) and person.schedule.in_building(10.5):
                loc = sim.location_of(person.user_id)
                office = person.profile.office_id
                assert loc is not None
                # Usually the office; occasionally the corridor.
                assert loc == office or loc.endswith("corridor")

    def test_lunch_gathers_people(self, world):
        sim, people = world
        sim.step(12.1 * 3600.0)
        lunchers = sim.occupants_of(sim.lunch_room)
        expected = [
            p.user_id
            for p in people
            if p.schedule.in_building(12.1) and p.schedule.at_lunch(12.1)
        ]
        # Everyone whose schedule says lunch is there; wanderers (e.g.
        # undergrads drifting between rooms) may join them.
        assert set(expected) <= set(lunchers)

    def test_devices_follow_people(self, world):
        sim, people = world
        sim.step(10.5 * 3600.0)
        person = next(
            p for p in people if sim.location_of(p.user_id) is not None
        )
        space = sim.location_of(person.user_id)
        macs = {d.device_mac for d in sim.devices_in(space)}
        assert person.profile.device_macs[0] in macs

    def test_power_scales_with_occupancy(self, world):
        sim, people = world
        sim.step(10.5 * 3600.0)
        occupied = next(
            s for s in (sim.location_of(p.user_id) for p in people) if s
        )
        assert sim.power_draw_of(occupied) > sim.power_draw_of("dbh-6020")

    def test_hvac_relaxation(self, world):
        sim, _ = world
        room = "dbh-1001"
        sim.set_hvac_setpoint(room, 75.0)
        before = sim.temperature_of(room)
        for i in range(20):
            sim.step(i * 600.0, dt_s=600.0)
        after = sim.temperature_of(room)
        assert abs(after - 75.0) < abs(before - 75.0)

    def test_teleport_and_credentials(self, world):
        sim, people = world
        sim.teleport(people[0].user_id, "dbh-1001")
        assert sim.location_of(people[0].user_id) == "dbh-1001"
        sim.present_credential("dbh-1001", people[0].user_id)
        assert sim.credential_presented("dbh-1001") == "cred:%s" % people[0].user_id
        assert sim.credential_presented("dbh-1001") is None, "consumed"
        with pytest.raises(ReproError):
            sim.teleport("ghost", "dbh-1001")

    def test_motion_after_departure(self, world):
        sim, people = world
        sim.teleport(people[0].user_id, "dbh-1001")
        sim._previous_locations = dict(sim._locations)
        sim.teleport(people[0].user_id, None)
        assert sim.motion_in("dbh-1001"), "motion lingers one tick after leaving"
