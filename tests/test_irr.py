"""Unit tests for the IoT Resource Registry."""

import pytest

from repro.core.language.builder import (
    ResourcePolicyBuilder,
    ServicePolicyBuilder,
    SettingsBuilder,
)
from repro.core.policy.settings import location_settings_space
from repro.errors import NetworkError, RegistryError
from repro.irr.registry import Advertisement, IoTResourceRegistry, discover_registries
from repro.net.bus import MessageBus, RpcError
from repro.spatial.model import build_simple_building


def resource_document(name="Location tracking"):
    return (
        ResourcePolicyBuilder()
        .resource(name)
        .at("Building B", "Building")
        .sensor("wifi_access_point")
        .purpose("emergency_response", "stored continuously")
        .observes("location")
        .retain("P6M")
        .build()
    )


def service_document(service_id="concierge"):
    return (
        ServicePolicyBuilder(service_id)
        .observes("location")
        .purpose("providing_service", "directions")
        .build()
    )


@pytest.fixture
def spatial():
    return build_simple_building("b", 2, 4)


@pytest.fixture
def registry(spatial):
    return IoTResourceRegistry("irr-1", spatial)


class TestPublication:
    def test_publish_resource(self, registry):
        ad = registry.publish_resource("ad-1", "b", resource_document())
        assert len(registry) == 1
        assert ad.resource_document().resources[0].name == "Location tracking"

    def test_publish_service_with_settings(self, registry):
        ad = registry.publish_service(
            "ad-2",
            "b",
            service_document(),
            settings=location_settings_space().to_document(),
        )
        assert ad.settings_document() is not None
        assert ad.service_document().service_id == "concierge"

    def test_duplicate_id_rejected(self, registry):
        registry.publish_resource("ad-1", "b", resource_document())
        with pytest.raises(RegistryError):
            registry.publish_resource("ad-1", "b", resource_document())

    def test_unknown_coverage_space_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.publish_resource("ad-1", "atlantis", resource_document())

    def test_withdraw(self, registry):
        registry.publish_resource("ad-1", "b", resource_document())
        registry.withdraw("ad-1")
        assert len(registry) == 0
        with pytest.raises(RegistryError):
            registry.withdraw("ad-1")

    def test_wrong_kind_accessors(self, registry):
        ad = registry.publish_resource("ad-1", "b", resource_document())
        with pytest.raises(RegistryError):
            ad.service_document()

    def test_bad_kind_rejected(self):
        with pytest.raises(RegistryError):
            Advertisement("x", "weird", "b", {})


class TestDiscovery:
    def test_building_ad_visible_from_any_room(self, registry):
        registry.publish_resource("ad-1", "b", resource_document())
        found = registry.discover("b-1001")
        assert [a.advertisement_id for a in found] == ["ad-1"]

    def test_room_ad_visible_from_that_room_only(self, registry):
        registry.publish_resource("ad-1", "b-1001", resource_document())
        assert registry.discover("b-1001")
        assert registry.discover("b-2003") == []

    def test_neighboring_room_sees_ad(self, registry, spatial):
        from repro.spatial.model import SpaceType

        registry.publish_resource("ad-1", "b-1001", resource_document())
        # Find an actual neighbor of b-1001 in the generated layout.
        neighbors = [
            s.space_id
            for s in spatial.spaces_of_type(SpaceType.ROOM)
            if spatial.neighboring("b-1001", s.space_id)
        ]
        assert neighbors, "layout should give b-1001 at least one neighbor"
        assert registry.discover(neighbors[0])

    def test_unknown_space_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.discover("atlantis")

    def test_discover_registries_helper(self, registry, spatial):
        other = IoTResourceRegistry("irr-2", spatial)
        other.publish_service("ad-s", "b", service_document())
        registry.publish_resource("ad-r", "b", resource_document())
        results = discover_registries([registry, other], "b-1001")
        assert set(results) == {"irr-1", "irr-2"}

    def test_discover_registries_skips_empty(self, registry, spatial):
        empty = IoTResourceRegistry("irr-empty", spatial)
        registry.publish_resource("ad-r", "b", resource_document())
        results = discover_registries([registry, empty], "b-1001")
        assert set(results) == {"irr-1"}


class TestBusEndpoint:
    def test_discover_over_wire(self, registry):
        registry.publish_resource("ad-1", "b", resource_document())
        bus = MessageBus()
        bus.register("irr-1", registry)
        response = bus.call("irr-1", "discover", {"space_id": "b-1001"})
        assert response["registry_id"] == "irr-1"
        assert response["advertisements"][0]["kind"] == "resource"

    def test_missing_space_id_is_error(self, registry):
        bus = MessageBus()
        bus.register("irr-1", registry)
        with pytest.raises(RpcError):
            bus.call("irr-1", "discover", {})

    def test_unknown_method(self, registry):
        bus = MessageBus()
        bus.register("irr-1", registry)
        with pytest.raises(RpcError):
            bus.call("irr-1", "explode", {})
