"""Unit tests for the effect preview."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel
from repro.core.policy import catalog
from repro.core.policy.base import DecisionPhase, Effect
from repro.errors import PolicyError
from repro.tippers.preview import preview_effects


class TestPreview:
    def test_no_preferences_reflects_policies(self, tippers):
        preview = preview_effects(tippers.engine, "mary", "b-1001", 43200.0)
        capture = preview.entry(DataCategory.LOCATION, DecisionPhase.CAPTURE)
        assert capture.effect is Effect.ALLOW, "emergency policy authorizes capture"
        sharing = preview.entry(DataCategory.LOCATION, DecisionPhase.SHARING)
        assert sharing.effect is Effect.ALLOW, "service-sharing policy authorizes"
        ties = preview.entry(DataCategory.SOCIAL_TIES, DecisionPhase.SHARING)
        assert ties.effect is Effect.DENY, "nothing authorizes social ties"

    def test_optout_shows_partial_honouring(self, tippers):
        """The paper's 'partially met' case: capture continues under the
        mandatory policy (flagged as overridden), sharing is blocked."""
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        preview = preview_effects(tippers.engine, "mary", "b-1001", 43200.0)
        capture = preview.entry(DataCategory.LOCATION, DecisionPhase.CAPTURE)
        assert capture.effect is Effect.ALLOW
        assert capture.overridden, "mandatory emergency policy prevails"
        sharing = preview.entry(DataCategory.LOCATION, DecisionPhase.SHARING)
        assert sharing.effect is Effect.DENY
        assert not sharing.overridden

    def test_overridden_and_blocked_views(self, tippers):
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        preview = preview_effects(tippers.engine, "mary", "b-1001", 43200.0)
        assert any(
            e.category is DataCategory.LOCATION for e in preview.overridden_entries()
        )
        assert any(
            e.category is DataCategory.LOCATION and e.phase is DecisionPhase.SHARING
            for e in preview.blocked_entries()
        )

    def test_preview_is_user_specific(self, tippers):
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        mary = preview_effects(tippers.engine, "mary", "b-1001", 43200.0)
        bob = preview_effects(tippers.engine, "bob", "b-1002", 43200.0)
        assert mary.entry(DataCategory.LOCATION, DecisionPhase.SHARING).effect is Effect.DENY
        assert bob.entry(DataCategory.LOCATION, DecisionPhase.SHARING).effect is Effect.ALLOW

    def test_preview_does_not_pollute_audit(self, tippers):
        before = len(tippers.audit)
        preview_effects(tippers.engine, "mary", "b-1001", 43200.0)
        assert len(tippers.audit) == before

    def test_granularity_cap_visible(self, tippers):
        from repro.core.policy.preference import UserPreference

        tippers.submit_preference(
            UserPreference(
                preference_id="cap",
                user_id="mary",
                description="coarse sharing",
                effect=Effect.ALLOW,
                categories=(DataCategory.LOCATION,),
                phases=(DecisionPhase.SHARING,),
                granularity_cap=GranularityLevel.COARSE,
            )
        )
        preview = preview_effects(tippers.engine, "mary", "b-1001", 43200.0)
        sharing = preview.entry(DataCategory.LOCATION, DecisionPhase.SHARING)
        assert sharing.effect is Effect.ALLOW
        assert sharing.granularity is GranularityLevel.COARSE

    def test_summary_lines_render(self, tippers):
        preview = preview_effects(tippers.engine, "mary", "b-1001", 43200.0)
        lines = preview.summary_lines()
        assert len(lines) == len(preview.entries)
        assert any("location/sharing" in line for line in lines)

    def test_empty_user_rejected(self, tippers):
        with pytest.raises(PolicyError):
            preview_effects(tippers.engine, "", "b-1001", 0.0)

    def test_unknown_cell_raises(self, tippers):
        preview = preview_effects(
            tippers.engine, "mary", "b-1001", 0.0,
            categories=(DataCategory.LOCATION,),
        )
        with pytest.raises(KeyError):
            preview.entry(DataCategory.ENERGY_USE, DecisionPhase.SHARING)
