"""Unit tests for the stepped-population capacity soak harness.

The soak's contract has two halves: (1) same-seed runs serialize
byte-identically (reports carry only deterministic quantities, never
wall clocks), and (2) the default configuration finds a meaningful max
sustainable population -- the 10k step holds, the 100k step breaks the
latency ceiling, and the 1M step additionally breaks the memory
ceiling.
"""

import dataclasses
import json

import pytest

from repro.simulation.longrun import (
    CapacitySoakReport,
    SOAK_POPULATIONS,
    SoakStepReport,
    run_capacity_soak,
    run_week,
)


def _canonical(report) -> str:
    return json.dumps(dataclasses.asdict(report), sort_keys=True)


@pytest.fixture(scope="module")
def soak():
    return run_capacity_soak(populations=(1000, 10000, 100000), ticks=3)


class TestCapacitySoak:
    def test_every_population_produces_a_step(self, soak):
        assert [step.population for step in soak.steps] == [
            1000, 10000, 100000,
        ]

    def test_active_cohort_is_capped(self, soak):
        for step in soak.steps:
            assert step.active_principals == min(
                step.population, soak.active_cap
            )
            assert step.phantom_per_call == (
                step.population // step.active_principals - 1
            )

    def test_ledger_balances_per_step(self, soak):
        for step in soak.steps:
            assert step.checked == step.admitted + step.shed
            assert step.normal_shed <= step.normal_attempted
            assert step.deferrable_shed <= step.deferrable_attempted

    def test_critical_is_never_shed(self, soak):
        for step in soak.steps:
            assert step.critical_shed == 0

    def test_small_populations_sustain_and_large_do_not(self, soak):
        by_population = {step.population: step for step in soak.steps}
        assert by_population[1000].sustainable
        assert by_population[10000].sustainable
        overloaded = by_population[100000]
        assert not overloaded.sustainable
        assert "latency-ceiling" in overloaded.limits_exceeded
        assert soak.max_sustainable_population == 10000

    def test_durability_and_decisions_ran(self, soak):
        for step in soak.steps:
            assert step.wal_bytes > 0
            assert step.decisions > 0
            assert step.modeled_p99_latency_us > 0.0

    def test_report_round_trips_through_json(self, soak):
        payload = json.loads(json.dumps(soak.to_dict(), sort_keys=True))
        assert payload["max_sustainable_population"] == 10000
        assert len(payload["steps"]) == len(soak.steps)

    def test_report_text_names_the_answer(self, soak):
        assert "max sustainable population: 10000" in soak.report_text()

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            run_capacity_soak(populations=())
        with pytest.raises(ValueError):
            run_capacity_soak(populations=(0,))
        with pytest.raises(ValueError):
            run_capacity_soak(populations=(10,), ticks=0)
        with pytest.raises(ValueError):
            run_capacity_soak(populations=(10,), active_cap=0)


class TestDeterminism:
    def test_same_seed_soaks_are_byte_identical(self):
        a = run_capacity_soak(populations=(500, 5000), ticks=2, seed=23)
        b = run_capacity_soak(populations=(500, 5000), ticks=2, seed=23)
        assert _canonical(a) == _canonical(b)
        assert a.report_text() == b.report_text()

    def test_different_seeds_may_differ_but_stay_valid(self):
        a = run_capacity_soak(populations=(500,), ticks=2, seed=1)
        b = run_capacity_soak(populations=(500,), ticks=2, seed=2)
        for report in (a, b):
            assert report.steps[0].checked > 0

    @pytest.mark.slow
    def test_same_seed_weeks_are_byte_identical(self):
        a = run_week(days=1, population=8, ticks_per_day=6, seed=3)
        b = run_week(days=1, population=8, ticks_per_day=6, seed=3)
        assert _canonical(a) == _canonical(b)

    def test_default_populations_are_stepped(self):
        assert SOAK_POPULATIONS == (1000, 10000, 100000, 1000000)
        assert list(SOAK_POPULATIONS) == sorted(SOAK_POPULATIONS)


class TestCostTable:
    def test_pinned_table_matches_its_source_record(self):
        # The defaults claim to be derived from the committed
        # BENCH_0002; re-derive and compare, so a trajectory rewrite
        # cannot silently diverge from the model.
        import os

        from repro.bench import list_records
        from repro.bench.runner import load_record
        from repro.simulation.costmodel import (
            COST_TABLE_SOURCE_RECORD_ID,
            DEFAULT_COST_TABLE,
            cost_table_from_record,
        )

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = dict(list_records(root))
        record = load_record(paths[COST_TABLE_SOURCE_RECORD_ID])
        assert cost_table_from_record(record) == DEFAULT_COST_TABLE

    def test_latency_model_prices_each_component(self):
        from repro.simulation.costmodel import CostTable

        table = CostTable(
            us_per_decision=10.0, us_per_rule=0.5, us_per_queued_call=2.0
        )
        assert table.modeled_p99_latency_us(4, 3) == 18.0
        assert table.modeled_p99_latency_us(0, 0) == 10.0

    def test_memory_model_extrapolates_by_phantom_ratio(self):
        from repro.simulation.costmodel import CostTable

        table = CostTable(
            principal_state_bytes=100, observation_state_bytes=10
        )
        assert table.modeled_state_bytes(
            population=5, wal_bytes=50, stored_observations=3, phantom_ratio=2
        ) == 5 * 100 + 2 * (50 + 3 * 10)

    def test_negative_costs_rejected(self):
        from repro.simulation.costmodel import CostTable

        with pytest.raises(ValueError):
            CostTable(us_per_rule=-0.1)

    def test_soak_accepts_a_custom_table(self):
        from repro.simulation.costmodel import CostTable

        cheap = run_capacity_soak(
            populations=(1000,),
            ticks=2,
            cost_table=CostTable(
                us_per_decision=0.0,
                us_per_rule=0.0,
                us_per_queued_call=0.0,
            ),
        )
        assert cheap.steps[0].modeled_p99_latency_us == 0.0
