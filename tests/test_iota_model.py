"""Unit tests for the preference learner."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.errors import PolicyError
from repro.iota.personas import PERSONAS, generate_decisions
from repro.iota.preference_model import (
    FEATURE_NAMES,
    DataPractice,
    LabeledDecision,
    PreferenceModel,
)


def practice(**overrides):
    defaults = dict(
        category=DataCategory.LOCATION,
        purpose=Purpose.PROVIDING_SERVICE,
        granularity=GranularityLevel.PRECISE,
        retention_days=30.0,
        third_party=False,
    )
    defaults.update(overrides)
    return DataPractice(**defaults)


class TestFeatures:
    def test_feature_vector_shape_and_range(self):
        features = practice().features()
        assert len(features) == len(FEATURE_NAMES)
        assert all(0.0 <= f <= 1.0 for f in features)

    def test_third_party_sets_sharing_feature(self):
        shared = practice(third_party=True).features()
        local = practice().features()
        index = FEATURE_NAMES.index("shared_beyond_building")
        assert shared[index] == 1.0
        assert local[index] == 0.0

    def test_granularity_scales_feature(self):
        fine = practice(granularity=GranularityLevel.PRECISE).features()
        coarse = practice(granularity=GranularityLevel.COARSE).features()
        index = FEATURE_NAMES.index("granularity")
        assert fine[index] > coarse[index]


class TestPrior:
    def test_untrained_model_is_protective(self):
        model = PreferenceModel()
        risky = practice(
            category=DataCategory.IDENTITY,
            purpose=Purpose.MARKETING,
            third_party=True,
        )
        benign = practice(
            category=DataCategory.TEMPERATURE,
            purpose=Purpose.COMFORT,
            granularity=GranularityLevel.AGGREGATE,
        )
        assert model.comfort(risky) < 0.5
        assert model.comfort(benign) > 0.5

    def test_comfort_in_unit_interval(self):
        model = PreferenceModel()
        assert 0.0 <= model.comfort(practice()) <= 1.0


class TestTraining:
    @pytest.mark.parametrize("persona_name", sorted(PERSONAS))
    def test_learns_each_persona(self, persona_name):
        persona = PERSONAS[persona_name]
        train = generate_decisions(persona, 250, seed=1, noise=0.0)
        test = generate_decisions(persona, 100, seed=2, noise=0.0)
        model = PreferenceModel().fit(train)
        assert model.accuracy(test) >= 0.75

    def test_fit_on_empty_is_noop(self):
        model = PreferenceModel()
        before = list(model.weights)
        model.fit([])
        assert model.weights == before
        assert model.trained_on == 0

    def test_online_update_moves_prediction(self):
        model = PreferenceModel()
        target = practice(category=DataCategory.IDENTITY, purpose=Purpose.MARKETING, third_party=True)
        before = model.comfort(target)
        for _ in range(20):
            model.update(LabeledDecision(practice=target, allowed=True))
        assert model.comfort(target) > before

    def test_invalid_hyperparameters(self):
        with pytest.raises(PolicyError):
            PreferenceModel(learning_rate=0)
        with pytest.raises(PolicyError):
            PreferenceModel(epochs=0)

    def test_accuracy_on_empty_rejected(self):
        with pytest.raises(PolicyError):
            PreferenceModel().accuracy([])

    def test_deterministic_training(self):
        decisions = generate_decisions(PERSONAS["pragmatist"], 100, seed=5)
        a = PreferenceModel().fit(decisions)
        b = PreferenceModel().fit(decisions)
        assert a.weights == b.weights
        assert a.bias == b.bias


class TestPreferredGranularity:
    def test_unconcerned_picks_finest(self):
        model = PreferenceModel().fit(
            generate_decisions(PERSONAS["unconcerned"], 250, seed=1, noise=0.0)
        )
        choice = model.preferred_granularity(
            DataCategory.LOCATION,
            Purpose.PROVIDING_SERVICE,
            [GranularityLevel.PRECISE, GranularityLevel.COARSE, GranularityLevel.NONE],
        )
        assert choice is GranularityLevel.PRECISE

    def test_fundamentalist_picks_strictest(self):
        model = PreferenceModel().fit(
            generate_decisions(PERSONAS["fundamentalist"], 250, seed=1, noise=0.0)
        )
        choice = model.preferred_granularity(
            DataCategory.LOCATION,
            Purpose.PROVIDING_SERVICE,
            [GranularityLevel.PRECISE, GranularityLevel.COARSE, GranularityLevel.NONE],
        )
        assert choice is GranularityLevel.NONE

    def test_empty_offering_rejected(self):
        with pytest.raises(PolicyError):
            PreferenceModel().preferred_granularity(
                DataCategory.LOCATION, Purpose.PROVIDING_SERVICE, []
            )

    def test_explain_names_every_feature(self):
        explanation = PreferenceModel().explain()
        for name in FEATURE_NAMES:
            assert name in explanation
        assert "bias" in explanation
