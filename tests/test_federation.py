"""Unit tests for the federation layer: ring, router, campus, DSAR.

The roaming edge cases at the bottom are the interesting half: a
handoff *during* a policy-fetch outage at the visited shard (the
enforcement path must fail closed while the control plane keeps
working), a re-entry that resumes a partially-completed preference
re-push without double-pushing, and a handoff into a building whose
access point is quarantined.
"""

import json

import pytest

from repro.core.policy import catalog
from repro.errors import FederationError, NetworkError
from repro.faults import FaultInjector, FaultKind, FaultSpec, single_spec_plan
from repro.federation import (
    Campus,
    FederationRouter,
    HashRing,
    REGISTRY_ENDPOINT_PREFIX,
    SHARD_ENDPOINT_PREFIX,
    campus_access_report,
    campus_erase_subject,
)
from repro.iota.assistant import IoTAssistant
from repro.obs.metrics import MetricsRegistry
from repro.simulation.inhabitants import generate_inhabitants
from repro.simulation.mobility import BuildingWorld
from repro.spatial.model import SpaceType
from repro.users.profile import profile_to_dict

BUILDINGS = ("bldg-a", "bldg-b")
NOON = 12 * 3600.0


def _campus(storage_root=None, **kwargs):
    kwargs.setdefault("floors", 1)
    kwargs.setdefault("rooms_per_floor", 2)
    return Campus(
        BUILDINGS,
        seed=11,
        metrics=MetricsRegistry(),
        storage_root=storage_root,
        **kwargs
    )


def _user_homed_at(campus, building_id, skip=0):
    """A deterministic user id whose ring home is ``building_id``."""
    found = 0
    for index in range(512):
        user_id = "fed-user-%03d" % index
        if campus.router.home_building(user_id) != building_id:
            continue
        if found == skip:
            return user_id
        found += 1
    raise AssertionError("no user hashes to %s" % building_id)


def _resident(campus, building_id, skip=0):
    """Generate one inhabitant and register them at their ring home."""
    user_id = _user_homed_at(campus, building_id, skip=skip)
    shard = campus.shard(building_id)
    inhabitant = generate_inhabitants(
        shard.spatial, 1, seed=5, building_id=building_id, user_ids=[user_id]
    )[0]
    campus.add_resident(building_id, inhabitant.profile)
    return inhabitant


def _rooms(shard):
    return sorted(
        s.space_id for s in shard.spatial.spaces_of_type(SpaceType.ROOM)
    )


def _observe(campus, shard, inhabitant, room, now, visitor=False):
    """Capture one observation of ``inhabitant`` inside ``shard``."""
    if visitor:
        world = BuildingWorld(shard.spatial, [], seed=3)
        world.add_visitor(inhabitant)
    else:
        world = BuildingWorld(shard.spatial, [inhabitant], seed=3)
    world.teleport(inhabitant.user_id, room)
    shard.tippers.tick(now, world)
    campus.record_presence(inhabitant.user_id, shard.building_id)


def _locate(campus, building_id, subject_id, now):
    return campus.router.call_building(
        building_id,
        "locate_user",
        {
            "requester_id": "svc-occupancy",
            "requester_kind": "building_service",
            "subject_id": subject_id,
            "now": now,
        },
        principal="svc-occupancy",
    )


def _assistant(campus, inhabitant):
    home = campus.home_of[inhabitant.user_id]
    shard = campus.shard(home)
    return IoTAssistant(
        inhabitant.user_id,
        campus.bus,
        tippers_endpoint=shard.endpoint,
        registry_endpoints=[shard.registry_endpoint],
        metrics=campus.metrics,
    )


def _roam(campus, assistant, inhabitant, building_id, now=NOON):
    shard = campus.shard(building_id)
    return assistant.roam_to(
        shard.endpoint,
        shard.registry_endpoint,
        profile_to_dict(inhabitant.profile),
        campus.home_of[inhabitant.user_id],
        _rooms(shard)[0],
        now,
    )


class TestHashRing:
    def test_placement_is_a_pure_function_of_nodes_and_vnodes(self):
        keys = ["user-%03d" % i for i in range(64)]
        a = HashRing(("b1", "b2", "b3"), vnodes=16)
        b = HashRing(("b3", "b1", "b2"), vnodes=16)  # order must not matter
        assert a.nodes() == b.nodes() == ("b1", "b2", "b3")
        assert a.assignments(keys) == b.assignments(keys)

    def test_every_node_owns_a_share_of_a_large_keyspace(self):
        ring = HashRing(("b1", "b2", "b3", "b4"))
        owners = {ring.node_for("user-%04d" % i) for i in range(400)}
        assert owners == {"b1", "b2", "b3", "b4"}

    def test_adding_a_node_only_moves_keys_onto_the_new_node(self):
        keys = ["user-%04d" % i for i in range(300)]
        before = HashRing(("b1", "b2", "b3")).assignments(keys)
        after = HashRing(("b1", "b2", "b3", "b4")).assignments(keys)
        moved = [key for key in keys if before[key] != after[key]]
        assert moved, "a new node should take over some keys"
        assert all(after[key] == "b4" for key in moved)

    def test_rejects_degenerate_configurations(self):
        with pytest.raises(FederationError):
            HashRing(())
        with pytest.raises(FederationError):
            HashRing(("b1", "b1"))
        with pytest.raises(FederationError):
            HashRing(("b1",), vnodes=0)


class TestFederationRouter:
    def test_endpoints_follow_the_naming_contract(self):
        campus = _campus()
        assert campus.router.shard_endpoint("bldg-a") == (
            SHARD_ENDPOINT_PREFIX + "bldg-a"
        )
        assert campus.router.registry_endpoint("bldg-b") == (
            REGISTRY_ENDPOINT_PREFIX + "bldg-b"
        )
        with pytest.raises(FederationError):
            campus.router.shard_endpoint("bldg-z")
        with pytest.raises(FederationError):
            campus.router.registry_endpoint("bldg-z")

    def test_home_building_is_the_ring_choice(self):
        campus = _campus()
        for index in range(32):
            user_id = "user-%02d" % index
            assert campus.router.home_building(user_id) == (
                campus.router.ring.node_for(user_id)
            )

    def test_call_building_reaches_the_named_shard(self):
        campus = _campus()
        for building_id in BUILDINGS:
            document = campus.router.call_building(
                building_id, "get_policy_document", {}
            )
            text = json.dumps(document, sort_keys=True)
            assert building_id.upper() in text
            other = [b for b in BUILDINGS if b != building_id][0]
            assert other.upper() not in text

    def test_call_home_routes_by_principal(self):
        campus = _campus()
        user_id = _user_homed_at(campus, "bldg-b")
        document = campus.router.call_home(user_id, "get_policy_document", {})
        assert "BLDG-B" in json.dumps(document, sort_keys=True)

    def test_rejects_an_empty_federation(self):
        campus = _campus()
        with pytest.raises(FederationError):
            FederationRouter(campus.bus, ())


class TestCampus:
    def test_rejects_duplicate_building_ids(self):
        with pytest.raises(FederationError):
            Campus(("bldg-a", "bldg-a"), metrics=MetricsRegistry())

    def test_residents_must_live_at_their_ring_home(self):
        campus = _campus()
        inhabitant = _resident(campus, "bldg-a")
        assert campus.home_of[inhabitant.user_id] == "bldg-a"
        assert campus.profile_of(inhabitant.user_id) is inhabitant.profile
        assert inhabitant.profile in campus.shard("bldg-a").residents

        stray_id = _user_homed_at(campus, "bldg-b")
        shard_b = campus.shard("bldg-b")
        stray = generate_inhabitants(
            shard_b.spatial, 1, seed=7, building_id="bldg-b",
            user_ids=[stray_id],
        )[0]
        with pytest.raises(FederationError):
            campus.add_resident("bldg-a", stray.profile)

    def test_unknown_lookups_raise(self):
        campus = _campus()
        with pytest.raises(FederationError):
            campus.shard("bldg-z")
        with pytest.raises(FederationError):
            campus.profile_of("nobody")
        with pytest.raises(FederationError):
            campus.record_presence("anyone", "bldg-z")

    def test_presence_ledger_is_sorted_and_deduplicated(self):
        campus = _campus()
        campus.record_presence("u1", "bldg-b")
        campus.record_presence("u1", "bldg-a")
        campus.record_presence("u1", "bldg-b")
        assert campus.buildings_observing("u1") == ("bldg-a", "bldg-b")
        assert campus.buildings_observing("u2") == ()

    def test_a_dark_shard_fails_calls_instead_of_queueing(self):
        campus = _campus()
        campus.mark_down("bldg-a")
        with pytest.raises(NetworkError):
            campus.router.call_building("bldg-a", "get_policy_document", {})
        # The sibling shard is untouched.
        campus.router.call_building("bldg-b", "get_policy_document", {})

    def test_recovery_requires_storage(self):
        campus = _campus()
        campus.mark_down("bldg-a")
        with pytest.raises(FederationError):
            campus.recover_shard("bldg-a", NOON)


class TestCrashRecovery:
    def test_recovered_shard_replays_and_rejoins(self, tmp_path):
        campus = _campus(storage_root=str(tmp_path))
        shard_a = campus.shard("bldg-a")
        inhabitant = _resident(campus, "bldg-a")
        _observe(campus, shard_a, inhabitant, _rooms(shard_a)[0], NOON)
        before = campus.router.call_building(
            "bldg-a", "dsar_report",
            {"user_id": inhabitant.user_id, "now": NOON},
        )
        assert before["observations_total"] > 0

        campus.mark_down("bldg-a")
        with pytest.raises(NetworkError):
            _locate(campus, "bldg-a", inhabitant.user_id, NOON)

        report = campus.recover_shard("bldg-a", NOON)
        assert report.frames_replayed > 0
        assert not campus.shard("bldg-a").down
        after = campus.router.call_building(
            "bldg-a", "dsar_report",
            {"user_id": inhabitant.user_id, "now": NOON},
        )
        assert after["observations_total"] == before["observations_total"]

    def test_recovery_reseeds_visitors_as_roaming(self, tmp_path):
        campus = _campus(storage_root=str(tmp_path))
        shard_a = campus.shard("bldg-a")
        visitor = _resident(campus, "bldg-b")
        shard_a.tippers.register_roaming_user(visitor.profile, "bldg-b")
        _observe(
            campus, shard_a, visitor, _rooms(shard_a)[0], NOON, visitor=True
        )
        campus.mark_down("bldg-a")
        campus.recover_shard("bldg-a", NOON)
        rebuilt = campus.shard("bldg-a").tippers
        assert rebuilt.roaming_home_of(visitor.user_id) == "bldg-b"


class TestCampusDSAR:
    def _well_travelled(self, campus):
        """One bldg-a resident observed in both buildings."""
        inhabitant = _resident(campus, "bldg-a")
        shard_a = campus.shard("bldg-a")
        shard_b = campus.shard("bldg-b")
        shard_b.tippers.register_roaming_user(inhabitant.profile, "bldg-a")
        _observe(campus, shard_a, inhabitant, _rooms(shard_a)[0], NOON)
        _observe(
            campus, shard_b, inhabitant, _rooms(shard_b)[0], NOON + 60.0,
            visitor=True,
        )
        return inhabitant

    def test_access_report_fans_out_to_every_observing_shard(self):
        campus = _campus()
        inhabitant = self._well_travelled(campus)
        report = campus_access_report(campus, inhabitant.user_id, NOON + 120.0)
        assert report.home_building == "bldg-a"
        assert report.buildings == ("bldg-a", "bldg-b")
        assert set(report.per_building) == {"bldg-a", "bldg-b"}
        assert all(
            counts["observations"] > 0
            for counts in report.per_building.values()
        )
        assert report.observations_total == sum(
            counts["observations"] for counts in report.per_building.values()
        )
        assert report.unreachable == ()

    def test_erasure_is_campus_wide_and_idempotent(self):
        campus = _campus()
        inhabitant = self._well_travelled(campus)
        now = NOON + 120.0
        access = campus_access_report(campus, inhabitant.user_id, now)
        receipt = campus_erase_subject(campus, inhabitant.user_id, now)
        assert receipt.buildings == ("bldg-a", "bldg-b")
        assert receipt.erased_observations == access.observations_total
        again = campus_erase_subject(campus, inhabitant.user_id, now + 60.0)
        assert again.erased_observations == 0

    def test_fanout_always_includes_the_home_shard(self):
        campus = _campus()
        inhabitant = _resident(campus, "bldg-a")
        # Never observed anywhere: preferences still live at home.
        report = campus_access_report(campus, inhabitant.user_id, NOON)
        assert report.buildings == ("bldg-a",)

    def test_dark_shards_are_reported_unreachable(self):
        campus = _campus()
        inhabitant = self._well_travelled(campus)
        campus.mark_down("bldg-b")
        report = campus_access_report(campus, inhabitant.user_id, NOON + 120.0)
        assert report.unreachable == ("bldg-b",)
        assert set(report.per_building) == {"bldg-a"}


class TestRoamingHandoff:
    def test_handoff_registers_and_marks_visited_decisions(self):
        campus = _campus()
        inhabitant = _resident(campus, "bldg-a")
        assistant = _assistant(campus, inhabitant)
        shard_b = campus.shard("bldg-b")

        result = _roam(campus, assistant, inhabitant, "bldg-b")
        assert result.newly_added
        assert not result.re_entry
        assert shard_b.tippers.roaming_home_of(inhabitant.user_id) == "bldg-a"

        _observe(
            campus, shard_b, inhabitant, _rooms(shard_b)[0], NOON,
            visitor=True,
        )
        response = _locate(campus, "bldg-b", inhabitant.user_id, NOON)
        assert response["allowed"]
        assert response["location"] is not None
        assert any(
            reason.startswith("roaming:bldg-a")
            for reason in response["reasons"]
        )

    def test_returning_home_clears_the_roaming_mark(self):
        campus = _campus()
        inhabitant = _resident(campus, "bldg-a")
        assistant = _assistant(campus, inhabitant)
        _roam(campus, assistant, inhabitant, "bldg-b")
        home = _roam(campus, assistant, inhabitant, "bldg-a")
        assert not home.newly_added  # already a local resident
        assert campus.shard("bldg-a").tippers.roaming_home_of(
            inhabitant.user_id
        ) is None
        back = _roam(campus, assistant, inhabitant, "bldg-b")
        assert back.re_entry


class _PartialOutageShard:
    """Wraps a real shard: submits beyond a budget fail while ``outage``.

    Everything else passes straight through, so registration and
    discovery keep working while preference re-pushes fail -- the shape
    of a shard whose preference store is briefly unavailable.
    """

    def __init__(self, inner, allow_submits=1):
        self._inner = inner
        self.outage = True
        self.remaining = allow_submits
        self.accepted = []

    def handle(self, method, payload):
        if method == "submit_preference":
            if self.outage and self.remaining <= 0:
                raise NetworkError("injected preference-store outage")
            self.remaining -= 1
            self.accepted.append(payload["preference"]["preference_id"])
        return self._inner.handle(method, payload)


class TestRoamingEdgeCases:
    def test_handoff_during_policy_fetch_outage_fails_closed(self):
        """The control plane hands off; the data plane denies, closed."""
        campus = _campus()
        inhabitant = _resident(campus, "bldg-a")
        assistant = _assistant(campus, inhabitant)
        shard_b = campus.shard("bldg-b")

        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.POLICY_FETCH_FAIL))
        )
        injector.install_policy_store(shard_b.tippers.store)
        try:
            # Registration is campus metadata, not a policy decision:
            # the handoff itself must survive the outage.
            result = _roam(campus, assistant, inhabitant, "bldg-b")
            assert result.newly_added
            response = _locate(campus, "bldg-b", inhabitant.user_id, NOON)
            assert response["allowed"] is False
            assert response["location"] is None
            assert any(
                "fail-closed" in reason for reason in response["reasons"]
            )
        finally:
            injector.uninstall()
        # Outage over: the same question is no longer failed closed.
        recovered = _locate(campus, "bldg-b", inhabitant.user_id, NOON)
        assert not any(
            "fail-closed" in reason for reason in recovered["reasons"]
        )

    def test_reentry_resumes_a_partial_preference_repush(self):
        campus = _campus()
        inhabitant = _resident(campus, "bldg-a")
        assistant = _assistant(campus, inhabitant)
        assistant.submit_preference(
            catalog.preference_2_no_location(inhabitant.user_id)
        )
        office = _rooms(campus.shard("bldg-a"))[0]
        assistant.submit_preference(
            catalog.preference_1_office_after_hours(
                inhabitant.user_id, office
            )
        )

        shard_b = campus.shard("bldg-b")
        wrapper = _PartialOutageShard(shard_b.tippers, allow_submits=1)
        campus.bus.unregister(shard_b.endpoint)
        campus.bus.register(shard_b.endpoint, wrapper)

        first = _roam(campus, assistant, inhabitant, "bldg-b")
        assert first.preferences_pushed == 1
        assert first.preferences_pending == 1
        assert len(wrapper.accepted) == 1

        wrapper.outage = False
        second = _roam(campus, assistant, inhabitant, "bldg-b")
        assert second.re_entry
        # Only the preference the shard never acknowledged is re-sent.
        assert second.preferences_pushed == 1
        assert second.preferences_pending == 0
        assert len(wrapper.accepted) == 2
        assert len(set(wrapper.accepted)) == 2

        third = _roam(campus, assistant, inhabitant, "bldg-b")
        assert third.preferences_pushed == 0
        assert len(wrapper.accepted) == 2  # never double-pushed

    def test_roaming_into_a_building_with_a_quarantined_sensor(self):
        campus = _campus()
        shard_b = campus.shard("bldg-b")
        injector = FaultInjector(
            single_spec_plan(
                FaultSpec(kind=FaultKind.SENSOR_STALL, target="ap-01")
            )
        )
        injector.install_sensor_manager(shard_b.tippers.sensor_manager)
        try:
            empty = BuildingWorld(shard_b.spatial, [], seed=3)
            for tick in range(3):
                shard_b.tippers.tick(NOON + 60.0 * tick, empty)
            assert "ap-01" in shard_b.supervisor.quarantined()

            inhabitant = _resident(campus, "bldg-a")
            assistant = _assistant(campus, inhabitant)
            result = _roam(campus, assistant, inhabitant, "bldg-b")
            assert result.newly_added

            # The healthy access point still captures the roamer.
            now = NOON + 600.0
            _observe(
                campus, shard_b, inhabitant, _rooms(shard_b)[1], now,
                visitor=True,
            )
            response = _locate(campus, "bldg-b", inhabitant.user_id, now)
            assert response["allowed"]
            assert response["location"] is not None
            assert any(
                reason.startswith("roaming:bldg-a")
                for reason in response["reasons"]
            )
        finally:
            injector.uninstall()
