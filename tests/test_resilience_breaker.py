"""CircuitBreaker / BreakerBoard state machine and bus integration."""

import pytest

from repro.errors import CircuitOpenError, NetworkError
from repro.faults import FaultInjector, FaultKind, FaultSpec, single_spec_plan
from repro.net.bus import MessageBus, RpcError
from repro.net.resilience import BreakerBoard, CircuitBreaker
from repro.obs.metrics import MetricsRegistry


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_rejections=0)

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.times_opened == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_cooldown_is_counted_in_rejections_not_time(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_rejections=3)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert not breaker.allow()
        assert not breaker.allow()  # third rejection reaches the cooldown
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # half-open admits the trial call

    def test_half_open_trial_outcomes(self):
        def tripped():
            breaker = CircuitBreaker(failure_threshold=1, cooldown_rejections=1)
            breaker.record_failure()
            breaker.allow()
            assert breaker.state == CircuitBreaker.HALF_OPEN
            return breaker

        healed = tripped()
        healed.record_success()
        assert healed.state == CircuitBreaker.CLOSED

        still_down = tripped()
        still_down.record_failure()
        assert still_down.state == CircuitBreaker.OPEN
        assert still_down.times_opened == 2


class TestBreakerBoard:
    def test_breakers_are_lazy_and_per_target(self):
        board = BreakerBoard(failure_threshold=1)
        board.record_failure("irr-1")
        assert board.states() == {"irr-1": CircuitBreaker.OPEN}
        board.check("tippers")  # untouched target stays closed
        with pytest.raises(CircuitOpenError):
            board.check("irr-1")
        assert board.open_targets() == ("irr-1",)


class TestBusBreakerIntegration:
    def make_bus(self, **board_kwargs):
        metrics = MetricsRegistry()
        bus = MessageBus(metrics=metrics, breakers=BreakerBoard(**board_kwargs))
        bus.register_handler("echo", lambda method, payload: {"ok": True})
        return bus, metrics

    def test_open_breaker_rejects_before_logical_call(self):
        bus, metrics = self.make_bus(failure_threshold=2, cooldown_rejections=4)
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.CRASH, target="echo", stop=2))
        )
        injector.install_bus(bus)
        for _ in range(2):
            with pytest.raises(NetworkError):
                bus.call("echo", "ping")
        assert bus.breakers.states()["echo"] == CircuitBreaker.OPEN

        with pytest.raises(CircuitOpenError):
            bus.call("echo", "ping")
        assert bus.stats.rejected == 1
        assert bus.stats.logical_calls == 2  # the rejected call never counted
        assert bus.stats.calls == bus.stats.logical_calls + bus.stats.retries
        assert metrics.total("bus_breaker_rejected_total", {"target": "echo"}) == 1

    def test_breaker_recovers_through_half_open(self):
        bus, _ = self.make_bus(failure_threshold=1, cooldown_rejections=2)
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.CRASH, target="echo", stop=1))
        )
        injector.install_bus(bus)
        with pytest.raises(NetworkError):
            bus.call("echo", "ping")  # trips the breaker
        for _ in range(2):
            with pytest.raises(CircuitOpenError):
                bus.call("echo", "ping")  # cooldown rejections
        # Half-open now; the endpoint restarted at step 1, so the trial
        # succeeds and closes the breaker.
        assert bus.call("echo", "ping") == {"ok": True}
        assert bus.breakers.states()["echo"] == CircuitBreaker.CLOSED

    def test_rpc_error_counts_as_breaker_success(self):
        def failing_handler(method, payload):
            raise NetworkError("application says no")

        bus, _ = self.make_bus(failure_threshold=1)
        bus.register_handler("grumpy", failing_handler)
        for _ in range(3):
            with pytest.raises(RpcError):
                bus.call("grumpy", "ping")
        # The endpoint answered each time: the transport is healthy and
        # the breaker must stay closed.
        assert bus.breakers.states()["grumpy"] == CircuitBreaker.CLOSED
