"""Unit tests for settings spaces."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel
from repro.core.policy.base import DecisionPhase, Effect
from repro.core.policy.settings import (
    SettingChoice,
    SettingGroup,
    SettingsSpace,
    location_settings_space,
)
from repro.errors import PolicyError


def choice(key, granularity, category=DataCategory.LOCATION):
    return SettingChoice(
        key=key,
        description=key,
        category=category,
        granularity=granularity,
        actuation="x=%s" % key,
    )


@pytest.fixture
def group():
    return SettingGroup(
        group_id="location",
        category=DataCategory.LOCATION,
        choices=(
            choice("fine", GranularityLevel.PRECISE),
            choice("coarse", GranularityLevel.COARSE),
            choice("off", GranularityLevel.NONE),
        ),
        default_key="coarse",
    )


class TestSettingGroup:
    def test_default(self, group):
        assert group.default.key == "coarse"

    def test_unknown_default_rejected(self):
        with pytest.raises(PolicyError):
            SettingGroup(
                group_id="g",
                category=DataCategory.LOCATION,
                choices=(choice("a", GranularityLevel.PRECISE),),
                default_key="z",
            )

    def test_empty_choices_rejected(self):
        with pytest.raises(PolicyError):
            SettingGroup(
                group_id="g",
                category=DataCategory.LOCATION,
                choices=(),
                default_key="a",
            )

    def test_strictest_and_most_permissive(self, group):
        assert group.strictest().key == "off"
        assert group.most_permissive().key == "fine"

    def test_best_at_most(self, group):
        assert group.best_at_most(GranularityLevel.PRECISE).key == "fine"
        assert group.best_at_most(GranularityLevel.COARSE).key == "coarse"
        assert group.best_at_most(GranularityLevel.BUILDING).key == "off"

    def test_best_at_most_falls_back_to_strictest(self):
        fine_only = SettingGroup(
            group_id="g",
            category=DataCategory.LOCATION,
            choices=(choice("fine", GranularityLevel.PRECISE),
                     choice("coarse", GranularityLevel.COARSE)),
            default_key="fine",
        )
        assert fine_only.best_at_most(GranularityLevel.NONE).key == "coarse"


class TestSettingsSpace:
    def test_duplicate_group_rejected(self, group):
        with pytest.raises(PolicyError):
            SettingsSpace([group, group])

    def test_default_selection(self, group):
        space = SettingsSpace([group])
        assert space.default_selection() == {"location": "coarse"}

    def test_validate_selection(self, group):
        space = SettingsSpace([group])
        space.validate_selection({"location": "off"})
        with pytest.raises(PolicyError):
            space.validate_selection({"location": "nope"})
        with pytest.raises(PolicyError):
            space.validate_selection({"ghost": "off"})

    def test_document_round_trip(self):
        space = location_settings_space()
        document = space.to_document()
        restored = SettingsSpace.from_document(document)
        assert restored.group_ids() == space.group_ids()
        assert {c.key for c in restored.group("location").choices} == {
            "fine",
            "coarse",
            "off",
        }

    def test_selection_to_preferences_deny_for_none(self, group):
        space = SettingsSpace([group])
        prefs = space.selection_to_preferences("mary", {"location": "off"})
        assert len(prefs) == 1
        assert prefs[0].effect is Effect.DENY
        assert prefs[0].user_id == "mary"
        assert DecisionPhase.CAPTURE in prefs[0].phases

    def test_selection_to_preferences_caps_for_coarse(self, group):
        space = SettingsSpace([group])
        prefs = space.selection_to_preferences("mary", {"location": "coarse"})
        assert prefs[0].effect is Effect.ALLOW
        assert prefs[0].granularity_cap is GranularityLevel.COARSE

    def test_location_settings_space_matches_figure4(self):
        space = location_settings_space()
        data = space.to_document().to_dict()
        descriptions = [opt["description"] for opt in data["settings"][0]["select"]]
        assert descriptions == [
            "fine grained location sensing",
            "coarse grained location sensing",
            "No location sensing",
        ]
        assert data["settings"][0]["select"][2]["on"] == "wifi=opt-out"
