"""Unit tests for repro.sensors.base."""

import pytest

from repro.errors import SensorError
from repro.sensors.base import Observation, Sensor, SensorSettings
from repro.sensors.ontology import CAMERA, TEMPERATURE, WIFI_AP


class TestObservation:
    def test_create_assigns_unique_ids(self):
        a = Observation.create("s1", "camera", 1.0, "r1", {})
        b = Observation.create("s1", "camera", 1.0, "r1", {})
        assert a.observation_id != b.observation_id

    def test_with_payload_preserves_identity(self):
        obs = Observation.create("s1", "camera", 1.0, "r1", {"x": 1})
        redone = obs.with_payload({"x": 2}, granularity="coarse")
        assert redone.observation_id == obs.observation_id
        assert redone.payload == {"x": 2}
        assert redone.granularity == "coarse"
        assert obs.payload == {"x": 1}, "original untouched"

    def test_to_dict_round_trip_fields(self):
        obs = Observation.create("s1", "camera", 2.5, "r1", {"k": "v"}, subject_id="u1")
        data = obs.to_dict()
        assert data["sensor_id"] == "s1"
        assert data["subject_id"] == "u1"
        assert data["payload"] == {"k": "v"}
        assert data["granularity"] == "precise"


class TestSensorSettings:
    def test_defaults_applied(self):
        settings = SensorSettings(CAMERA)
        assert settings.get("capture_fps") == 5.0

    def test_overrides_validated(self):
        with pytest.raises(SensorError):
            SensorSettings(CAMERA, {"capture_fps": 1000.0})

    def test_update_atomic(self):
        settings = SensorSettings(CAMERA)
        with pytest.raises(SensorError):
            settings.update({"capture_fps": 10.0, "resolution": "8k"})
        # The valid half must not have been applied.
        assert settings.get("capture_fps") == 5.0

    def test_unknown_parameter_get(self):
        settings = SensorSettings(CAMERA)
        with pytest.raises(SensorError):
            settings.get("zoom")

    def test_equality_on_type_and_values(self):
        assert SensorSettings(CAMERA) == SensorSettings(CAMERA)
        a = SensorSettings(CAMERA)
        a.set("capture_fps", 10.0)
        assert a != SensorSettings(CAMERA)
        assert SensorSettings(CAMERA) != SensorSettings(TEMPERATURE)


class TestSensor:
    def test_empty_id_rejected(self):
        with pytest.raises(SensorError):
            Sensor("", WIFI_AP, "r1")

    def test_actuate_changes_settings(self):
        sensor = Sensor("s1", CAMERA, "r1")
        sensor.actuate({"recording": "off"})
        assert sensor.settings.get("recording") == "off"

    def test_make_observation_rejects_undeclared_fields(self):
        sensor = Sensor("s1", CAMERA, "r1")
        with pytest.raises(SensorError):
            sensor.make_observation(1.0, {"not_a_field": 1})

    def test_make_observation_stamps_location_and_type(self):
        sensor = Sensor("s1", CAMERA, "r9")
        obs = sensor.make_observation(3.0, {"motion_score": 0.5})
        assert obs.space_id == "r9"
        assert obs.sensor_type == "camera"
        assert obs.timestamp == 3.0

    def test_enable_disable(self):
        sensor = Sensor("s1", CAMERA, "r1")
        sensor.disable()
        assert not sensor.enabled
        sensor.enable()
        assert sensor.enabled

    def test_base_sample_returns_nothing(self):
        assert Sensor("s1", CAMERA, "r1").sample(0.0, object()) == []
