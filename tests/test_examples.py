"""Smoke tests: every example script must run and print its story.

Each example is executed in a subprocess (so import side effects and
``__main__`` guards behave exactly as for a user) and checked for the
key line that proves its scenario played out.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", "after opt-out: False"),
    ("figure1_walkthrough.py", "DENIED"),
    ("personalized_assistant.py", "fundamentalist"),
    ("inference_attack.py", "de-identified"),
    ("smart_services.py", "DELIVERED"),
    ("building_admin_toolkit.py", "shadowed-policy"),
]


@pytest.mark.parametrize("script,marker", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, marker):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout
