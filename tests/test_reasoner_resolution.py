"""Unit tests for conflict resolution strategies."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.preference import UserPreference
from repro.core.reasoner.matcher import MatchResult
from repro.core.reasoner.resolution import Resolution, ResolutionStrategy, resolve


def request(granularity=GranularityLevel.PRECISE) -> DataRequest:
    return DataRequest(
        requester_id="svc",
        requester_kind=RequesterKind.BUILDING_SERVICE,
        phase=DecisionPhase.SHARING,
        category=DataCategory.LOCATION,
        subject_id="mary",
        space_id="r1",
        timestamp=0.0,
        purpose=Purpose.PROVIDING_SERVICE,
        granularity=granularity,
    )


def policy(pid="p", effect=Effect.ALLOW, granularity=GranularityLevel.PRECISE, mandatory=False):
    return BuildingPolicy(
        policy_id=pid,
        name=pid,
        description="d",
        effect=effect,
        granularity=granularity,
        mandatory=mandatory,
        phases=(DecisionPhase.SHARING,),
    )


def preference(pid="f", effect=Effect.DENY, cap=GranularityLevel.PRECISE):
    return UserPreference(
        preference_id=pid,
        user_id="mary",
        description="d",
        effect=effect,
        granularity_cap=cap,
        phases=(DecisionPhase.SHARING,),
    )


def match(policies=(), preferences=(), granularity=GranularityLevel.PRECISE):
    return MatchResult(
        request=request(granularity),
        policies=list(policies),
        preferences=list(preferences),
    )


ALL_STRATEGIES = list(ResolutionStrategy)


class TestUniversalInvariants:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_denying_policy_always_denies(self, strategy):
        result = resolve(
            match([policy("deny", effect=Effect.DENY), policy("allow")]), strategy
        )
        assert result.effect is Effect.DENY

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_no_authorization_denies(self, strategy):
        result = resolve(match([]), strategy)
        assert result.effect is Effect.DENY
        assert "no building policy" in result.reasons[0]

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_grant_never_finer_than_requested(self, strategy):
        result = resolve(
            match([policy()], granularity=GranularityLevel.COARSE), strategy
        )
        if result.allowed:
            assert result.granularity.rank <= GranularityLevel.COARSE.rank

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_grant_never_finer_than_policy(self, strategy):
        result = resolve(
            match([policy(granularity=GranularityLevel.BUILDING)]), strategy
        )
        if result.allowed:
            assert result.granularity.rank <= GranularityLevel.BUILDING.rank


class TestNegotiate:
    def test_plain_allow(self):
        result = resolve(match([policy()]))
        assert result.allowed
        assert result.granularity is GranularityLevel.PRECISE
        assert not result.notify_user

    def test_user_optout_honoured(self):
        result = resolve(match([policy()], [preference()]))
        assert result.effect is Effect.DENY
        assert not result.notify_user

    def test_mandatory_overrides_optout_with_notification(self):
        result = resolve(match([policy(mandatory=True)], [preference()]))
        assert result.allowed
        assert result.notify_user

    def test_granularity_negotiated_down(self):
        result = resolve(
            match([policy()], [preference(effect=Effect.ALLOW, cap=GranularityLevel.COARSE)])
        )
        assert result.allowed
        assert result.granularity is GranularityLevel.COARSE
        assert result.degraded

    def test_strictest_cap_across_preferences(self):
        prefs = [
            preference("f1", effect=Effect.ALLOW, cap=GranularityLevel.COARSE),
            preference("f2", effect=Effect.ALLOW, cap=GranularityLevel.BUILDING),
        ]
        result = resolve(match([policy()], prefs))
        assert result.granularity is GranularityLevel.BUILDING

    def test_cap_of_none_denies(self):
        result = resolve(
            match([policy()], [preference(effect=Effect.ALLOW, cap=GranularityLevel.NONE)])
        )
        assert result.effect is Effect.DENY


class TestBuildingWins:
    def test_overrides_optout_and_notifies(self):
        result = resolve(
            match([policy()], [preference()]), ResolutionStrategy.BUILDING_WINS
        )
        assert result.allowed
        assert result.granularity is GranularityLevel.PRECISE
        assert result.notify_user

    def test_no_notification_without_objection(self):
        result = resolve(match([policy()]), ResolutionStrategy.BUILDING_WINS)
        assert result.allowed and not result.notify_user


class TestUserWins:
    def test_optout_beats_mandatory(self):
        result = resolve(
            match([policy(mandatory=True)], [preference()]),
            ResolutionStrategy.USER_WINS,
        )
        assert result.effect is Effect.DENY

    def test_cap_applied(self):
        result = resolve(
            match([policy()], [preference(effect=Effect.ALLOW, cap=GranularityLevel.AGGREGATE)]),
            ResolutionStrategy.USER_WINS,
        )
        assert result.allowed
        assert result.granularity is GranularityLevel.AGGREGATE


class TestResolutionMetadata:
    def test_rule_ids_recorded(self):
        result = resolve(match([policy("p9")], [preference("f9", effect=Effect.ALLOW)]))
        assert result.policy_ids == ("p9",)
        assert result.preference_ids == ("f9",)

    def test_reasons_non_empty(self):
        for strategy in ALL_STRATEGIES:
            result = resolve(match([policy()], [preference()]), strategy)
            assert result.reasons
