"""Unit tests for subject access and erasure."""

import pytest

from repro.core.policy import catalog
from repro.core.policy.base import RequesterKind
from repro.errors import PolicyError
from repro.tippers.dsar import erase_subject, subject_access_report


def populate(tippers, world, ticks=3):
    world.put("mary", "aa:bb:cc:00:00:01", "b-1001")
    for tick in range(ticks):
        tippers.tick(43200.0 + tick * 61.0, world)
    return 43200.0 + ticks * 61.0


class TestSubjectAccessReport:
    def test_counts_stored_observations(self, tippers, world):
        now = populate(tippers, world)
        report = subject_access_report(tippers, "mary", now)
        assert report.observations_total > 0
        assert "wifi_access_point" in report.observations_by_stream
        assert report.earliest_observation <= report.latest_observation

    def test_counts_decisions(self, tippers, world):
        now = populate(tippers, world)
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        tippers.locate_user("concierge", RequesterKind.BUILDING_SERVICE, "mary", now)
        report = subject_access_report(tippers, "mary", now + 1)
        assert report.decisions_total > 0
        assert report.decisions_denied >= 1

    def test_lists_preferences_and_conflicts(self, tippers, world):
        now = populate(tippers, world)
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        report = subject_access_report(tippers, "mary", now)
        assert report.preferences == ("pref-2-mary-location",)
        assert report.conflicts, "opt-out conflicts with the mandatory policy"

    def test_covering_policies_listed(self, tippers):
        report = subject_access_report(tippers, "mary", 0.0)
        assert "policy-2-emergency" in report.covering_policies

    def test_unknown_user_rejected(self, tippers):
        with pytest.raises(PolicyError):
            subject_access_report(tippers, "ghost", 0.0)

    def test_summary_lines_render(self, tippers, world):
        now = populate(tippers, world)
        report = subject_access_report(tippers, "mary", now)
        lines = report.summary_lines()
        assert any("stored observations" in line for line in lines)
        assert any("mary" in line for line in lines)

    def test_empty_report_for_unseen_user(self, tippers):
        report = subject_access_report(tippers, "bob", 0.0)
        assert report.observations_total == 0
        assert report.earliest_observation is None


class TestErasure:
    def test_observations_deleted(self, tippers, world):
        now = populate(tippers, world)
        before = subject_access_report(tippers, "mary", now)
        receipt = erase_subject(tippers, "mary", now)
        assert receipt.erased_observations == before.observations_total
        after = subject_access_report(tippers, "mary", now + 1)
        assert after.observations_total == 0

    def test_other_users_untouched(self, tippers, world):
        world.put("mary", "aa:bb:cc:00:00:01", "b-1001")
        world.put("bob", "aa:bb:cc:00:00:02", "b-1002")
        tippers.tick(43200.0, world)
        erase_subject(tippers, "mary", 43300.0)
        bob_report = subject_access_report(tippers, "bob", 43400.0)
        assert bob_report.observations_total > 0

    def test_preferences_kept_by_default(self, tippers, world):
        now = populate(tippers, world)
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        receipt = erase_subject(tippers, "mary", now)
        assert receipt.withdrawn_preferences == 0
        assert tippers.preference_manager.preferences_of("mary")

    def test_preferences_withdrawn_on_request(self, tippers, world):
        now = populate(tippers, world)
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        receipt = erase_subject(tippers, "mary", now, withdraw_preferences=True)
        assert receipt.withdrawn_preferences == 1
        assert tippers.preference_manager.preferences_of("mary") == []

    def test_erasure_is_audited(self, tippers, world):
        now = populate(tippers, world)
        erase_subject(tippers, "mary", now)
        records = tippers.audit.records(
            subject_id="mary", predicate=lambda r: r.category == "erasure"
        )
        assert len(records) == 1
        assert "erasure" in records[0].reasons[0]

    def test_unknown_user_rejected(self, tippers):
        with pytest.raises(PolicyError):
            erase_subject(tippers, "ghost", 0.0)

    def test_erasure_idempotent(self, tippers, world):
        now = populate(tippers, world)
        erase_subject(tippers, "mary", now)
        second = erase_subject(tippers, "mary", now + 1)
        assert second.erased_observations == 0
