"""Unit tests for the request manager (sharing path)."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import DecisionPhase, Effect, RequesterKind
from repro.core.policy.preference import UserPreference
from repro.errors import ServiceError

SVC = ("concierge", RequesterKind.BUILDING_SERVICE)


def occupy(tippers, world, person, mac, space, now=43200.0, ticks=1):
    """Place a person and run capture so the building knows about it."""
    world.put(person, mac, space)
    for i in range(ticks):
        tippers.tick(now + i * 61.0, world)
    return now + ticks * 61.0


class TestLocateUser:
    def test_allowed_and_precise(self, tippers, world):
        now = occupy(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1001")
        response = tippers.request_manager.locate_user(*SVC, "mary", now)
        assert response.allowed
        assert response.value.space_id == "b-1001"
        assert response.granularity is GranularityLevel.PRECISE

    def test_unknown_user_rejected(self, tippers):
        with pytest.raises(ServiceError):
            tippers.request_manager.locate_user(*SVC, "ghost", 0.0)

    def test_optout_denies_before_data_access(self, tippers, world):
        now = occupy(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1001")
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        response = tippers.request_manager.locate_user(*SVC, "mary", now + 1)
        assert not response.allowed
        assert response.value is None

    def test_granularity_cap_coarsens_release(self, tippers, world):
        now = occupy(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1001")
        tippers.submit_preference(
            UserPreference(
                preference_id="cap",
                user_id="mary",
                description="floor only",
                effect=Effect.ALLOW,
                categories=(DataCategory.LOCATION,),
                phases=(DecisionPhase.SHARING,),
                granularity_cap=GranularityLevel.COARSE,
            )
        )
        response = tippers.request_manager.locate_user(*SVC, "mary", now + 1)
        assert response.allowed
        assert response.value.space_id == "b-f1", "room coarsened to floor"
        assert response.granularity is GranularityLevel.COARSE

    def test_not_locatable_user_allowed_but_empty(self, tippers):
        response = tippers.request_manager.locate_user(*SVC, "bob", 43200.0)
        assert response.allowed
        assert response.value is None


class TestRoomOccupancy:
    def test_occupied_office(self, tippers, world):
        now = occupy(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1001")
        response = tippers.request_manager.room_occupancy(*SVC, "b-1001", now)
        assert response.allowed
        assert response.value is True

    def test_empty_office(self, tippers):
        response = tippers.request_manager.room_occupancy(*SVC, "b-1001", 43200.0)
        assert response.allowed
        assert response.value is False

    def test_unknown_space_rejected(self, tippers):
        with pytest.raises(ServiceError):
            tippers.request_manager.room_occupancy(*SVC, "atlantis", 0.0)

    def test_preference1_blocks_after_hours(self, tippers, world):
        tippers.submit_preference(
            catalog.preference_1_office_after_hours("mary", "b-1001")
        )
        evening = 20 * 3600.0
        world.put("mary", "aa:bb:cc:00:00:01", "b-1001")
        tippers.tick(evening, world)
        blocked = tippers.request_manager.room_occupancy(*SVC, "b-1001", evening + 60)
        assert not blocked.allowed
        # At noon the same query is fine.
        noon = 12 * 3600.0 + 86400.0
        allowed = tippers.request_manager.room_occupancy(*SVC, "b-1001", noon)
        assert allowed.allowed

    def test_office_owner_resolution(self, tippers):
        assert tippers.request_manager.office_owner("b-1001") == "mary"
        assert tippers.request_manager.office_owner("b-2004") is None


class TestPeopleInSpace:
    def test_released_subject_to_preferences(self, tippers, world):
        now = 43200.0
        world.put("mary", "aa:bb:cc:00:00:01", "b-1001")
        world.put("bob", "aa:bb:cc:00:00:02", "b-1001")
        tippers.tick(now, world)
        tippers.submit_preference(
            UserPreference(
                preference_id="hide-bob",
                user_id="bob",
                description="hide presence",
                effect=Effect.DENY,
                categories=(DataCategory.PRESENCE,),
                phases=(DecisionPhase.SHARING,),
            )
        )
        response = tippers.request_manager.people_in_space(*SVC, "b-1001", now + 60)
        assert response.allowed
        assert response.value == ["mary"], "bob's presence withheld"


class TestOccupancyHeatmap:
    def test_small_groups_suppressed(self, tippers, world):
        now = 43200.0
        for index in range(3):
            mac = "aa:bb:cc:00:00:0%d" % (index + 1)
            user = ["mary", "bob"][index] if index < 2 else None
            if index == 2:
                from repro.users.profile import UserProfile

                tippers.add_user(
                    UserProfile(user_id="carol", name="Carol", device_macs=(mac,))
                )
                user = "carol"
            world.put(user, mac, "b-1001")
        world.put("nobody-known", "ff:ff:ff:ff:ff:ff", "b-1002")
        tippers.tick(now, world)
        response = tippers.request_manager.occupancy_heatmap(
            *SVC, now + 60, purpose=Purpose.ENERGY_MANAGEMENT, k=3
        )
        assert response.allowed
        assert response.value == {"b-1001": 3}, "k=3 suppresses the lone device"

    def test_denied_without_authorizing_policy(self, tippers):
        # Remove the sharing policy that covers occupancy aggregates.
        tippers.store.remove_policy("policy-service-sharing")
        response = tippers.request_manager.occupancy_heatmap(*SVC, 43200.0)
        assert not response.allowed

    def test_noisy_heatmap_is_perturbed_and_seeded(self, tippers, world):
        import random

        now = 43200.0
        for index, user in enumerate(("mary", "bob")):
            world.put(user, "aa:bb:cc:00:00:0%d" % (index + 1), "b-1001")
        tippers.tick(now, world)
        a = tippers.request_manager.occupancy_heatmap(
            *SVC, now + 60, k=1, epsilon=1.0, rng=random.Random(7)
        )
        b = tippers.request_manager.occupancy_heatmap(
            *SVC, now + 60, k=1, epsilon=1.0, rng=random.Random(7)
        )
        assert a.allowed and b.allowed
        assert a.value == b.value, "seeded noise is reproducible"
        assert any("laplace" in reason for reason in a.reasons)
        exact = tippers.request_manager.occupancy_heatmap(*SVC, now + 60, k=1)
        assert set(a.value) == set(exact.value)
        assert isinstance(list(a.value.values())[0], float)


class TestEventDetails:
    def setup_event(self, tippers):
        tippers.define_policy(catalog.policy_4_event_disclosure("b-1004"))
        tippers.policy_manager.register_event("icdcs", "b-1004")
        tippers.policy_manager.register_participant("icdcs", "mary")

    def test_unregistered_user_denied(self, tippers):
        self.setup_event(tippers)
        response = tippers.request_manager.event_details(
            *SVC, "icdcs", "bob", 43200.0
        )
        assert not response.allowed
        assert "not registered" in response.reasons[0]

    def test_registered_but_far_denied(self, tippers, world):
        self.setup_event(tippers)
        now = occupy(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-2002")
        response = tippers.request_manager.event_details(*SVC, "icdcs", "mary", now)
        assert not response.allowed
        assert "not nearby" in response.reasons[0]

    def test_registered_and_nearby_allowed(self, tippers, world):
        self.setup_event(tippers)
        # b-1002 is on the same floor as the event room b-1004.
        now = occupy(tippers, world, "mary", "aa:bb:cc:00:00:01", "b-1002")
        response = tippers.request_manager.event_details(*SVC, "icdcs", "mary", now)
        assert response.allowed
        assert response.value["space_id"] == "b-1004"

    def test_unlocatable_user_denied(self, tippers):
        self.setup_event(tippers)
        response = tippers.request_manager.event_details(
            *SVC, "icdcs", "mary", 43200.0
        )
        assert not response.allowed
