"""Unit tests for the caching enforcement engine."""

import pytest

from repro.core.enforcement.cache import CachingEnforcementEngine
from repro.core.enforcement.engine import EnforcementEngine
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.conditions import EvaluationContext, TemporalCondition
from repro.core.policy.preference import UserPreference
from repro.spatial.model import build_simple_building


def request(timestamp=100.0, subject="mary", **overrides):
    defaults = dict(
        requester_id="concierge",
        requester_kind=RequesterKind.BUILDING_SERVICE,
        phase=DecisionPhase.SHARING,
        category=DataCategory.LOCATION,
        subject_id=subject,
        space_id="b-1001",
        timestamp=timestamp,
        purpose=Purpose.PROVIDING_SERVICE,
    )
    defaults.update(overrides)
    return DataRequest(**defaults)


@pytest.fixture
def engine():
    spatial = build_simple_building("b", 2, 4)
    engine = CachingEnforcementEngine(context=EvaluationContext(spatial=spatial))
    engine.store.add_policy(catalog.policy_service_sharing("b"))
    return engine


class TestCaching:
    def test_repeat_requests_hit(self, engine):
        a = engine.decide(request(timestamp=100.0))
        b = engine.decide(request(timestamp=200.0))
        assert a.resolution == b.resolution
        assert engine.hits == 1
        assert engine.misses == 1

    def test_different_subjects_miss(self, engine):
        engine.decide(request(subject="mary"))
        engine.decide(request(subject="bob"))
        assert engine.hits == 0
        assert engine.misses == 2

    def test_cached_decisions_still_audited(self, engine):
        engine.decide(request(timestamp=100.0))
        engine.decide(request(timestamp=200.0))
        assert len(engine.audit) == 2

    def test_preference_submission_invalidates(self, engine):
        before = engine.decide(request())
        assert before.allowed
        engine.store.add_preference(catalog.preference_2_no_location("mary"))
        after = engine.decide(request(timestamp=300.0))
        assert not after.allowed, "new preference takes effect immediately"

    def test_policy_removal_invalidates(self, engine):
        assert engine.decide(request()).allowed
        engine.store.remove_policy("policy-service-sharing")
        assert not engine.decide(request(timestamp=300.0)).allowed

    def test_time_sensitive_rules_not_cached(self, engine):
        engine.store.add_preference(
            catalog.preference_1_office_after_hours("mary", "b-1001")
        )
        noon = engine.decide(
            request(
                timestamp=12 * 3600.0, category=DataCategory.OCCUPANCY
            )
        )
        evening = engine.decide(
            request(
                timestamp=20 * 3600.0, category=DataCategory.OCCUPANCY
            )
        )
        assert noon.allowed
        assert not evening.allowed, "temporal preference must be re-evaluated"
        assert engine.uncacheable >= 2

    def test_equivalence_with_uncached_engine(self, engine):
        spatial = build_simple_building("b", 2, 4)
        plain = EnforcementEngine(context=EvaluationContext(spatial=spatial))
        plain.store.add_policy(catalog.policy_service_sharing("b"))
        plain.store.add_preference(
            catalog.preference_1_office_after_hours("mary", "b-1001")
        )
        engine.store.add_preference(
            catalog.preference_1_office_after_hours("mary", "b-1001")
        )
        for hour in (8, 12, 19, 23):
            for category in (DataCategory.LOCATION, DataCategory.OCCUPANCY):
                for _ in range(2):  # second pass exercises cache hits
                    req = request(timestamp=hour * 3600.0, category=category)
                    assert (
                        engine.decide(req).resolution == plain.decide(req).resolution
                    )

    def test_capacity_eviction(self):
        spatial = build_simple_building("b", 2, 4)
        engine = CachingEnforcementEngine(
            context=EvaluationContext(spatial=spatial), cache_capacity=2
        )
        engine.store.add_policy(catalog.policy_service_sharing("b"))
        for index in range(5):
            engine.decide(request(subject="user-%d" % index))
        assert engine.cache_size <= 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CachingEnforcementEngine(cache_capacity=0)

    def test_capture_path_equivalence(self):
        """A cached engine on the capture path stores the same set of
        observations as a plain engine."""
        from repro.core.policy import catalog as cat
        from repro.tippers.datastore import Datastore
        from repro.tippers.sensor_manager import SensorManager
        from repro.users.profile import UserDirectory, UserProfile
        from tests.conftest import StaticWorld

        def build(engine_cls):
            spatial = build_simple_building("b", 2, 4)
            engine = engine_cls(context=EvaluationContext(spatial=spatial))
            engine.store.add_policy(cat.policy_2_emergency_location("b"))
            directory = UserDirectory()
            directory.add(UserProfile(user_id="mary", name="M", device_macs=("aa:bb",)))
            datastore = Datastore()
            manager = SensorManager(engine, datastore, directory=directory)
            manager.deploy("wifi_access_point", "ap-1", "b-1001", {"log_interval_s": 1.0})
            manager.deploy("camera", "cam-1", "b-f1-corridor")
            return manager, datastore

        world = StaticWorld()
        world.put("mary", "aa:bb", "b-1001")
        plain_mgr, plain_ds = build(EnforcementEngine)
        cached_mgr, cached_ds = build(CachingEnforcementEngine)
        for tick in range(5):
            plain_mgr.tick(float(tick * 2), world)
            cached_mgr.tick(float(tick * 2), world)
        assert plain_ds.count() == cached_ds.count()
        assert plain_mgr.stats.dropped_capture == cached_mgr.stats.dropped_capture
        assert cached_mgr._engine.hits > 0, "repeated capture must hit the cache"

    def test_stats_shape(self, engine):
        engine.decide(request())
        engine.decide(request(timestamp=999.0))
        stats = engine.cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert 0.0 <= stats["hit_rate"] <= 1.0
        assert stats["size"] == 1


class TestCompiledBrownoutBypass:
    """The compiled table must honor the same brownout contract as the
    decision cache: noted decisions bypass it in both directions."""

    @pytest.fixture
    def compiled(self):
        from repro.obs.metrics import MetricsRegistry

        spatial = build_simple_building("b", 2, 4)
        engine = EnforcementEngine(
            context=EvaluationContext(spatial=spatial),
            metrics=MetricsRegistry(),
            compiled=True,
        )
        engine.store.add_policy(catalog.policy_service_sharing("b"))
        return engine

    def test_noted_decision_is_never_compiled(self, compiled):
        noted = compiled.decide(request(), notes=("brownout: degraded",))
        assert "brownout: degraded" in noted.resolution.reasons
        assert compiled.table_rows == 0
        assert compiled.hits == 0

    def test_warm_row_never_serves_a_noted_request(self, compiled):
        plain = compiled.decide(request())
        assert compiled.table_rows == 1
        noted = compiled.decide(
            request(timestamp=200.0), notes=("brownout: degraded",)
        )
        assert compiled.hits == 0, "noted decide must not consult the table"
        assert "brownout: degraded" in noted.resolution.reasons
        assert "brownout: degraded" not in plain.resolution.reasons
        again = compiled.decide(request(timestamp=300.0))
        assert compiled.hits == 1
        assert again.resolution == plain.resolution, (
            "the compiled row must not absorb the brownout note"
        )

    def test_time_stable_module_helper_matches_cacheable(self):
        """time_stable (shared by cache and table) is importable from
        the package root and agrees with the caching engine's gate."""
        from repro.core.enforcement import time_stable

        spatial = build_simple_building("b", 2, 4)
        engine = CachingEnforcementEngine(
            context=EvaluationContext(spatial=spatial)
        )
        engine.store.add_policy(catalog.policy_service_sharing("b"))
        engine.store.add_preference(
            catalog.preference_1_office_after_hours("mary", "b-1001")
        )
        stable = request(category=DataCategory.LOCATION)
        unstable = request(category=DataCategory.OCCUPANCY)
        assert time_stable(engine.store, stable)
        assert not time_stable(engine.store, unstable)
        assert engine._cacheable(stable)
        assert not engine._cacheable(unstable)
