"""Unit tests for crash-tolerant shard rebalancing.

The coordinator's two-phase protocol is exercised step by step: a clean
migration moves observations and preferences and flips the campus
metadata, a partitioned finalize leaves the user mid-flight (served
fail-closed through marked forwarding) until a retry converges, a
destination crash right after the import committed resumes through the
replayed WAL journal without re-copying, and a rollback tombstones the
partial copy.  The decommissioning tests pin the satellite behaviours:
breaker eviction on unregister, counted unknown-building rejections,
and the drain-first/empty-first guards.
"""

import pytest

from repro.core.policy import catalog
from repro.errors import FederationError, NetworkError, SimulatedCrash
from repro.faults import FaultInjector, FaultKind, FaultSpec, single_spec_plan
from repro.federation import Campus, RebalanceCoordinator
from repro.net.resilience import BreakerBoard
from repro.obs.metrics import MetricsRegistry
from repro.simulation.inhabitants import generate_inhabitants
from repro.simulation.mobility import BuildingWorld
from repro.spatial.model import SpaceType

BUILDINGS = ("bldg-a", "bldg-b", "bldg-c")
NEW = "bldg-d"
NOON = 12 * 3600.0


def _campus(tmp_path, buildings=BUILDINGS):
    return Campus(
        buildings,
        seed=11,
        metrics=MetricsRegistry(),
        storage_root=str(tmp_path),
        floors=1,
        rooms_per_floor=2,
    )


def _populate(campus, count=30):
    """Residents at their ring homes, each with one noon observation."""
    user_ids = ["reb-user-%03d" % index for index in range(count)]
    by_building = {}
    for user_id in user_ids:
        by_building.setdefault(
            campus.router.home_building(user_id), []
        ).append(user_id)
    for building_id, ids in sorted(by_building.items()):
        shard = campus.shard(building_id)
        people = generate_inhabitants(
            shard.spatial, len(ids), seed=5,
            building_id=building_id, user_ids=ids,
        )
        for person in people:
            campus.add_resident(building_id, person.profile)
        world = BuildingWorld(shard.spatial, people, seed=3)
        world.step(NOON)
        shard.tippers.tick(NOON, world)
        for person in people:
            campus.record_presence(person.user_id, building_id)
    return user_ids


def _join_wave(campus):
    """Add the fourth building; returns the planned join migrations."""
    coordinator = RebalanceCoordinator(campus)
    delta = campus.add_building(NEW)
    migrations = coordinator.plan_for_delta(delta)
    assert migrations, "no key moved when %s joined" % NEW
    return coordinator, migrations


def _stored_subjects(shard):
    return {
        obs.subject_id
        for obs in shard.tippers.datastore.query()
        if obs.subject_id is not None
    }


# ----------------------------------------------------------------------
# The two-phase protocol, clean path
# ----------------------------------------------------------------------
def test_clean_migration_moves_data_and_flips_metadata(tmp_path):
    campus = _campus(tmp_path)
    _populate(campus)
    coordinator, migrations = _join_wave(campus)
    migration = migrations[0]
    source = campus.shard(migration.source)
    assert migration.user_id in _stored_subjects(source)

    outcome = coordinator.migrate(migration)

    assert outcome.status == "completed"
    assert outcome.observations_moved > 0
    dest = campus.shard(NEW)
    assert migration.user_id in _stored_subjects(dest)
    assert migration.user_id not in _stored_subjects(source)
    assert campus.home_of[migration.user_id] == NEW
    assert migration.user_id in {p.user_id for p in dest.residents}
    assert campus.router.migration_of(migration.user_id) is None
    campus.close()


def test_migrate_twice_returns_the_cached_outcome(tmp_path):
    campus = _campus(tmp_path)
    _populate(campus)
    coordinator, migrations = _join_wave(campus)
    first = coordinator.migrate(migrations[0])
    again = coordinator.migrate(migrations[0])
    assert again is first
    assert coordinator.stats["completed"] == 1
    campus.close()


def test_preferences_travel_with_the_migration(tmp_path):
    campus = _campus(tmp_path)
    _populate(campus)
    coordinator, migrations = _join_wave(campus)
    migration = migrations[0]
    profile = campus.profile_of(migration.user_id)
    office = profile.office_id or "%s-1001" % migration.source
    source = campus.shard(migration.source)
    source.tippers.preference_manager.submit(
        catalog.preference_1_office_after_hours(migration.user_id, office)
    )

    outcome = coordinator.migrate(migration)

    assert outcome.preferences_moved >= 1
    dest = campus.shard(NEW)
    assert dest.tippers.preference_manager.preferences_of(migration.user_id)
    campus.close()


# ----------------------------------------------------------------------
# Partitioned finalize: mid-flight, marked forwarding, retry converges
# ----------------------------------------------------------------------
def _partition_at(step, start=0, stop=None):
    return single_spec_plan(
        FaultSpec(
            kind=FaultKind.CUTOVER_PARTITION,
            target=step,
            start=start,
            stop=stop if stop is not None else start + 1,
        )
    )


def test_partitioned_finalize_stays_pending_then_retries(tmp_path):
    campus = _campus(tmp_path)
    _populate(campus)
    coordinator, migrations = _join_wave(campus)
    migration = migrations[0]
    # The first migration's consults land on steps 0 (copy), 1
    # (import acknowledgement), 2 (finalize).
    injector = FaultInjector(_partition_at("finalize", start=2))
    injector.install_rebalancer(coordinator)
    try:
        outcome = coordinator.migrate(migration)
        assert outcome.status == "partitioned"
        assert coordinator.pending()
        # Mid-flight: routed calls are forwarded to the destination
        # with the migrating marker on the decision.
        assert campus.router.migration_of(migration.user_id) == (
            migration.source, NEW,
        )
        response = campus.router.call_home(
            migration.user_id,
            "locate_user",
            {
                "requester_id": "svc-occupancy",
                "requester_kind": "building_service",
                "subject_id": migration.user_id,
                "now": NOON,
            },
            principal="svc-occupancy",
        )
        marker = "migrating:%s:%s" % (migration.source, NEW)
        assert any(r.startswith(marker) for r in response["reasons"])
        dest = campus.shard(NEW)
        marked = [
            record for record in dest.tippers.audit
            if any(r.startswith(marker) for r in record.reasons)
        ]
        assert marked, "forwarded decision missing from the audit trail"

        retried = coordinator.retry_pending()
    finally:
        injector.uninstall()
    assert [o.status for o in retried] == ["completed"]
    assert not coordinator.pending()
    assert campus.home_of[migration.user_id] == NEW
    assert campus.router.migration_of(migration.user_id) is None
    campus.close()


def test_unmarked_forwarding_is_impossible_by_construction(tmp_path):
    """Every forwarded call carries the marker: the router injects it
    into the payload before the destination ever sees the request, so
    a forwarded-but-unmarked decision cannot be produced."""
    campus = _campus(tmp_path)
    _populate(campus)
    coordinator, migrations = _join_wave(campus)
    migration = migrations[0]
    campus.router.mark_migrating(
        migration.user_id, migration.source, NEW
    )
    seen = []
    original = campus.router.call_building

    def spy(building_id, method, payload, principal=None):
        seen.append((building_id, payload.get("migration_marker")))
        return original(building_id, method, payload, principal=principal)

    campus.router.call_building = spy
    try:
        campus.router.call_home(
            migration.user_id,
            "room_occupancy",
            {
                "requester_id": "svc-occupancy",
                "requester_kind": "building_service",
                "space_id": "%s-1001" % NEW,
                "now": NOON,
            },
            principal="svc-occupancy",
        )
    finally:
        campus.router.call_building = original
        campus.router.clear_migrating(migration.user_id)
    assert seen == [
        (NEW, "migrating:%s:%s" % (migration.source, NEW))
    ]
    campus.close()


# ----------------------------------------------------------------------
# Crash mid-import: journal-guided resumption
# ----------------------------------------------------------------------
def test_crash_after_import_commit_resumes_via_journal(tmp_path):
    campus = _campus(tmp_path)
    _populate(campus)
    coordinator, migrations = _join_wave(campus)
    migration = migrations[0]
    injector = FaultInjector(
        single_spec_plan(
            FaultSpec(
                kind=FaultKind.CRASH_MID_MIGRATION,
                target="import",
                start=1,
                stop=2,
            )
        )
    )
    injector.install_rebalancer(coordinator)
    try:
        with pytest.raises(SimulatedCrash):
            coordinator.migrate(migration)
    finally:
        injector.uninstall()
    assert coordinator.crashed_building == NEW
    assert coordinator.pending()
    campus.mark_down(NEW)

    # Fail-closed while the destination is dark: the forwarded call
    # must fail, never answer from the stale source copy.
    with pytest.raises((NetworkError, FederationError)):
        campus.router.call_home(
            migration.user_id,
            "locate_user",
            {
                "requester_id": "svc-occupancy",
                "requester_kind": "building_service",
                "subject_id": migration.user_id,
                "now": NOON,
            },
            principal="svc-occupancy",
        )

    campus.recover_shard(NEW, NOON + 60.0)
    journal = campus.shard(NEW).tippers.recovered_migrations
    assert journal, "the import never reached the WAL"
    entry = journal[migration.migration_id]
    assert entry.get("phase") == "committed"

    outcomes = coordinator.resume_with_journal(journal)
    assert [o.status for o in outcomes] == ["completed"]
    assert coordinator.stats["resumed_committed"] == 1
    assert campus.home_of[migration.user_id] == NEW
    assert migration.user_id in _stored_subjects(campus.shard(NEW))
    assert migration.user_id not in _stored_subjects(
        campus.shard(migration.source)
    )
    campus.close()


def test_rollback_tombstones_the_partial_copy(tmp_path):
    campus = _campus(tmp_path)
    _populate(campus)
    coordinator, migrations = _join_wave(campus)
    migration = migrations[0]
    injector = FaultInjector(_partition_at("import", start=1))
    injector.install_rebalancer(coordinator)
    try:
        outcome = coordinator.migrate(migration)
    finally:
        injector.uninstall()
    assert outcome.status == "partitioned"
    # The copy landed at the destination before the acknowledgement was
    # lost; rolling back must tombstone it and un-mark the user.
    assert migration.user_id in _stored_subjects(campus.shard(NEW))

    coordinator.rollback(migration)

    assert migration.user_id not in _stored_subjects(campus.shard(NEW))
    assert campus.router.migration_of(migration.user_id) is None
    assert campus.home_of[migration.user_id] == migration.source
    assert migration.user_id in _stored_subjects(
        campus.shard(migration.source)
    )
    assert not coordinator.pending()
    campus.close()


def test_rollback_of_a_completed_migration_refuses(tmp_path):
    campus = _campus(tmp_path)
    _populate(campus)
    coordinator, migrations = _join_wave(campus)
    coordinator.migrate(migrations[0])
    with pytest.raises(FederationError):
        coordinator.rollback(migrations[0])
    campus.close()


# ----------------------------------------------------------------------
# Decommissioning: guards, breaker eviction, counted rejections
# ----------------------------------------------------------------------
def test_decommission_requires_drain_first(tmp_path):
    campus = _campus(tmp_path)
    with pytest.raises(FederationError):
        campus.decommission_building("bldg-a")
    campus.close()


def test_decommission_refuses_while_users_are_still_home(tmp_path):
    campus = _campus(tmp_path)
    _populate(campus)
    drained = "bldg-a"
    delta = campus.drain_building(drained)
    assert delta, "no user was homed at %s" % drained
    with pytest.raises(FederationError):
        campus.decommission_building(drained)
    campus.close()


def test_decommission_evicts_breakers_and_counts_rejections(tmp_path):
    campus = _campus(tmp_path)
    _populate(campus)
    coordinator = RebalanceCoordinator(campus)
    drained = "bldg-a"
    shard = campus.shard(drained)
    endpoints = {shard.endpoint, shard.registry_endpoint}
    # Warm the breakers so there is an entry to evict.
    campus.router.call_building(
        drained, "get_policy_document", {}, principal="svc-policy-sync"
    )
    for migration in coordinator.plan_for_delta(
        campus.drain_building(drained)
    ):
        coordinator.migrate(migration)

    campus.decommission_building(drained)

    assert campus.decommissioned == [drained]
    states = campus.bus.breakers.states()
    assert not endpoints & set(states)
    with pytest.raises(FederationError):
        campus.router.call_building(
            drained, "get_policy_document", {}, principal="svc-policy-sync"
        )
    assert (
        campus.metrics.total("federation_unknown_building_total") >= 1
    )
    campus.close()


def test_unregister_keeps_breaker_entry_by_default():
    board = BreakerBoard()
    board.record_failure("svc-a")
    assert "svc-a" in board.states()
    board.evict("svc-a")
    assert "svc-a" not in board.states()
    # Evicting an absent target is a no-op, not an error.
    board.evict("svc-a")
