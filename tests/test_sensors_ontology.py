"""Unit tests for repro.sensors.ontology."""

import pytest

from repro.errors import SensorError
from repro.sensors.ontology import (
    CAMERA,
    ObservationField,
    ParameterSpec,
    SensorOntology,
    SensorTypeSpec,
    WIFI_AP,
    default_ontology,
)


class TestParameterSpec:
    def test_choices_accept_member(self):
        spec = ParameterSpec("mode", "m", default="a", choices=("a", "b"))
        spec.validate("b")

    def test_choices_reject_non_member(self):
        spec = ParameterSpec("mode", "m", default="a", choices=("a", "b"))
        with pytest.raises(SensorError):
            spec.validate("c")

    def test_numeric_bounds(self):
        spec = ParameterSpec("fps", "f", default=5.0, minimum=1.0, maximum=30.0)
        spec.validate(1.0)
        spec.validate(30.0)
        with pytest.raises(SensorError):
            spec.validate(0.5)
        with pytest.raises(SensorError):
            spec.validate(31)

    def test_numeric_rejects_non_number(self):
        spec = ParameterSpec("fps", "f", default=5.0, minimum=1.0)
        with pytest.raises(SensorError):
            spec.validate("fast")

    def test_numeric_rejects_bool(self):
        spec = ParameterSpec("fps", "f", default=5.0, minimum=0.0)
        with pytest.raises(SensorError):
            spec.validate(True)


class TestSensorTypeSpec:
    def test_default_settings(self):
        defaults = CAMERA.default_settings()
        assert defaults["capture_fps"] == 5.0
        assert defaults["resolution"] == "720p"

    def test_unknown_parameter(self):
        with pytest.raises(SensorError):
            CAMERA.parameter("zoom")

    def test_validate_settings_all_or_error(self):
        with pytest.raises(SensorError):
            CAMERA.validate_settings({"capture_fps": 5.0, "resolution": "8k"})

    def test_personal_fields(self):
        assert "device_mac" in WIFI_AP.personal_fields
        assert "rssi" not in WIFI_AP.personal_fields


class TestSensorOntology:
    def test_default_ontology_has_dbh_types(self):
        ontology = default_ontology()
        for name in (
            "wifi_access_point",
            "bluetooth_beacon",
            "camera",
            "power_meter",
            "temperature_sensor",
            "motion_sensor",
            "hvac_unit",
            "id_card_reader",
        ):
            assert name in ontology

    def test_duplicate_registration_rejected(self):
        ontology = default_ontology()
        with pytest.raises(SensorError):
            ontology.register(WIFI_AP)

    def test_unknown_lookup(self):
        with pytest.raises(SensorError):
            default_ontology().get("sonar")

    def test_subsystems_grouping(self):
        ontology = default_ontology()
        hvac_types = {s.type_name for s in ontology.types_in_subsystem("hvac")}
        assert hvac_types == {"temperature_sensor", "motion_sensor", "hvac_unit"}

    def test_types_inferring_location(self):
        ontology = default_ontology()
        names = {s.type_name for s in ontology.types_inferring("location")}
        assert names == {"wifi_access_point", "bluetooth_beacon"}

    def test_type_names_sorted(self):
        names = default_ontology().type_names()
        assert names == sorted(names)
