"""Unit tests for snapshot persistence."""

import pytest

from repro.core.enforcement.audit import AuditLog, AuditRecord
from repro.core.language.vocabulary import GranularityLevel
from repro.core.policy.base import DecisionPhase, Effect
from repro.errors import StorageError
from repro.sensors.base import Observation
from repro.tippers.datastore import Datastore
from repro.tippers.persistence import (
    load_audit,
    load_datastore,
    save_audit,
    save_datastore,
)


def obs(timestamp, sensor_type="wifi_access_point", subject=None, granularity="precise"):
    return Observation.create(
        sensor_id="s1",
        sensor_type=sensor_type,
        timestamp=timestamp,
        space_id="r1",
        payload={"device_mac": "aa:bb", "rssi": -40.0, "nested": {"k": [1, 2]}},
        subject_id=subject,
    ).with_payload({"device_mac": "aa:bb", "rssi": -40.0, "nested": {"k": [1, 2]}}, granularity)


@pytest.fixture
def store():
    ds = Datastore()
    ds.insert(obs(1.0, subject="mary"))
    ds.insert(obs(2.0, sensor_type="motion_sensor"))
    ds.insert(obs(3.0, subject="bob", granularity="coarse"))
    return ds


class TestDatastoreSnapshots:
    def test_round_trip_exact(self, store, tmp_path):
        path = str(tmp_path / "snap.jsonl")
        count = save_datastore(store, path)
        assert count == 3
        restored = load_datastore(path)
        assert restored.count() == store.count()
        for sensor_type in store.stream_names():
            original = store.query(sensor_type=sensor_type)
            loaded = restored.query(sensor_type=sensor_type)
            assert [o.to_dict() for o in original] == [o.to_dict() for o in loaded]

    def test_subject_index_rebuilt(self, store, tmp_path):
        path = str(tmp_path / "snap.jsonl")
        save_datastore(store, path)
        restored = load_datastore(path)
        assert len(restored.query(subject_id="mary")) == 1
        assert len(restored.query(subject_id="bob")) == 1

    def test_load_into_existing(self, store, tmp_path):
        path = str(tmp_path / "snap.jsonl")
        save_datastore(store, path)
        target = Datastore()
        target.insert(obs(99.0))
        load_datastore(path, into=target)
        assert target.count() == 4

    def test_empty_snapshot(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        save_datastore(Datastore(), path)
        assert load_datastore(path).count() == 0

    def test_malformed_interior_line_reports_location(self, tmp_path, store):
        # A bad record *followed by* good data is corruption, not a
        # torn tail, and must still raise with its location.
        path = str(tmp_path / "bad.jsonl")
        save_datastore(store, path)
        with open(path) as handle:
            lines = handle.readlines()
        lines.insert(1, '{"observation_id": 1}\n')
        with open(path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(StorageError) as excinfo:
            load_datastore(path)
        assert "line 2" in str(excinfo.value)

    def test_torn_final_line_is_skipped_and_reported(self, tmp_path, store):
        path = str(tmp_path / "torn.jsonl")
        save_datastore(store, path)
        with open(path, "a") as handle:
            handle.write('{"observation_id": "trunc')  # crash mid-write
        messages = []
        restored = load_datastore(path, on_torn_tail=messages.append)
        assert restored.count() == store.count()
        assert len(messages) == 1
        assert "torn final record skipped" in messages[0]

    def test_torn_tail_increments_metric(self, tmp_path, store):
        from repro.obs.metrics import get_registry

        path = str(tmp_path / "torn.jsonl")
        save_datastore(store, path)
        with open(path, "a") as handle:
            handle.write("not json")
        before = get_registry().total("persistence_torn_tail_total")
        load_datastore(path)
        assert get_registry().total("persistence_torn_tail_total") == before + 1

    def test_no_tmp_file_left_behind(self, store, tmp_path):
        path = str(tmp_path / "snap.jsonl")
        save_datastore(store, path)
        assert not (tmp_path / "snap.jsonl.tmp").exists()


class TestAuditSnapshots:
    def make_log(self):
        log = AuditLog()
        for index in range(3):
            log.append(
                AuditRecord(
                    timestamp=float(index),
                    requester_id="svc",
                    phase=DecisionPhase.SHARING,
                    category="location",
                    subject_id="mary" if index % 2 == 0 else None,
                    space_id="r1",
                    effect=Effect.ALLOW if index else Effect.DENY,
                    granularity=GranularityLevel.COARSE,
                    reasons=("r%d" % index,),
                    notify_user=index == 2,
                )
            )
        return log

    def test_round_trip_exact(self, tmp_path):
        log = self.make_log()
        path = str(tmp_path / "audit.jsonl")
        assert save_audit(log, path) == 3
        restored = load_audit(path)
        assert list(restored) == list(log)

    def test_summary_survives(self, tmp_path):
        log = self.make_log()
        path = str(tmp_path / "audit.jsonl")
        save_audit(log, path)
        assert load_audit(path).summary() == log.summary()

    def test_malformed_interior_audit_line(self, tmp_path):
        log = self.make_log()
        path = str(tmp_path / "bad.jsonl")
        save_audit(log, path)
        with open(path) as handle:
            lines = handle.readlines()
        lines.insert(0, "not json\n")
        with open(path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(StorageError) as excinfo:
            load_audit(path)
        assert "line 1" in str(excinfo.value)

    def test_torn_final_audit_line_is_skipped(self, tmp_path):
        log = self.make_log()
        path = str(tmp_path / "audit.jsonl")
        save_audit(log, path)
        with open(path, "a") as handle:
            handle.write('{"timestamp": 9.0, "requester')
        messages = []
        restored = load_audit(path, on_torn_tail=messages.append)
        assert list(restored) == list(log)
        assert len(messages) == 1
