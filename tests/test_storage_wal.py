"""Unit tests for the segmented write-ahead log."""

import os
import struct

import pytest

from repro.errors import SimulatedCrash, StorageError
from repro.storage.wal import (
    FRAME_HEADER,
    SEGMENT_HEADER,
    SEGMENT_MAGIC,
    WriteAheadLog,
    decode_frame,
    encode_frame,
    list_segments,
    scan_segment,
    segment_sequence,
)


class TestFrameCodec:
    def test_round_trip(self):
        frame_bytes = encode_frame(7, b"hello")
        frame, next_offset, reason = decode_frame(frame_bytes)
        assert frame is not None and reason == ""
        assert frame.lsn == 7
        assert frame.payload == b"hello"
        assert next_offset == len(frame_bytes)

    def test_empty_payload(self):
        frame, _, _ = decode_frame(encode_frame(1, b""))
        assert frame is not None and frame.payload == b""

    def test_header_layout(self):
        frame_bytes = encode_frame(3, b"xy")
        lsn, length, _crc = FRAME_HEADER.unpack_from(frame_bytes, 0)
        assert (lsn, length) == (3, 2)

    def test_short_header(self):
        assert decode_frame(b"\x00\x01") == (None, 0, "short-header")

    def test_short_payload(self):
        frame_bytes = encode_frame(1, b"payload")
        frame, offset, reason = decode_frame(frame_bytes[:-2])
        assert frame is None and offset == 0 and reason == "short-payload"

    def test_crc_mismatch(self):
        frame_bytes = bytearray(encode_frame(1, b"payload"))
        frame_bytes[-1] ^= 0xFF  # flip a payload bit
        frame, _, reason = decode_frame(bytes(frame_bytes))
        assert frame is None and reason == "crc-mismatch"

    def test_oversized_length_rejected_without_allocating(self):
        header = struct.pack(">QII", 1, 2**31, 0)
        frame, _, reason = decode_frame(header + b"x" * 8)
        assert frame is None and reason == "oversized-length"

    def test_bad_lsn_and_oversized_payload_raise_at_encode(self):
        with pytest.raises(StorageError):
            encode_frame(0, b"")
        with pytest.raises(StorageError):
            encode_frame(1, b"x" * (16 * 1024 * 1024 + 1))


class TestWriteAheadLog:
    def test_appends_assign_monotonic_lsns(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert [wal.append(b"a"), wal.append(b"b"), wal.append(b"c")] == [1, 2, 3]
        wal.close()

    def test_segment_rotation_at_byte_budget(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_bytes=64)
        for _ in range(10):
            wal.append(b"x" * 24)
        assert wal.segments_sealed >= 2
        assert len(wal.segment_paths()) == wal.segments_sealed + 1
        wal.close()

    def test_segment_header_magic(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(b"data")
        wal.close()
        with open(wal.active_path, "rb") as handle:
            magic, first_lsn = SEGMENT_HEADER.unpack(
                handle.read(SEGMENT_HEADER.size)
            )
        assert magic == SEGMENT_MAGIC and first_lsn == 1

    def test_reopen_resumes_lsn(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_bytes=64)
        for index in range(8):
            wal.append(b"payload-%d" % index)
        wal.close()
        reopened = WriteAheadLog(str(tmp_path), segment_bytes=64)
        assert reopened.append(b"after") == 9
        reopened.close()

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(b"kept")
        wal.append(b"also kept")
        wal.close()
        with open(wal.active_path, "ab") as handle:
            handle.write(encode_frame(3, b"torn")[:9])
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.truncated_segments == 1
        assert reopened.append(b"fresh") == 3
        reopened.close()
        # The torn bytes were physically removed; appends resume in a
        # fresh segment and the LSN chain stays contiguous across both.
        first, second = list_segments(str(tmp_path))
        first_scan, second_scan = scan_segment(first), scan_segment(second)
        assert not first_scan.torn and not second_scan.torn
        assert [f.payload for f in first_scan.frames] == [b"kept", b"also kept"]
        assert [f.payload for f in second_scan.frames] == [b"fresh"]
        assert second_scan.first_lsn == first_scan.last_lsn + 1

    def test_segments_after_a_tear_are_dropped(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_bytes=64)
        for index in range(8):
            wal.append(b"payload-%d" % index)
        wal.close()
        first, second = list_segments(str(tmp_path))[:2]
        with open(first, "r+b") as handle:
            handle.seek(SEGMENT_HEADER.size + 4)
            handle.write(b"\xff\xff")  # corrupt the first frame
        reopened = WriteAheadLog(str(tmp_path), segment_bytes=64)
        assert not os.path.exists(second)
        # The first segment keeps only its header; LSNs restart at 1.
        assert reopened.append(b"fresh") == 1
        reopened.close()

    def test_scan_detects_lsn_discontinuity(self, tmp_path):
        path = str(tmp_path / "wal-00000001.seg")
        with open(path, "wb") as handle:
            handle.write(SEGMENT_HEADER.pack(SEGMENT_MAGIC, 1))
            handle.write(encode_frame(1, b"one"))
            handle.write(encode_frame(5, b"gap"))
        scan = scan_segment(path)
        assert scan.torn and scan.reason == "lsn-discontinuity"
        assert len(scan.frames) == 1

    def test_torn_write_fault_crashes_with_partial_frame(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(b"before")
        wal.install_fault_plane(lambda op, rt: "torn_write")
        with pytest.raises(SimulatedCrash):
            wal.append(b"doomed")
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.truncated_segments == 1
        assert reopened.next_lsn == 2  # the torn record was lost
        reopened.close()

    def test_crash_mid_append_leaves_durable_frame(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(b"before")
        wal.install_fault_plane(lambda op, rt: "crash_mid_append")
        with pytest.raises(SimulatedCrash):
            wal.append(b"durable")
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.next_lsn == 3  # the frame survived
        reopened.close()
        scan = scan_segment(list_segments(str(tmp_path))[0])
        assert scan.frames[-1].payload == b"durable"

    def test_removed_plane_stops_faulting(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        plane = lambda op, rt: "torn_write"  # noqa: E731
        wal.install_fault_plane(plane)
        wal.remove_fault_plane(plane)
        assert wal.append(b"fine") == 1
        wal.close()

    def test_segment_sequence_parsing(self):
        assert segment_sequence("/x/wal-00000042.seg") == 42
        with pytest.raises(StorageError):
            segment_sequence("/x/not-a-segment.txt")

    def test_too_small_budget_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            WriteAheadLog(str(tmp_path), segment_bytes=8)
