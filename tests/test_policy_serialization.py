"""Unit tests for wire serialization of preferences and requests."""

import json

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.conditions import (
    AllOf,
    Always,
    AnyOf,
    Condition,
    EvaluationContext,
    Not,
    ProfileCondition,
    SpatialCondition,
    SubjectCondition,
    TemporalCondition,
)
from repro.core.policy.preference import UserPreference
from repro.core.policy.serialization import (
    condition_from_dict,
    condition_to_dict,
    preference_from_dict,
    preference_to_dict,
    request_from_dict,
    request_to_dict,
)
from repro.errors import PolicyError


class TestConditionSerialization:
    @pytest.mark.parametrize(
        "condition",
        [
            Always(),
            SpatialCondition("b-1001"),
            SpatialCondition("b", match_unlocated=True),
            TemporalCondition(start_hour=18, end_hour=8),
            TemporalCondition(start_hour=9, end_hour=17, weekdays_only=True),
            ProfileCondition("faculty"),
            SubjectCondition("mary"),
            Not(ProfileCondition("staff")),
            AllOf((SpatialCondition("b"), TemporalCondition(9, 17))),
            AnyOf((ProfileCondition("a"), ProfileCondition("b"))),
        ],
    )
    def test_round_trip(self, condition):
        assert condition_from_dict(condition_to_dict(condition)) == condition

    def test_json_compatible(self):
        condition = AllOf((SpatialCondition("b"), Not(TemporalCondition(9, 17))))
        text = json.dumps(condition_to_dict(condition))
        assert condition_from_dict(json.loads(text)) == condition

    def test_unknown_kind_rejected(self):
        with pytest.raises(PolicyError):
            condition_from_dict({"kind": "quantum"})

    def test_custom_condition_not_serializable(self):
        class Weird(Condition):
            def matches(self, request, context):
                return True

        with pytest.raises(PolicyError):
            condition_to_dict(Weird())


class TestPreferenceSerialization:
    def full_preference(self) -> UserPreference:
        return UserPreference(
            preference_id="p1",
            user_id="mary",
            description="after hours",
            effect=Effect.DENY,
            categories=(DataCategory.OCCUPANCY, DataCategory.PRESENCE),
            phases=(DecisionPhase.SHARING,),
            requester_ids=("concierge",),
            requester_kinds=(RequesterKind.THIRD_PARTY_SERVICE,),
            purposes=(Purpose.PROVIDING_SERVICE,),
            space_ids=("b-1001",),
            granularity_cap=GranularityLevel.COARSE,
            condition=TemporalCondition(start_hour=18, end_hour=8),
            strength=0.8,
        )

    def test_round_trip(self):
        preference = self.full_preference()
        assert preference_from_dict(preference_to_dict(preference)) == preference

    def test_round_trip_through_json(self):
        preference = self.full_preference()
        text = json.dumps(preference_to_dict(preference))
        assert preference_from_dict(json.loads(text)) == preference

    def test_malformed_payload_rejected(self):
        with pytest.raises(PolicyError):
            preference_from_dict({"preference_id": "p"})

    def test_bad_enum_value_rejected(self):
        data = preference_to_dict(self.full_preference())
        data["effect"] = "maybe"
        with pytest.raises(PolicyError):
            preference_from_dict(data)

    def test_defaults_filled(self):
        minimal = {
            "preference_id": "p",
            "user_id": "u",
            "effect": "deny",
            "phases": ["sharing"],
        }
        preference = preference_from_dict(minimal)
        assert preference.granularity_cap is GranularityLevel.PRECISE
        assert preference.condition == Always()


class TestRequestSerialization:
    def full_request(self) -> DataRequest:
        return DataRequest(
            requester_id="svc",
            requester_kind=RequesterKind.BUILDING_SERVICE,
            phase=DecisionPhase.SHARING,
            category=DataCategory.LOCATION,
            subject_id="mary",
            space_id="b-1001",
            timestamp=123.0,
            purpose=Purpose.PROVIDING_SERVICE,
            granularity=GranularityLevel.COARSE,
            sensor_type="wifi_access_point",
            attributes={"trace": "t1"},
        )

    def test_round_trip(self):
        request = self.full_request()
        assert request_from_dict(request_to_dict(request)) == request

    def test_null_purpose_round_trip(self):
        request = DataRequest(
            requester_id="svc",
            requester_kind=RequesterKind.BUILDING_SERVICE,
            phase=DecisionPhase.SHARING,
            category=DataCategory.LOCATION,
            subject_id=None,
            space_id=None,
            timestamp=0.0,
        )
        restored = request_from_dict(request_to_dict(request))
        assert restored.purpose is None
        assert restored.subject_id is None

    def test_malformed_rejected(self):
        with pytest.raises(PolicyError):
            request_from_dict({"requester_id": "x"})
