"""Unit tests for the enforcement engine."""

import pytest

from repro.core.enforcement.engine import EnforcementEngine
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.conditions import EvaluationContext
from repro.core.policy.preference import UserPreference
from repro.core.reasoner.resolution import ResolutionStrategy
from repro.sensors.base import Observation
from repro.spatial.model import build_simple_building


@pytest.fixture
def engine():
    spatial = build_simple_building("b", 2, 4)
    engine = EnforcementEngine(context=EvaluationContext(spatial=spatial))
    engine.store.add_policy(catalog.policy_2_emergency_location("b"))
    engine.store.add_policy(catalog.policy_service_sharing("b"))
    return engine


def sharing_request(**overrides):
    defaults = dict(
        requester_id="concierge",
        requester_kind=RequesterKind.BUILDING_SERVICE,
        phase=DecisionPhase.SHARING,
        category=DataCategory.LOCATION,
        subject_id="mary",
        space_id="b-1001",
        timestamp=100.0,
        purpose=Purpose.PROVIDING_SERVICE,
    )
    defaults.update(overrides)
    return DataRequest(**defaults)


def wifi_observation(space="b-1001", subject="mary"):
    return Observation.create(
        sensor_id="ap-1",
        sensor_type="wifi_access_point",
        timestamp=50.0,
        space_id=space,
        payload={"device_mac": "aa:bb", "ap_mac": "x", "rssi": -40.0},
        subject_id=subject,
    )


class TestDecide:
    def test_allowed_by_sharing_policy(self, engine):
        decision = engine.decide(sharing_request())
        assert decision.allowed
        assert decision.granularity is GranularityLevel.PRECISE

    def test_denied_without_policy(self, engine):
        decision = engine.decide(
            sharing_request(category=DataCategory.SOCIAL_TIES)
        )
        assert not decision.allowed

    def test_preference_denies(self, engine):
        engine.store.add_preference(catalog.preference_2_no_location("mary"))
        assert not engine.decide(sharing_request()).allowed

    def test_preference_only_affects_its_user(self, engine):
        engine.store.add_preference(catalog.preference_2_no_location("mary"))
        assert engine.decide(sharing_request(subject_id="bob")).allowed

    def test_strategy_changes_outcome(self):
        spatial = build_simple_building("b", 2, 4)
        engine = EnforcementEngine(
            context=EvaluationContext(spatial=spatial),
            strategy=ResolutionStrategy.BUILDING_WINS,
        )
        engine.store.add_policy(catalog.policy_service_sharing("b"))
        engine.store.add_preference(catalog.preference_2_no_location("mary"))
        decision = engine.decide(sharing_request())
        assert decision.allowed
        assert decision.resolution.notify_user

    def test_every_decision_audited(self, engine):
        before = len(engine.audit)
        engine.decide(sharing_request())
        engine.decide(sharing_request(subject_id="bob"))
        assert len(engine.audit) == before + 2


class TestObservationEnforcement:
    def test_request_for_observation_maps_category(self, engine):
        request = engine.request_for_observation(
            wifi_observation(), DecisionPhase.CAPTURE
        )
        assert request.category is DataCategory.LOCATION
        assert request.purpose is Purpose.EMERGENCY_RESPONSE
        assert request.sensor_type == "wifi_access_point"
        assert request.requester_kind is RequesterKind.BUILDING

    def test_authorized_observation_stored_verbatim(self, engine):
        obs = wifi_observation()
        out = engine.enforce_observation(obs, DecisionPhase.CAPTURE)
        assert out is obs

    def test_unauthorized_sensor_dropped(self, engine):
        camera_obs = Observation.create(
            "cam-1", "camera", 1.0, "b-f1-corridor", {"frame_ref": "f", "motion_score": 0.1, "faces_detected": 0}
        )
        assert engine.enforce_observation(camera_obs, DecisionPhase.CAPTURE) is None

    def test_preference_degrades_capture(self, engine):
        engine.store.add_preference(
            UserPreference(
                preference_id="cap",
                user_id="mary",
                description="floor only",
                effect=Effect.ALLOW,
                categories=(DataCategory.LOCATION,),
                phases=(DecisionPhase.CAPTURE, DecisionPhase.STORAGE),
                granularity_cap=GranularityLevel.COARSE,
            )
        )
        # The mandatory emergency policy would override; test against a
        # negotiable deployment instead.
        engine.store.remove_policy("policy-2-emergency")
        engine.store.add_policy(
            BuildingPolicy(
                policy_id="wifi-log",
                name="wifi",
                description="d",
                categories=(DataCategory.LOCATION,),
                sensor_types=("wifi_access_point",),
                phases=(DecisionPhase.CAPTURE, DecisionPhase.STORAGE),
                purposes=(Purpose.EMERGENCY_RESPONSE,),
            )
        )
        out = engine.enforce_observation(wifi_observation(), DecisionPhase.CAPTURE)
        assert out is not None
        assert out.space_id == "b-f1", "coarsened to the floor"

    def test_mandatory_policy_overrides_capture_optout(self, engine):
        engine.store.add_preference(catalog.preference_2_no_location("mary"))
        out = engine.enforce_observation(wifi_observation(), DecisionPhase.CAPTURE)
        assert out is not None, "mandatory emergency collection prevails"
        record = list(engine.audit)[-1]
        assert record.notify_user, "but the user must be notified"

    def test_unknown_sensor_type_conservative_category(self, engine):
        odd = Observation.create("x", "novel_sensor", 0.0, "b-1001", {})
        request = engine.request_for_observation(odd, DecisionPhase.CAPTURE)
        assert request.category is DataCategory.ACTIVITY
