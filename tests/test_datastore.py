"""Unit tests for the observation datastore."""

import pytest

from repro.errors import StorageError
from repro.sensors.base import Observation
from repro.tippers.datastore import Datastore


def obs(timestamp, sensor_type="wifi_access_point", space="r1", subject=None):
    return Observation.create(
        sensor_id="s1",
        sensor_type=sensor_type,
        timestamp=timestamp,
        space_id=space,
        payload={},
        subject_id=subject,
    )


@pytest.fixture
def store():
    ds = Datastore()
    ds.insert(obs(1.0, subject="mary"))
    ds.insert(obs(2.0, subject="bob"))
    ds.insert(obs(3.0, sensor_type="motion_sensor", space="r2"))
    ds.insert(obs(4.0, subject="mary", space="r2"))
    return ds


class TestInsertAndCount:
    def test_counts(self, store):
        assert store.count() == 4
        assert store.count("wifi_access_point") == 3
        assert store.count("camera") == 0
        assert store.total_inserted == 4

    def test_out_of_order_insert_sorted(self):
        ds = Datastore()
        ds.insert(obs(5.0))
        ds.insert(obs(1.0))
        ds.insert(obs(3.0))
        times = [o.timestamp for o in ds.query(sensor_type="wifi_access_point")]
        assert times == [1.0, 3.0, 5.0]

    def test_insert_many(self):
        ds = Datastore()
        assert ds.insert_many([obs(1.0), obs(2.0)]) == 2

    def test_stream_names(self, store):
        assert store.stream_names() == ["motion_sensor", "wifi_access_point"]


class TestQuery:
    def test_by_type(self, store):
        assert len(store.query(sensor_type="motion_sensor")) == 1

    def test_by_space(self, store):
        assert len(store.query(space_id="r2")) == 2

    def test_by_subject(self, store):
        assert len(store.query(subject_id="mary")) == 2

    def test_window_since_inclusive_until_exclusive(self, store):
        window = store.query(since=2.0, until=4.0)
        assert [o.timestamp for o in window] == [2.0, 3.0]

    def test_empty_window_rejected(self, store):
        with pytest.raises(StorageError):
            store.query(since=5.0, until=5.0)

    def test_limit_keeps_newest(self, store):
        newest = store.query(limit=2)
        assert [o.timestamp for o in newest] == [3.0, 4.0]

    def test_predicate(self, store):
        found = store.query(predicate=lambda o: o.subject_id == "bob")
        assert len(found) == 1

    def test_combined_filters(self, store):
        found = store.query(sensor_type="wifi_access_point", space_id="r2", subject_id="mary")
        assert [o.timestamp for o in found] == [4.0]

    def test_latest(self, store):
        assert store.latest().timestamp == 4.0
        assert store.latest(sensor_type="motion_sensor").timestamp == 3.0
        assert store.latest(sensor_type="camera") is None


class TestRetention:
    def test_sweep_purges_old(self, store):
        purged = store.sweep(now=10.0, retention_by_type={"wifi_access_point": 7.0})
        # cutoff = 3.0: observations at 1.0 and 2.0 purged.
        assert purged == 2
        assert store.count("wifi_access_point") == 1
        assert store.total_purged == 2

    def test_sweep_cleans_subject_index(self, store):
        store.sweep(now=10.0, retention_by_type={"wifi_access_point": 7.0})
        assert [o.timestamp for o in store.query(subject_id="mary")] == [4.0]

    def test_unlisted_streams_kept(self, store):
        store.sweep(now=100.0, retention_by_type={"wifi_access_point": 1.0})
        assert store.count("motion_sensor") == 1

    def test_negative_retention_rejected(self, store):
        with pytest.raises(StorageError):
            store.sweep(now=1.0, retention_by_type={"wifi_access_point": -1.0})

    def test_sweep_nothing_due(self, store):
        assert store.sweep(now=4.0, retention_by_type={"wifi_access_point": 100.0}) == 0


class TestForgetSubject:
    def test_all_traces_removed(self, store):
        removed = store.forget_subject("mary")
        assert removed == 2
        assert store.query(subject_id="mary") == []
        assert store.count() == 2

    def test_forget_unknown_subject(self, store):
        assert store.forget_subject("ghost") == 0
