"""Unit tests for static conflict detection."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DecisionPhase, Effect
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.conditions import EvaluationContext
from repro.core.policy.preference import UserPreference
from repro.core.reasoner.conflicts import (
    Conflict,
    ConflictKind,
    conflicts_for_user,
    detect_conflicts,
)
from repro.spatial.model import build_simple_building


def policy(**overrides) -> BuildingPolicy:
    defaults = dict(
        policy_id="p",
        name="p",
        description="d",
        effect=Effect.ALLOW,
        categories=(DataCategory.LOCATION,),
        phases=(DecisionPhase.CAPTURE, DecisionPhase.STORAGE),
        granularity=GranularityLevel.PRECISE,
    )
    defaults.update(overrides)
    return BuildingPolicy(**defaults)


def preference(**overrides) -> UserPreference:
    defaults = dict(
        preference_id="f",
        user_id="mary",
        description="d",
        effect=Effect.DENY,
        categories=(DataCategory.LOCATION,),
        phases=(DecisionPhase.CAPTURE,),
    )
    defaults.update(overrides)
    return UserPreference(**defaults)


@pytest.fixture
def context():
    return EvaluationContext(spatial=build_simple_building("b", 2, 4))


class TestKinds:
    def test_hard_conflict_mandatory_vs_optout(self, context):
        conflicts = detect_conflicts([policy(mandatory=True)], [preference()], context)
        assert [c.kind for c in conflicts] == [ConflictKind.HARD]
        assert not conflicts[0].negotiable

    def test_effect_conflict_nonmandatory_vs_optout(self, context):
        conflicts = detect_conflicts([policy()], [preference()], context)
        assert [c.kind for c in conflicts] == [ConflictKind.EFFECT]
        assert conflicts[0].negotiable

    def test_granularity_conflict(self, context):
        capped = preference(
            effect=Effect.ALLOW, granularity_cap=GranularityLevel.COARSE
        )
        conflicts = detect_conflicts([policy()], [capped], context)
        assert [c.kind for c in conflicts] == [ConflictKind.GRANULARITY]

    def test_no_conflict_when_policy_coarser_than_cap(self, context):
        coarse_policy = policy(granularity=GranularityLevel.COARSE)
        capped = preference(
            effect=Effect.ALLOW, granularity_cap=GranularityLevel.COARSE
        )
        assert detect_conflicts([coarse_policy], [capped], context) == []

    def test_deny_policy_never_conflicts(self, context):
        assert detect_conflicts([policy(effect=Effect.DENY)], [preference()], context) == []


class TestScopeOverlap:
    def test_disjoint_categories_no_conflict(self, context):
        p = policy(categories=(DataCategory.ENERGY_USE,))
        assert detect_conflicts([p], [preference()], context) == []

    def test_disjoint_phases_no_conflict(self, context):
        f = preference(phases=(DecisionPhase.SHARING,))
        p = policy(phases=(DecisionPhase.CAPTURE,))
        assert detect_conflicts([p], [f], context) == []

    def test_disjoint_purposes_no_conflict(self, context):
        p = policy(purposes=(Purpose.SECURITY,))
        f = preference(purposes=(Purpose.MARKETING,))
        assert detect_conflicts([p], [f], context) == []

    def test_wildcard_categories_overlap_everything(self, context):
        p = policy(categories=())
        assert detect_conflicts([p], [preference()], context)

    def test_spatially_disjoint_no_conflict(self, context):
        p = policy(space_ids=("b-1001",))
        f = preference(space_ids=("b-2002",))
        assert detect_conflicts([p], [f], context) == []

    def test_spatial_containment_overlaps(self, context):
        p = policy(space_ids=("b",))
        f = preference(space_ids=("b-1001",))
        assert detect_conflicts([p], [f], context)

    def test_spatial_ids_without_model(self):
        p = policy(space_ids=("x",))
        f = preference(space_ids=("x",))
        assert detect_conflicts([p], [f], None)
        f2 = preference(space_ids=("y",))
        assert detect_conflicts([p], [f2], None) == []


class TestHelpers:
    def test_conflicts_for_user_filters(self, context):
        prefs = [preference(), preference(preference_id="f2", user_id="bob")]
        mine = conflicts_for_user([policy()], prefs, "mary", context)
        assert len(mine) == 1
        assert mine[0].preference.user_id == "mary"

    def test_describe_mentions_both_rules(self, context):
        conflict = detect_conflicts([policy(mandatory=True)], [preference()], context)[0]
        text = conflict.describe()
        assert "p" in text and "f" in text and "mary" in text
