"""Unit tests for MUD-based IRR auto-provisioning (Section V-B)."""

import pytest

from repro.core.language.duration import Duration
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.irr.mud import (
    BUILTIN_PROFILES,
    MUDProfile,
    advertisement_document,
    auto_provision,
)
from repro.irr.registry import IoTResourceRegistry
from repro.iota.assistant import practices_from_resource


class TestBuiltinProfiles:
    def test_every_dbh_type_has_a_profile(self):
        expected = {
            "wifi_access_point",
            "bluetooth_beacon",
            "camera",
            "power_meter",
            "temperature_sensor",
            "motion_sensor",
            "hvac_unit",
            "id_card_reader",
        }
        assert set(BUILTIN_PROFILES) == expected

    def test_profiles_yield_valid_documents(self):
        for profile in BUILTIN_PROFILES.values():
            document = advertisement_document(profile, "DBH", "UCI")
            document.to_dict()  # schema-validates

    def test_location_devices_offer_choices(self):
        space = BUILTIN_PROFILES["wifi_access_point"].settings_space()
        assert space is not None
        keys = {c.key for c in space.group("wifi_access_point").choices}
        assert keys == {"precise", "coarse", "none"}

    def test_camera_offers_no_choices(self):
        assert BUILTIN_PROFILES["camera"].settings_space() is None

    def test_documents_are_iota_interpretable(self):
        """The IoTA must be able to derive practices from MUD documents."""
        for profile in BUILTIN_PROFILES.values():
            document = advertisement_document(profile, "DBH", "UCI")
            practices = practices_from_resource(document.resources[0])
            assert practices
            categories = {p.category for p in practices}
            assert profile.primary_category in categories


class TestAutoProvision:
    def test_one_advertisement_per_deployed_type(self, tippers):
        registry = IoTResourceRegistry("irr-mud", tippers.spatial)
        published = auto_provision(registry, tippers)
        deployed = {s.sensor_type for s in tippers.sensor_manager.sensors()}
        assert {a.advertisement_id for a in published} == {
            "mud:%s" % t for t in deployed
        }
        assert len(registry) == len(deployed)

    def test_building_retention_overrides_when_stricter(self, tippers):
        # The fixture's Policy 1 bounds motion sensors at P7D; the
        # built-in motion profile also says P7D, so use wifi: Policy 2
        # says P6M, manufacturer default is P6M -> no override needed,
        # document carries P6M either way.
        registry = IoTResourceRegistry("irr-mud", tippers.spatial)
        auto_provision(registry, tippers)
        ad = next(
            a for a in registry.advertisements()
            if a.advertisement_id == "mud:wifi_access_point"
        )
        retention = ad.resource_document().resources[0].retention
        assert retention == Duration.parse("P6M")

    def test_stricter_building_policy_wins(self, tippers):
        import dataclasses

        tippers.policy_manager.retire("policy-2-emergency")
        strict = dataclasses.replace(
            catalog.policy_2_emergency_location("b"),
            retention=Duration.parse("P7D"),
        )
        tippers.define_policy(strict)
        registry = IoTResourceRegistry("irr-mud", tippers.spatial)
        auto_provision(registry, tippers)
        ad = next(
            a for a in registry.advertisements()
            if a.advertisement_id == "mud:wifi_access_point"
        )
        retention = ad.resource_document().resources[0].retention
        assert retention.total_seconds() == 7 * 86400

    def test_unknown_types_skipped(self, tippers):
        registry = IoTResourceRegistry("irr-mud", tippers.spatial)
        published = auto_provision(registry, tippers, profiles={})
        assert published == []

    def test_settings_attached_for_configurable_devices(self, tippers):
        registry = IoTResourceRegistry("irr-mud", tippers.spatial)
        auto_provision(registry, tippers)
        wifi_ad = next(
            a for a in registry.advertisements()
            if a.advertisement_id == "mud:wifi_access_point"
        )
        assert wifi_ad.settings_document() is not None
        motion_ad = next(
            a for a in registry.advertisements()
            if a.advertisement_id == "mud:motion_sensor"
        )
        assert motion_ad.settings_document() is None

    def test_discoverable_from_rooms(self, tippers):
        registry = IoTResourceRegistry("irr-mud", tippers.spatial)
        auto_provision(registry, tippers)
        found = registry.discover("b-1001")
        assert found, "auto-provisioned ads visible building-wide"
