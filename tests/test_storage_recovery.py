"""Unit and scenario tests for crash recovery."""

import pytest

from repro.core.policy import catalog
from repro.errors import PolicyError, SimulatedCrash, StorageError
from repro.sensors.base import Observation
from repro.simulation.recover import run_recovery_scenario
from repro.spatial.model import build_simple_building
from repro.storage.durable import DurableAuditLog, DurableDatastore, StorageEngine
from repro.storage.recovery import is_storage_directory, recover, replay_directory
from repro.tippers.bms import TIPPERS
from repro.users.profile import UserProfile


def obs(timestamp, subject=None, sensor_type="temperature"):
    return Observation.create(
        sensor_id="s1",
        sensor_type=sensor_type,
        timestamp=timestamp,
        space_id="r1",
        payload={"v": timestamp},
        subject_id=subject,
    )


class TestReplayDirectory:
    def test_replays_snapshot_then_log(self, tmp_path):
        engine = StorageEngine(str(tmp_path), segment_bytes=256)
        datastore = DurableDatastore(engine)
        for index in range(10):
            datastore.insert(obs(float(index)))
        engine.compact()
        for index in range(10, 15):
            datastore.insert(obs(float(index)))
        engine.close()

        state = replay_directory(str(tmp_path))
        assert state.datastore.count() == 15
        assert state.report.snapshot_lsn == 10
        assert state.report.frames_replayed == 5
        assert state.report.observations_restored == 15

    def test_non_storage_directory_rejected(self, tmp_path):
        assert not is_storage_directory(str(tmp_path))
        with pytest.raises(StorageError):
            recover(str(tmp_path))

    def test_torn_tail_replays_prefix(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        datastore = DurableDatastore(engine)
        datastore.insert(obs(1.0))
        engine.install_fault_plane(lambda op, rt: "torn_write")
        with pytest.raises(SimulatedCrash):
            datastore.insert(obs(2.0))
        engine.close()

        state = replay_directory(str(tmp_path))
        assert state.report.torn
        assert state.datastore.count() == 1  # the torn record never happened

    def test_report_is_deterministic(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        datastore = DurableDatastore(engine)
        datastore.insert(obs(1.0, subject="mary"))
        datastore.forget_subject("mary")
        engine.close()
        first = replay_directory(str(tmp_path)).report
        second = replay_directory(str(tmp_path)).report
        assert first.to_dict() == second.to_dict()
        assert first.to_text() == second.to_text()

    def test_recover_sweeps_retention(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        datastore = DurableDatastore(engine)
        datastore.insert(obs(10.0))
        datastore.insert(obs(900.0))
        engine.close()
        state = recover(
            str(tmp_path), retention_by_type={"temperature": 100.0}, now=950.0
        )
        assert state.report.retention_purged == 1
        assert state.datastore.count() == 1


class TestCrashMidErasure:
    """The DSAR satellite: erased subjects stay erased, both crash ways."""

    def seeded_engine(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        datastore = DurableDatastore(engine)
        for index in range(5):
            datastore.insert(obs(float(index), subject="mary"))
        return engine, datastore

    def test_crash_after_durable_erase_record(self, tmp_path):
        engine, datastore = self.seeded_engine(tmp_path)
        engine.install_fault_plane(lambda op, rt: "crash_mid_append")
        with pytest.raises(SimulatedCrash):
            datastore.forget_subject("mary")
        engine.close()
        # The erase frame reached disk before the crash, so recovery
        # MUST apply it: the subject stays forgotten.
        state = replay_directory(str(tmp_path))
        assert state.report.erasures_applied == 1
        assert state.datastore.query(subject_id="mary") == []

    def test_torn_erase_record_is_a_clean_no_op(self, tmp_path):
        engine, datastore = self.seeded_engine(tmp_path)
        engine.install_fault_plane(lambda op, rt: "torn_write")
        with pytest.raises(SimulatedCrash):
            datastore.forget_subject("mary")
        # Memory never applied the erase either (log-then-apply), so
        # the live and recovered views agree: nothing was erased.
        assert len(datastore.query(subject_id="mary")) == 5
        engine.close()
        state = replay_directory(str(tmp_path))
        assert state.report.erasures_applied == 0
        assert len(state.datastore.query(subject_id="mary")) == 5

    def test_erasure_survives_compaction_and_recovery(self, tmp_path):
        engine, datastore = self.seeded_engine(tmp_path)
        datastore.forget_subject("mary")
        engine.compact()
        engine.close()
        state = replay_directory(str(tmp_path))
        assert state.datastore.query(subject_id="mary") == []


def make_building_tippers(storage):
    spatial = build_simple_building("hq", floors=1, rooms_per_floor=2)
    tippers = TIPPERS(spatial, "hq", storage=storage)
    tippers.define_policy(
        catalog.policy_service_sharing("hq")
    )
    tippers.add_user(UserProfile(user_id="mary", name="Mary"))
    return tippers


class TestTippersRecover:
    def test_requires_storage(self):
        spatial = build_simple_building("hq", floors=1, rooms_per_floor=2)
        tippers = TIPPERS(spatial, "hq")
        with pytest.raises(PolicyError):
            tippers.recover(0.0)

    def test_requires_fresh_instance(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        tippers = make_building_tippers(engine)
        tippers.datastore.insert(obs(1.0))
        with pytest.raises(PolicyError):
            tippers.recover(2.0)
        engine.close()

    def test_round_trip_restores_preferences(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        tippers = make_building_tippers(engine)
        tippers.datastore.insert(obs(1.0, subject="mary"))
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        engine.close()

        engine2 = StorageEngine(str(tmp_path))
        rebuilt = make_building_tippers(engine2)
        report = rebuilt.recover(2.0)
        assert report.observations_restored == 1
        assert report.preferences_restored == 1
        prefs = rebuilt.preference_manager.preferences_of("mary")
        assert [p.preference_id for p in prefs] == ["pref-2-mary-location"]
        # The replayed round trip must not have re-logged anything.
        assert engine2.wal.appends == 0
        engine2.close()

    def test_withdrawn_preferences_stay_withdrawn(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        tippers = make_building_tippers(engine)
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        tippers.preference_manager.withdraw_all("mary")
        engine.close()

        engine2 = StorageEngine(str(tmp_path))
        rebuilt = make_building_tippers(engine2)
        report = rebuilt.recover(1.0)
        assert report.preferences_restored == 0
        assert rebuilt.preference_manager.preferences_of("mary") == []
        engine2.close()


class TestRecoveryScenario:
    def test_torn_storage_plan_crashes_and_recovers(self):
        report = run_recovery_scenario(plan_name="torn-storage", seed=11)
        assert report.crashed
        assert report.erase_done and report.preference_submitted
        assert report.recovery is not None
        assert report.ok, report.violations

    def test_crashy_storage_plan_crashes_and_recovers(self):
        report = run_recovery_scenario(plan_name="crashy-storage", seed=11)
        assert report.crashed
        assert report.ok, report.violations

    def test_same_seed_reports_are_byte_identical(self):
        first = run_recovery_scenario(plan_name="torn-storage", seed=23)
        second = run_recovery_scenario(plan_name="torn-storage", seed=23)
        assert first.report_text == second.report_text
        assert first.to_dict() == second.to_dict()

    def test_report_text_has_stable_shape(self):
        report = run_recovery_scenario(plan_name="torn-storage", seed=11)
        text = report.report_text
        assert text.endswith("result: OK\n")
        assert "recovery: snapshot_lsn=" in text
        assert "invariants: audit_prefix=True erasure=True retention=True" in text
