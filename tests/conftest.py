"""Shared fixtures: a small building, users, and a wired TIPPERS."""

from __future__ import annotations

import pytest

from repro.core.policy import catalog
from repro.sensors.environment import EnvironmentView, PresentDevice
from repro.spatial.model import SpatialModel, build_simple_building
from repro.tippers.bms import TIPPERS
from repro.users.profile import UserProfile


@pytest.fixture
def small_building() -> SpatialModel:
    """A 2-floor, 4-rooms-per-floor building named ``b``.

    Rooms: b-1001..b-1004 (floor 1), b-2001..b-2004 (floor 2); floors
    b-f1/b-f2 with corridors b-f1-corridor/b-f2-corridor.
    """
    return build_simple_building("b", floors=2, rooms_per_floor=4)


@pytest.fixture
def mary() -> UserProfile:
    return UserProfile(
        user_id="mary",
        name="Mary",
        groups=frozenset({"faculty"}),
        department="ics",
        office_id="b-1001",
        device_macs=("aa:bb:cc:00:00:01",),
    )


@pytest.fixture
def bob() -> UserProfile:
    return UserProfile(
        user_id="bob",
        name="Bob",
        groups=frozenset({"grad-student"}),
        department="ics",
        office_id="b-1002",
        device_macs=("aa:bb:cc:00:00:02",),
    )


class StaticWorld(EnvironmentView):
    """A hand-positioned world for unit tests."""

    def __init__(self) -> None:
        self.positions: dict = {}
        self.temperatures: dict = {}
        self.credentials: dict = {}

    def put(self, person_id: str, mac: str, space_id: str, has_iota: bool = True) -> None:
        self.positions.setdefault(space_id, []).append(
            PresentDevice(person_id=person_id, device_mac=mac, has_iota=has_iota)
        )

    def clear(self) -> None:
        self.positions.clear()

    def devices_in(self, space_id: str):
        return list(self.positions.get(space_id, []))

    def temperature_of(self, space_id: str) -> float:
        return self.temperatures.get(space_id, 70.0)

    def credential_presented(self, space_id: str):
        return self.credentials.pop(space_id, None)


@pytest.fixture
def world() -> StaticWorld:
    return StaticWorld()


@pytest.fixture
def tippers(small_building, mary, bob) -> TIPPERS:
    """TIPPERS over the small building with the paper's core policies.

    Policies: emergency location (mandatory), service sharing, comfort.
    Users: mary (office b-1001) and bob (office b-1002).  One WiFi AP
    and one motion sensor in each office.
    """
    bms = TIPPERS(small_building, "b", owner_name="UCI")
    bms.define_policy(catalog.policy_2_emergency_location("b"))
    bms.define_policy(catalog.policy_service_sharing("b"))
    bms.define_policy(
        catalog.policy_1_comfort(["b-1001", "b-1002", "b-1003", "b-1004"])
    )
    bms.add_user(mary)
    bms.add_user(bob)
    bms.deploy_sensor("wifi_access_point", "ap-1", "b-1001")
    bms.deploy_sensor("wifi_access_point", "ap-2", "b-1002")
    bms.deploy_sensor("motion_sensor", "motion-1", "b-1001")
    bms.deploy_sensor("motion_sensor", "motion-2", "b-1002")
    bms.deploy_sensor("temperature_sensor", "temp-1", "b-1001")
    bms.deploy_sensor("hvac_unit", "hvac-1", "b-1001")
    return bms
