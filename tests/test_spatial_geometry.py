"""Unit tests for repro.spatial.geometry."""

import math

import pytest

from repro.spatial.geometry import Box, Point


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 7.25)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_to_self_is_zero(self):
        p = Point(2.0, 3.0)
        assert p.distance_to(p) == 0.0


class TestBoxConstruction:
    def test_degenerate_box_rejected(self):
        with pytest.raises(ValueError):
            Box(5, 0, 0, 5)

    def test_zero_area_box_allowed(self):
        box = Box(1, 1, 1, 1)
        assert box.area == 0.0

    def test_dimensions(self):
        box = Box(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.area == 12
        assert box.center == Point(2.0, 1.5)


class TestContainment:
    def test_contains_point_interior_and_boundary(self):
        box = Box(0, 0, 10, 10)
        assert box.contains_point(Point(5, 5))
        assert box.contains_point(Point(0, 0))
        assert box.contains_point(Point(10, 10))
        assert not box.contains_point(Point(10.01, 5))

    def test_contains_box(self):
        outer = Box(0, 0, 10, 10)
        assert outer.contains_box(Box(2, 2, 8, 8))
        assert outer.contains_box(outer)
        assert not outer.contains_box(Box(5, 5, 11, 11))


class TestOverlapAndTouch:
    def test_overlapping_boxes(self):
        a, b = Box(0, 0, 5, 5), Box(4, 4, 9, 9)
        assert a.overlaps(b) and b.overlaps(a)

    def test_edge_sharing_is_touch_not_overlap(self):
        a, b = Box(0, 0, 5, 5), Box(5, 0, 10, 5)
        assert not a.overlaps(b)
        assert a.touches(b) and b.touches(a)

    def test_corner_sharing_is_touch(self):
        a, b = Box(0, 0, 5, 5), Box(5, 5, 10, 10)
        assert a.touches(b)

    def test_disjoint_boxes_neither_touch_nor_overlap(self):
        a, b = Box(0, 0, 1, 1), Box(3, 3, 4, 4)
        assert not a.overlaps(b)
        assert not a.touches(b)

    def test_intersection_of_overlapping(self):
        a, b = Box(0, 0, 5, 5), Box(3, 3, 9, 9)
        inter = a.intersection(b)
        assert inter == Box(3, 3, 5, 5)

    def test_intersection_of_disjoint_is_none(self):
        assert Box(0, 0, 1, 1).intersection(Box(2, 2, 3, 3)) is None

    def test_union_bounds(self):
        a, b = Box(0, 0, 1, 1), Box(4, 5, 6, 7)
        assert a.union_bounds(b) == Box(0, 0, 6, 7)


class TestExpand:
    def test_positive_margin(self):
        assert Box(0, 0, 2, 2).expand(1) == Box(-1, -1, 3, 3)

    def test_negative_margin_within_limits(self):
        assert Box(0, 0, 10, 10).expand(-2) == Box(2, 2, 8, 8)

    def test_negative_margin_inverting_rejected(self):
        with pytest.raises(ValueError):
            Box(0, 0, 2, 2).expand(-2)
