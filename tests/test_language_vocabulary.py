"""Unit tests for the controlled vocabularies."""

import pytest

from repro.core.language.vocabulary import (
    DATA_SENSITIVITY,
    PURPOSE_TAXONOMY,
    DataCategory,
    GranularityLevel,
    Purpose,
    sensitivity_of,
)
from repro.errors import SchemaError


class TestPurpose:
    def test_every_purpose_in_taxonomy(self):
        for purpose in Purpose:
            assert purpose in PURPOSE_TAXONOMY

    def test_taxonomy_sensitivities_in_range(self):
        for info in PURPOSE_TAXONOMY.values():
            assert 0.0 <= info.sensitivity <= 1.0

    def test_from_string(self):
        assert Purpose.from_string("emergency_response") is Purpose.EMERGENCY_RESPONSE

    def test_from_string_unknown(self):
        with pytest.raises(SchemaError):
            Purpose.from_string("world_domination")

    def test_sharing_purposes_marked(self):
        assert PURPOSE_TAXONOMY[Purpose.LAW_ENFORCEMENT].shared_beyond_building
        assert PURPOSE_TAXONOMY[Purpose.MARKETING].shared_beyond_building
        assert not PURPOSE_TAXONOMY[Purpose.COMFORT].shared_beyond_building


class TestDataCategory:
    def test_every_category_has_sensitivity(self):
        for category in DataCategory:
            assert category in DATA_SENSITIVITY

    def test_identity_most_sensitive(self):
        assert DATA_SENSITIVITY[DataCategory.IDENTITY] == max(DATA_SENSITIVITY.values())

    def test_from_string_unknown(self):
        with pytest.raises(SchemaError):
            DataCategory.from_string("favorite_color")


class TestGranularityLevel:
    def test_rank_order(self):
        ranks = [
            GranularityLevel.NONE,
            GranularityLevel.AGGREGATE,
            GranularityLevel.BUILDING,
            GranularityLevel.COARSE,
            GranularityLevel.PRECISE,
        ]
        assert [g.rank for g in ranks] == [0, 1, 2, 3, 4]

    def test_at_most(self):
        assert GranularityLevel.COARSE.at_most(GranularityLevel.PRECISE)
        assert not GranularityLevel.PRECISE.at_most(GranularityLevel.COARSE)
        assert GranularityLevel.NONE.at_most(GranularityLevel.NONE)

    def test_minimum(self):
        assert (
            GranularityLevel.minimum(GranularityLevel.PRECISE, GranularityLevel.COARSE)
            is GranularityLevel.COARSE
        )

    def test_from_string_unknown(self):
        with pytest.raises(SchemaError):
            GranularityLevel.from_string("super-fine")


class TestSensitivityOf:
    def test_in_unit_interval(self):
        for category in DataCategory:
            for purpose in Purpose:
                for granularity in GranularityLevel:
                    score = sensitivity_of(category, purpose, granularity)
                    assert 0.0 <= score <= 1.0

    def test_none_granularity_scores_zero(self):
        assert sensitivity_of(DataCategory.IDENTITY, Purpose.MARKETING, GranularityLevel.NONE) == 0.0

    def test_coarser_never_more_sensitive(self):
        for category in DataCategory:
            precise = sensitivity_of(category, Purpose.SECURITY, GranularityLevel.PRECISE)
            coarse = sensitivity_of(category, Purpose.SECURITY, GranularityLevel.COARSE)
            assert coarse <= precise

    def test_marketing_beats_comfort(self):
        marketing = sensitivity_of(DataCategory.LOCATION, Purpose.MARKETING)
        comfort = sensitivity_of(DataCategory.LOCATION, Purpose.COMFORT)
        assert marketing > comfort

    def test_no_purpose_uses_base(self):
        assert sensitivity_of(DataCategory.LOCATION) == pytest.approx(
            DATA_SENSITIVITY[DataCategory.LOCATION]
        )
