"""Unit tests for building policies."""

import pytest

from repro.core.language.duration import Duration
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.building import ActuationRule, BuildingPolicy
from repro.core.policy.conditions import EvaluationContext, TemporalCondition
from repro.errors import PolicyError
from repro.spatial.model import build_simple_building


def request(**overrides) -> DataRequest:
    defaults = dict(
        requester_id="building",
        requester_kind=RequesterKind.BUILDING,
        phase=DecisionPhase.CAPTURE,
        category=DataCategory.LOCATION,
        subject_id="mary",
        space_id="b-1001",
        timestamp=100.0,
        purpose=Purpose.EMERGENCY_RESPONSE,
        sensor_type="wifi_access_point",
    )
    defaults.update(overrides)
    return DataRequest(**defaults)


@pytest.fixture
def context():
    return EvaluationContext(spatial=build_simple_building("b", 2, 4))


@pytest.fixture
def policy():
    return BuildingPolicy(
        policy_id="p1",
        name="Test policy",
        description="d",
        categories=(DataCategory.LOCATION,),
        sensor_types=("wifi_access_point",),
        space_ids=("b",),
        phases=(DecisionPhase.CAPTURE, DecisionPhase.STORAGE),
        purposes=(Purpose.EMERGENCY_RESPONSE,),
        retention=Duration.parse("P6M"),
    )


class TestValidation:
    def test_empty_id_rejected(self):
        with pytest.raises(PolicyError):
            BuildingPolicy(policy_id="", name="n", description="d")

    def test_no_phases_rejected(self):
        with pytest.raises(PolicyError):
            BuildingPolicy(policy_id="p", name="n", description="d", phases=())

    def test_actuation_requires_settings(self):
        with pytest.raises(PolicyError):
            ActuationRule(sensor_type="hvac_unit", settings={})


class TestAppliesTo:
    def test_full_match(self, policy, context):
        assert policy.applies_to(request(), context)

    def test_phase_mismatch(self, policy, context):
        assert not policy.applies_to(request(phase=DecisionPhase.SHARING), context)

    def test_category_mismatch(self, policy, context):
        assert not policy.applies_to(
            request(category=DataCategory.ENERGY_USE), context
        )

    def test_sensor_type_mismatch(self, policy, context):
        assert not policy.applies_to(request(sensor_type="camera"), context)

    def test_purpose_mismatch(self, policy, context):
        assert not policy.applies_to(request(purpose=Purpose.MARKETING), context)

    def test_spatial_containment(self, policy, context):
        assert policy.applies_to(request(space_id="b-2003"), context)

    def test_unlocated_request_fails_spatial_selector(self, policy, context):
        assert not policy.applies_to(request(space_id=None), context)

    def test_wildcard_selectors_match_anything(self, context):
        wildcard = BuildingPolicy(policy_id="w", name="n", description="d")
        assert wildcard.applies_to(request(), context)
        assert wildcard.applies_to(
            request(category=DataCategory.ENERGY_USE, sensor_type=None, purpose=None),
            context,
        )

    def test_condition_gates_match(self, context):
        gated = BuildingPolicy(
            policy_id="g",
            name="n",
            description="d",
            condition=TemporalCondition(start_hour=9, end_hour=17),
        )
        assert gated.applies_to(request(timestamp=12 * 3600.0), context)
        assert not gated.applies_to(request(timestamp=20 * 3600.0), context)

    def test_space_match_without_model_uses_ids(self, policy):
        bare = EvaluationContext()
        assert policy.applies_to(request(space_id="b"), bare)
        assert not policy.applies_to(request(space_id="elsewhere"), bare)


class TestIntrospection:
    def test_collects_personal_data(self, policy):
        assert policy.collects_personal_data

    def test_energy_only_policy_not_personal(self):
        policy = BuildingPolicy(
            policy_id="e",
            name="n",
            description="d",
            categories=(DataCategory.ENERGY_USE, DataCategory.TEMPERATURE),
        )
        assert not policy.collects_personal_data

    def test_deny_policy_not_personal_collection(self, policy):
        denying = BuildingPolicy(
            policy_id="d",
            name="n",
            description="d",
            effect=Effect.DENY,
            categories=(DataCategory.LOCATION,),
        )
        assert not denying.collects_personal_data

    def test_retention_seconds(self, policy):
        assert policy.retention_seconds() == 6 * 30 * 86400
        unlimited = BuildingPolicy(policy_id="u", name="n", description="d")
        assert unlimited.retention_seconds() is None

    def test_str(self, policy):
        assert "p1" in str(policy)
