"""Keep the documentation honest: its JSON examples must validate."""

import json
import pathlib
import re

import pytest

from repro.core.language.document import (
    ResourcePolicyDocument,
    ServicePolicyDocument,
    SettingsDocument,
)
from repro.core.policy.serialization import preference_from_dict

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs" / "POLICY_LANGUAGE.md"


@pytest.fixture(scope="module")
def json_blocks():
    text = DOCS.read_text()
    blocks = re.findall(r"```json\n(.*?)```", text, re.S)
    assert blocks, "the language doc must contain JSON examples"
    return [json.loads(block) for block in blocks]


class TestLanguageDocExamples:
    def test_block_count(self, json_blocks):
        assert len(json_blocks) == 4

    def test_resource_example_parses(self, json_blocks):
        document = ResourcePolicyDocument.from_dict(json_blocks[0])
        assert document.resources[0].name == "Location tracking in DBH"
        assert document.resources[0].retention.isoformat() == "P6M"

    def test_service_example_parses(self, json_blocks):
        document = ServicePolicyDocument.from_dict(json_blocks[1])
        assert document.service_id == "Concierge"
        assert not document.third_party

    def test_settings_example_parses(self, json_blocks):
        document = SettingsDocument.from_dict(json_blocks[2])
        assert document.names == ["location"]
        assert [opt.key for opt in document.groups[0]] == ["fine", "coarse", "off"]

    def test_preference_example_parses(self, json_blocks):
        preference = preference_from_dict(json_blocks[3])
        assert preference.user_id == "mary"
        assert preference.condition.time_sensitive


class TestResilienceDocExamples:
    """docs/RESILIENCE.md's fault-plan example must stay loadable."""

    @pytest.fixture(scope="class")
    def plan_blocks(self):
        text = (DOCS.parent / "RESILIENCE.md").read_text()
        blocks = re.findall(r"```json\n(.*?)```", text, re.S)
        assert blocks, "the resilience doc must contain a fault-plan example"
        return [json.loads(block) for block in blocks]

    def test_fault_plan_example_parses(self, plan_blocks):
        from repro.faults import FaultKind, FaultPlan

        plan = FaultPlan.from_dict(plan_blocks[0])
        assert plan.name == "example-outage"
        assert plan.seed == 7
        kinds = {spec.kind for spec in plan.specs}
        assert FaultKind.CRASH in kinds
        assert FaultKind.POLICY_FETCH_FAIL in kinds

    def test_documented_defaults_match_the_code(self):
        from repro.net.resilience import CircuitBreaker, RetryPolicy

        text = (DOCS.parent / "RESILIENCE.md").read_text()
        policy = RetryPolicy()
        assert "`max_retries` | %d" % policy.max_retries in text
        assert "`base_delay_s` | %g" % policy.base_delay_s in text
        assert "`max_delay_s` | %g" % policy.max_delay_s in text
        breaker = CircuitBreaker()
        assert "`failure_threshold = %d`" % breaker.failure_threshold in text
        assert "`cooldown_rejections = %d`" % breaker.cooldown_rejections in text

    def test_trace_line_example_matches_format(self):
        from repro.faults import FaultKind, FaultTrace

        text = (DOCS.parent / "RESILIENCE.md").read_text()
        trace = FaultTrace()
        event = trace.record(42, "bus", FaultKind.DROP, "irr-1", "method=discover")
        assert event.line() in text


class TestReadmeQuickstart:
    def test_quickstart_code_runs(self):
        """The README's quickstart snippet must execute as written."""
        readme = (DOCS.parent.parent / "README.md").read_text()
        match = re.search(r"```python\n(.*?)```", readme, re.S)
        assert match, "README must contain the quickstart snippet"
        exec(compile(match.group(1), "<README quickstart>", "exec"), {})
