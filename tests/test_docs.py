"""Keep the documentation honest: its JSON examples must validate."""

import json
import pathlib
import re

import pytest

from repro.core.language.document import (
    ResourcePolicyDocument,
    ServicePolicyDocument,
    SettingsDocument,
)
from repro.core.policy.serialization import preference_from_dict

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs" / "POLICY_LANGUAGE.md"


@pytest.fixture(scope="module")
def json_blocks():
    text = DOCS.read_text()
    blocks = re.findall(r"```json\n(.*?)```", text, re.S)
    assert blocks, "the language doc must contain JSON examples"
    return [json.loads(block) for block in blocks]


class TestLanguageDocExamples:
    def test_block_count(self, json_blocks):
        assert len(json_blocks) == 4

    def test_resource_example_parses(self, json_blocks):
        document = ResourcePolicyDocument.from_dict(json_blocks[0])
        assert document.resources[0].name == "Location tracking in DBH"
        assert document.resources[0].retention.isoformat() == "P6M"

    def test_service_example_parses(self, json_blocks):
        document = ServicePolicyDocument.from_dict(json_blocks[1])
        assert document.service_id == "Concierge"
        assert not document.third_party

    def test_settings_example_parses(self, json_blocks):
        document = SettingsDocument.from_dict(json_blocks[2])
        assert document.names == ["location"]
        assert [opt.key for opt in document.groups[0]] == ["fine", "coarse", "off"]

    def test_preference_example_parses(self, json_blocks):
        preference = preference_from_dict(json_blocks[3])
        assert preference.user_id == "mary"
        assert preference.condition.time_sensitive


class TestReadmeQuickstart:
    def test_quickstart_code_runs(self):
        """The README's quickstart snippet must execute as written."""
        readme = (DOCS.parent.parent / "README.md").read_text()
        match = re.search(r"```python\n(.*?)```", readme, re.S)
        assert match, "README must contain the quickstart snippet"
        exec(compile(match.group(1), "<README quickstart>", "exec"), {})
