"""Keep the documentation honest: its JSON examples must validate."""

import json
import pathlib
import re

import pytest

from repro.core.language.document import (
    ResourcePolicyDocument,
    ServicePolicyDocument,
    SettingsDocument,
)
from repro.core.policy.serialization import preference_from_dict

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs" / "POLICY_LANGUAGE.md"


@pytest.fixture(scope="module")
def json_blocks():
    text = DOCS.read_text()
    blocks = re.findall(r"```json\n(.*?)```", text, re.S)
    assert blocks, "the language doc must contain JSON examples"
    return [json.loads(block) for block in blocks]


class TestLanguageDocExamples:
    def test_block_count(self, json_blocks):
        assert len(json_blocks) == 4

    def test_resource_example_parses(self, json_blocks):
        document = ResourcePolicyDocument.from_dict(json_blocks[0])
        assert document.resources[0].name == "Location tracking in DBH"
        assert document.resources[0].retention.isoformat() == "P6M"

    def test_service_example_parses(self, json_blocks):
        document = ServicePolicyDocument.from_dict(json_blocks[1])
        assert document.service_id == "Concierge"
        assert not document.third_party

    def test_settings_example_parses(self, json_blocks):
        document = SettingsDocument.from_dict(json_blocks[2])
        assert document.names == ["location"]
        assert [opt.key for opt in document.groups[0]] == ["fine", "coarse", "off"]

    def test_preference_example_parses(self, json_blocks):
        preference = preference_from_dict(json_blocks[3])
        assert preference.user_id == "mary"
        assert preference.condition.time_sensitive


class TestResilienceDocExamples:
    """docs/RESILIENCE.md's fault-plan example must stay loadable."""

    @pytest.fixture(scope="class")
    def plan_blocks(self):
        text = (DOCS.parent / "RESILIENCE.md").read_text()
        blocks = re.findall(r"```json\n(.*?)```", text, re.S)
        assert blocks, "the resilience doc must contain a fault-plan example"
        return [json.loads(block) for block in blocks]

    def test_fault_plan_example_parses(self, plan_blocks):
        from repro.faults import FaultKind, FaultPlan

        plan = FaultPlan.from_dict(plan_blocks[0])
        assert plan.name == "example-outage"
        assert plan.seed == 7
        kinds = {spec.kind for spec in plan.specs}
        assert FaultKind.CRASH in kinds
        assert FaultKind.POLICY_FETCH_FAIL in kinds

    def test_documented_defaults_match_the_code(self):
        from repro.net.resilience import CircuitBreaker, RetryPolicy

        text = (DOCS.parent / "RESILIENCE.md").read_text()
        policy = RetryPolicy()
        assert "`max_retries` | %d" % policy.max_retries in text
        assert "`base_delay_s` | %g" % policy.base_delay_s in text
        assert "`max_delay_s` | %g" % policy.max_delay_s in text
        breaker = CircuitBreaker()
        assert "`failure_threshold = %d`" % breaker.failure_threshold in text
        assert "`cooldown_rejections = %d`" % breaker.cooldown_rejections in text

    def test_trace_line_example_matches_format(self):
        from repro.faults import FaultKind, FaultTrace

        text = (DOCS.parent / "RESILIENCE.md").read_text()
        trace = FaultTrace()
        event = trace.record(42, "bus", FaultKind.DROP, "irr-1", "method=discover")
        assert event.line() in text

    def test_documented_overload_defaults_match_the_code(self):
        from repro.net.admission import AdmissionController
        from repro.tippers.sensor_manager import SensorHealthSupervisor

        text = (DOCS.parent / "RESILIENCE.md").read_text()
        controller = AdmissionController()
        assert "capacity `%d`" % controller.queue_capacity in text
        assert "**high watermark**\n(`%g`)" % controller.high_watermark in text
        assert "**shed watermark** (`%g`)" % controller.shed_watermark in text
        assert (
            "capacity `%g`, refill `%g`/step"
            % (controller.principal_capacity,
               controller.principal_refill_per_step)
            in text
        )
        supervisor = SensorHealthSupervisor()
        assert "miss threshold `%d`" % supervisor.miss_threshold in text
        assert "probe rate\n`%g`" % supervisor.probe_rate in text

    def test_documented_priority_classes_match_the_code(self):
        from repro.net.admission import DEFAULT_METHOD_PRIORITIES, Priority

        text = (DOCS.parent / "RESILIENCE.md").read_text()
        table_rows = [
            line for line in text.splitlines()
            if line.startswith("| `CRITICAL`")
            or line.startswith("| `NORMAL`")
            or line.startswith("| `DEFERRABLE`")
        ]
        assert len(table_rows) == 3
        for row in table_rows:
            priority = Priority[row.split("`")[1]]
            for method in re.findall(r"`([a-z_]+)`", row.split("|")[2]):
                assert DEFAULT_METHOD_PRIORITIES[method] is priority, (
                    "doc lists %r as %s but the code says %s"
                    % (method, priority, DEFAULT_METHOD_PRIORITIES[method])
                )


class TestStorageDocExamples:
    """docs/STORAGE.md's worked examples must stay true to the code."""

    @pytest.fixture(scope="class")
    def storage_text(self):
        return (DOCS.parent / "STORAGE.md").read_text()

    def test_frame_encoding_example_runs(self, storage_text):
        blocks = re.findall(r"```python\n(.*?)```", storage_text, re.S)
        assert blocks, "the storage doc must contain the worked frame example"
        for block in blocks:
            exec(compile(block, "<STORAGE.md example>", "exec"), {})

    def test_manifest_example_is_loadable(self, storage_text, tmp_path):
        from repro.storage.snapshot import manifest_path, read_manifest

        blocks = [json.loads(b) for b in re.findall(r"```json\n(.*?)```", storage_text, re.S)]
        assert blocks, "the storage doc must show a MANIFEST.json example"
        with open(manifest_path(str(tmp_path)), "w") as handle:
            json.dump(blocks[0], handle)
        assert read_manifest(str(tmp_path)).snapshot_lsn == blocks[0]["snapshot_lsn"]

    def test_documented_constants_match_the_code(self, storage_text):
        from repro.storage.wal import (
            DEFAULT_SEGMENT_BYTES,
            FRAME_HEADER,
            SEGMENT_MAGIC,
        )

        assert "`%s`" % SEGMENT_MAGIC.decode() in storage_text
        assert "DEFAULT_SEGMENT_BYTES = %d" % DEFAULT_SEGMENT_BYTES in storage_text
        assert FRAME_HEADER.size == 16  # the documented frame-header table

    def test_documented_metrics_exist(self, storage_text):
        import pathlib

        durable = pathlib.Path(DOCS.parent.parent / "src/repro/storage/durable.py")
        source = durable.read_text()
        for metric in (
            "storage_wal_appends_total",
            "storage_wal_bytes_total",
            "storage_wal_segments_sealed_total",
            "storage_compactions_total",
        ):
            assert metric in storage_text
            assert metric in source


class TestAnalysisDocExamples:
    """docs/ANALYSIS.md's flow-baseline example must stay loadable."""

    @pytest.fixture(scope="class")
    def analysis_text(self):
        return (DOCS.parent / "ANALYSIS.md").read_text()

    def test_baseline_example_parses(self, analysis_text):
        from repro.analysis.flow import FLOW_BASELINE_VERSION, FlowBaseline

        # Some of the doc's json blocks are annotated with // comments
        # for the reader; only strictly-parseable blocks are candidates.
        candidates = []
        for block in re.findall(r"```json\n(.*?)```", analysis_text, re.S):
            try:
                candidates.append(json.loads(block))
            except ValueError:
                continue
        examples = [
            block for block in candidates
            if isinstance(block, dict) and "schema_version" in block
        ]
        assert examples, "the analysis doc must show a flow-baseline example"
        baseline = FlowBaseline.from_dict(examples[0])
        assert examples[0]["schema_version"] == FLOW_BASELINE_VERSION
        assert baseline.entries
        assert baseline.entries[0].rule_id == "F001"
        assert baseline.entries[0].justification.strip()

    def test_every_flow_rule_documented(self, analysis_text):
        for rule_id in ("F001", "F002", "F003", "F004", "F005", "F006"):
            assert "### %s" % rule_id in analysis_text, (
                "flow rule %s needs its own section" % rule_id
            )

    def test_makefile_wires_lint_flow(self):
        makefile = (DOCS.parent.parent / "Makefile").read_text()
        assert "lint-flow:" in makefile
        assert "lint --flow" in makefile

    def test_readme_mentions_flow_verification(self):
        readme = (DOCS.parent.parent / "README.md").read_text()
        assert "--flow" in readme
        assert "flow_baseline.json" in readme


class TestReadmeQuickstart:
    def test_quickstart_code_runs(self):
        """The README's quickstart snippet must execute as written."""
        readme = (DOCS.parent.parent / "README.md").read_text()
        match = re.search(r"```python\n(.*?)```", readme, re.S)
        assert match, "README must contain the quickstart snippet"
        exec(compile(match.group(1), "<README quickstart>", "exec"), {})


class TestBenchmarksDoc:
    """docs/BENCHMARKS.md's example record and tables must stay true."""

    @pytest.fixture(scope="class")
    def bench_text(self):
        return (DOCS.parent / "BENCHMARKS.md").read_text()

    def test_example_record_validates(self, bench_text):
        from repro.bench import BenchmarkEntry, BenchRecord

        blocks = [
            json.loads(b)
            for b in re.findall(r"```json\n(.*?)```", bench_text, re.S)
        ]
        assert blocks, "the benchmarks doc must show an example record"
        example = blocks[0]
        # The doc trims the record to one benchmark for readability;
        # validate the shown entry through the real schema, then the
        # whole record with the entry replicated across the suite.
        from repro.bench import BENCHMARK_NAMES

        shown = example["benchmarks"]["scale_enforcement"]
        BenchmarkEntry.from_dict(shown, "scale_enforcement")
        example["benchmarks"] = {
            name: dict(shown, name=name) for name in BENCHMARK_NAMES
        }
        record = BenchRecord.from_dict(example)
        assert record.scale == "ci"

    def test_documented_schema_version_matches(self, bench_text):
        from repro.bench import BENCH_SCHEMA_VERSION

        assert "## Record schema (version %d)" % BENCH_SCHEMA_VERSION in bench_text

    def test_documented_tolerances_match_defaults(self, bench_text):
        from repro.bench import Tolerances

        defaults = Tolerances()
        assert (
            "factor %.1f, floor %.1f us"
            % (defaults.latency_factor, defaults.latency_floor_us)
        ) in bench_text
        assert "factor %.1f" % defaults.throughput_factor in bench_text
        assert "slack %.2f" % defaults.rate_slack in bench_text
        assert "factor %.1f, slack %d B" % (
            defaults.wal_factor, defaults.wal_slack_bytes
        ) in bench_text
        assert "factor %.1f" % defaults.rss_factor in bench_text

    def test_documented_scales_exist(self, bench_text):
        from repro.bench import SCALES

        for name in SCALES:
            assert "`%s`" % name in bench_text

    def test_documented_soak_cost_table_matches(self, bench_text):
        from repro.simulation.costmodel import (
            COST_TABLE_SOURCE_RECORD_ID,
            DEFAULT_COST_TABLE,
        )

        assert "%.1fus" % DEFAULT_COST_TABLE.us_per_decision in bench_text
        assert "rules_p99 * %.3fus" % DEFAULT_COST_TABLE.us_per_rule in bench_text
        assert (
            "queue_depth_p99 * %.1fus" % DEFAULT_COST_TABLE.us_per_queued_call
            in bench_text
        )
        assert (
            "%d bytes per principal" % DEFAULT_COST_TABLE.principal_state_bytes
            in bench_text
        )
        # The docs must name the record the derivation pins.
        assert "BENCH_%04d" % COST_TABLE_SOURCE_RECORD_ID in bench_text

    def test_committed_trajectory_validates(self):
        from repro.bench import latest_record, list_records

        root = str(DOCS.parent.parent)
        records = list_records(root)
        assert records, "the repo must commit at least BENCH_0001.json"
        assert records[0][0] == 1
        baseline = latest_record(root)
        baseline.validate()
        for entry in baseline.benchmarks.values():
            assert entry.decision_latency.count > 0

    def test_makefile_wires_bench_and_soak(self):
        makefile = (DOCS.parent.parent / "Makefile").read_text()
        assert "bench:" in makefile
        assert "soak:" in makefile
        assert "repro bench" in makefile

    def test_readme_mentions_the_trajectory(self):
        readme = (DOCS.parent.parent / "README.md").read_text()
        assert "BENCH_" in readme
        assert "perf trajectory" in readme.lower()


class TestFederationDoc:
    """docs/FEDERATION.md must stay true to the federation code."""

    @pytest.fixture(scope="class")
    def federation_text(self):
        return (DOCS.parent / "FEDERATION.md").read_text()

    def test_worked_example_runs(self, federation_text):
        blocks = re.findall(r"```python\n(.*?)```", federation_text, re.S)
        assert blocks, "the federation doc must contain the roaming example"
        for block in blocks:
            exec(compile(block, "<FEDERATION.md example>", "exec"), {})

    def test_endpoint_prefixes_match_the_code(self, federation_text):
        from repro.federation import (
            REGISTRY_ENDPOINT_PREFIX,
            SHARD_ENDPOINT_PREFIX,
        )

        # The doc spells the concrete endpoint names for building "b".
        assert "`%sb`" % SHARD_ENDPOINT_PREFIX in federation_text
        assert "`%sb`" % REGISTRY_ENDPOINT_PREFIX in federation_text

    def test_documented_vnode_default_matches(self, federation_text):
        from repro.federation.ring import DEFAULT_VNODES

        assert "(default %d)" % DEFAULT_VNODES in federation_text

    def test_roaming_and_dsar_methods_are_critical(self):
        from repro.net.admission import DEFAULT_METHOD_PRIORITIES, Priority

        for method in ("register_roaming", "dsar_report", "dsar_erase"):
            assert DEFAULT_METHOD_PRIORITIES[method] is Priority.CRITICAL

    def test_cli_and_makefile_are_wired(self, federation_text):
        assert "python -m repro federate" in federation_text
        makefile = (DOCS.parent.parent / "Makefile").read_text()
        assert "federate:" in makefile
        readme = (DOCS.parent.parent / "README.md").read_text()
        assert "docs/FEDERATION.md" in readme
        assert "python -m repro federate" in readme

    def test_migration_methods_are_critical(self, federation_text):
        from repro.net.admission import DEFAULT_METHOD_PRIORITIES, Priority

        for method in (
            "migrate_export", "migrate_import", "migrate_finalize",
        ):
            assert DEFAULT_METHOD_PRIORITIES[method] is Priority.CRITICAL
            assert "`%s`" % method in federation_text

    def test_rebalance_cli_and_makefile_are_wired(self, federation_text):
        assert "python -m repro rebalance" in federation_text
        assert "migrating:<from>:<to>" in federation_text
        makefile = (DOCS.parent.parent / "Makefile").read_text()
        assert "rebalance:" in makefile
        readme = (DOCS.parent.parent / "README.md").read_text()
        assert "python -m repro rebalance" in readme
