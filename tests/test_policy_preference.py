"""Unit tests for user preferences and service permissions."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.conditions import EvaluationContext, TemporalCondition
from repro.core.policy.preference import ServicePermission, UserPreference
from repro.errors import PolicyError
from repro.spatial.model import build_simple_building


def request(**overrides) -> DataRequest:
    defaults = dict(
        requester_id="concierge",
        requester_kind=RequesterKind.BUILDING_SERVICE,
        phase=DecisionPhase.SHARING,
        category=DataCategory.LOCATION,
        subject_id="mary",
        space_id="b-1001",
        timestamp=100.0,
        purpose=Purpose.PROVIDING_SERVICE,
    )
    defaults.update(overrides)
    return DataRequest(**defaults)


@pytest.fixture
def context():
    return EvaluationContext(spatial=build_simple_building("b", 2, 4))


def preference(**overrides) -> UserPreference:
    defaults = dict(
        preference_id="pref-1",
        user_id="mary",
        description="d",
        effect=Effect.DENY,
        categories=(DataCategory.LOCATION,),
    )
    defaults.update(overrides)
    return UserPreference(**defaults)


class TestValidation:
    def test_empty_ids_rejected(self):
        with pytest.raises(PolicyError):
            preference(preference_id="")
        with pytest.raises(PolicyError):
            preference(user_id="")

    def test_strength_bounds(self):
        with pytest.raises(PolicyError):
            preference(strength=1.5)
        preference(strength=0.0)

    def test_no_phases_rejected(self):
        with pytest.raises(PolicyError):
            preference(phases=())


class TestAppliesTo:
    def test_only_own_subject(self, context):
        assert preference().applies_to(request(), context)
        assert not preference().applies_to(request(subject_id="bob"), context)
        assert not preference().applies_to(request(subject_id=None), context)

    def test_phase_selector(self, context):
        p = preference(phases=(DecisionPhase.SHARING,))
        assert not p.applies_to(request(phase=DecisionPhase.CAPTURE), context)

    def test_requester_id_selector(self, context):
        p = preference(requester_ids=("concierge",))
        assert p.applies_to(request(), context)
        assert not p.applies_to(request(requester_id="other"), context)

    def test_requester_kind_selector(self, context):
        p = preference(requester_kinds=(RequesterKind.THIRD_PARTY_SERVICE,))
        assert not p.applies_to(request(), context)
        assert p.applies_to(
            request(requester_kind=RequesterKind.THIRD_PARTY_SERVICE), context
        )

    def test_spatial_selector_with_containment(self, context):
        p = preference(space_ids=("b-f1",))
        assert p.applies_to(request(space_id="b-1001"), context)
        assert not p.applies_to(request(space_id="b-2001"), context)

    def test_temporal_condition(self, context):
        after_hours = preference(
            condition=TemporalCondition(start_hour=18, end_hour=8)
        )
        assert after_hours.applies_to(request(timestamp=20 * 3600.0), context)
        assert not after_hours.applies_to(request(timestamp=12 * 3600.0), context)


class TestSemantics:
    def test_is_opt_out(self):
        assert preference(effect=Effect.DENY).is_opt_out
        assert preference(
            effect=Effect.ALLOW, granularity_cap=GranularityLevel.NONE
        ).is_opt_out
        assert not preference(
            effect=Effect.ALLOW, granularity_cap=GranularityLevel.COARSE
        ).is_opt_out

    def test_permitted_granularity(self):
        assert preference(effect=Effect.DENY).permitted_granularity() is GranularityLevel.NONE
        capped = preference(effect=Effect.ALLOW, granularity_cap=GranularityLevel.COARSE)
        assert capped.permitted_granularity() is GranularityLevel.COARSE


class TestServicePermission:
    def test_grant_to_preference(self, context):
        permission = ServicePermission(
            user_id="mary",
            service_id="concierge",
            category=DataCategory.LOCATION,
            granularity=GranularityLevel.PRECISE,
        )
        p = permission.to_preference()
        assert p.effect is Effect.ALLOW
        assert p.applies_to(request(), context)
        assert not p.applies_to(request(requester_id="other-service"), context)

    def test_denial_to_preference(self):
        permission = ServicePermission(
            user_id="mary",
            service_id="food",
            category=DataCategory.LOCATION,
            granularity=GranularityLevel.PRECISE,
            granted=False,
        )
        p = permission.to_preference()
        assert p.effect is Effect.DENY
        assert p.granularity_cap is GranularityLevel.NONE

    def test_preference_id_stable(self):
        permission = ServicePermission(
            user_id="mary",
            service_id="concierge",
            category=DataCategory.LOCATION,
            granularity=GranularityLevel.PRECISE,
        )
        assert permission.to_preference().preference_id == permission.to_preference().preference_id

    def test_empty_ids_rejected(self):
        with pytest.raises(PolicyError):
            ServicePermission(
                user_id="",
                service_id="s",
                category=DataCategory.LOCATION,
                granularity=GranularityLevel.PRECISE,
            )
