"""Unit tests for the typed policy documents (Figures 2-4)."""

import json

import pytest

from repro.core.language.document import (
    ObservationDescription,
    ResourceDescription,
    ResourcePolicyDocument,
    ServicePolicyDocument,
    SettingOptionDescription,
    SettingsDocument,
)
from repro.core.language.duration import Duration
from repro.core.language.vocabulary import GranularityLevel, Purpose
from repro.errors import SchemaError


def figure2_resource() -> ResourceDescription:
    return ResourceDescription(
        name="Location tracking in DBH",
        spatial_name="Donald Bren Hall",
        spatial_type="Building",
        owner_name="UCI",
        owner_more_info="https://uci.edu",
        sensor_type="WiFi Access Point",
        sensor_description="Installed inside the building and covers rooms and corridors",
        purposes={"emergency response": "Location is stored continuously"},
        observations=(
            ObservationDescription(
                name="MAC address of the device",
                description="If your device is connected to a WiFi Access Point in "
                "DBH, its MAC address is stored",
            ),
        ),
        retention=Duration.parse("P6M"),
    )


class TestResourcePolicyDocument:
    def test_matches_figure2_structure(self):
        data = ResourcePolicyDocument([figure2_resource()]).to_dict()
        resource = data["resources"][0]
        assert resource["info"] == {"name": "Location tracking in DBH"}
        assert resource["context"]["location"]["spatial"] == {
            "name": "Donald Bren Hall",
            "type": "Building",
        }
        assert resource["context"]["location"]["location_owner"]["name"] == "UCI"
        assert resource["sensor"]["type"] == "WiFi Access Point"
        assert "emergency response" in resource["purpose"]
        assert resource["retention"] == {"duration": "P6M"}

    def test_json_round_trip(self):
        document = ResourcePolicyDocument([figure2_resource()])
        restored = ResourcePolicyDocument.from_json(document.to_json())
        assert restored == document

    def test_invalid_json_rejected(self):
        with pytest.raises(SchemaError):
            ResourcePolicyDocument.from_json("{not json")

    def test_empty_resources_rejected(self):
        with pytest.raises(SchemaError):
            ResourcePolicyDocument([])

    def test_resource_without_purposes_rejected(self):
        with pytest.raises(SchemaError):
            ResourceDescription(
                name="x",
                spatial_name="B",
                spatial_type="Building",
                sensor_type="t",
                purposes={},
                observations=(ObservationDescription(name="o"),),
            )

    def test_resource_without_observations_rejected(self):
        with pytest.raises(SchemaError):
            ResourceDescription(
                name="x",
                spatial_name="B",
                spatial_type="Building",
                sensor_type="t",
                purposes={"security": "d"},
                observations=(),
            )

    def test_named_purposes_normalizes_spaces(self):
        assert figure2_resource().named_purposes() == [Purpose.EMERGENCY_RESPONSE]

    def test_named_purposes_skips_unknown(self):
        resource = ResourceDescription(
            name="x",
            spatial_name="B",
            spatial_type="Building",
            sensor_type="t",
            purposes={"frobnicating": "d"},
            observations=(ObservationDescription(name="o"),),
        )
        assert resource.named_purposes() == []

    def test_string_purpose_value_parsed(self):
        data = ResourcePolicyDocument([figure2_resource()]).to_dict()
        data["resources"][0]["purpose"]["emergency response"] = "plain string"
        restored = ResourcePolicyDocument.from_dict(data)
        assert restored.resources[0].purposes["emergency response"] == "plain string"


class TestServicePolicyDocument:
    def figure3(self) -> ServicePolicyDocument:
        return ServicePolicyDocument(
            service_id="Concierge",
            observations=[
                ObservationDescription(
                    name="wifi_access_point",
                    description="Whenever one of your devices connects to the DBH "
                    "WiFi its MAC address is stored",
                ),
                ObservationDescription(
                    name="bluetooth_beacon",
                    description="When you have Concierge installed and your "
                    "bluetooth senses a beacon, the room you are in is stored",
                ),
            ],
            purposes={
                "providing_service": "Your location data is used to give you "
                "directions around the Bren Hall."
            },
        )

    def test_matches_figure3_structure(self):
        data = self.figure3().to_dict()
        assert data["purpose"]["service_id"] == "Concierge"
        assert [o["name"] for o in data["observations"]] == [
            "wifi_access_point",
            "bluetooth_beacon",
        ]

    def test_round_trip(self):
        document = self.figure3()
        assert ServicePolicyDocument.from_json(document.to_json()) == document

    def test_requires_service_id(self):
        with pytest.raises(SchemaError):
            ServicePolicyDocument(
                service_id="",
                observations=[ObservationDescription(name="x")],
                purposes={"providing_service": "d"},
            )

    def test_developer_block_round_trips(self):
        document = ServicePolicyDocument(
            service_id="food",
            observations=[ObservationDescription(name="location")],
            purposes={"providing_service": "d"},
            developer_name="LunchCo",
            third_party=True,
        )
        restored = ServicePolicyDocument.from_dict(document.to_dict())
        assert restored.third_party
        assert restored.developer_name == "LunchCo"


class TestSettingsDocument:
    def figure4(self) -> SettingsDocument:
        return SettingsDocument(
            [
                [
                    SettingOptionDescription(
                        "fine grained location sensing", "wifi=opt-in"
                    ),
                    SettingOptionDescription(
                        "coarse grained location sensing", "wifi=opt-in"
                    ),
                    SettingOptionDescription("No location sensing", "wifi=opt-out"),
                ]
            ]
        )

    def test_matches_figure4_structure(self):
        data = self.figure4().to_dict()
        select = data["settings"][0]["select"]
        assert select[0] == {
            "description": "fine grained location sensing",
            "on": "wifi=opt-in",
        }
        assert select[2]["on"] == "wifi=opt-out"

    def test_round_trip(self):
        document = self.figure4()
        assert SettingsDocument.from_json(document.to_json()) == document

    def test_empty_group_rejected(self):
        with pytest.raises(SchemaError):
            SettingsDocument([[]])

    def test_names_length_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            SettingsDocument(
                [[SettingOptionDescription("a", "x=1")]], names=["a", "b"]
            )

    def test_key_survives_round_trip(self):
        document = SettingsDocument(
            [[SettingOptionDescription("a", "x=1", key="fine")]]
        )
        restored = SettingsDocument.from_dict(document.to_dict())
        assert restored.groups[0][0].key == "fine"


class TestObservationDescription:
    def test_granularity_and_inferred_round_trip(self):
        obs = ObservationDescription(
            name="occupancy",
            granularity=GranularityLevel.COARSE,
            inferred=("occupancy", "presence"),
        )
        restored = ObservationDescription.from_dict(obs.to_dict())
        assert restored == obs

    def test_minimal_dict(self):
        assert ObservationDescription(name="x").to_dict() == {"name": "x"}
