"""Unit tests for the sensor manager (capture path)."""

import pytest

from repro.core.enforcement.engine import EnforcementEngine
from repro.core.policy import catalog
from repro.core.policy.conditions import EvaluationContext
from repro.errors import SensorError
from repro.sensors.base import Observation
from repro.spatial.model import build_simple_building
from repro.tippers.datastore import Datastore
from repro.tippers.sensor_manager import SensorManager
from repro.users.profile import UserDirectory, UserProfile

from tests.conftest import StaticWorld


@pytest.fixture
def setup():
    spatial = build_simple_building("b", 2, 4)
    engine = EnforcementEngine(context=EvaluationContext(spatial=spatial))
    engine.store.add_policy(catalog.policy_2_emergency_location("b"))
    directory = UserDirectory()
    directory.add(
        UserProfile(user_id="mary", name="Mary", device_macs=("aa:bb",))
    )
    datastore = Datastore()
    manager = SensorManager(engine, datastore, directory=directory)
    return manager, datastore, engine


class TestDeployment:
    def test_deploy_and_lookup(self, setup):
        manager, _, _ = setup
        sensor = manager.deploy("wifi_access_point", "ap-1", "b-1001")
        assert manager.sensor("ap-1") is sensor
        assert manager.count() == 1

    def test_unknown_type_rejected(self, setup):
        manager, _, _ = setup
        with pytest.raises(SensorError):
            manager.deploy("sonar", "s-1", "b-1001")

    def test_subsystem_grouping(self, setup):
        manager, _, _ = setup
        manager.deploy("wifi_access_point", "ap-1", "b-1001")
        manager.deploy("camera", "cam-1", "b-f1-corridor")
        assert {s.name for s in manager.subsystems()} == {"network", "camera"}
        assert len(manager.subsystem("network")) == 1

    def test_sensors_in_space_with_type_filter(self, setup):
        manager, _, _ = setup
        manager.deploy("wifi_access_point", "ap-1", "b-1001")
        manager.deploy("motion_sensor", "m-1", "b-1001")
        assert len(manager.sensors_in_space("b-1001")) == 2
        assert [s.sensor_id for s in manager.sensors_in_space("b-1001", "motion_sensor")] == ["m-1"]

    def test_unknown_sensor_lookup(self, setup):
        manager, _, _ = setup
        with pytest.raises(SensorError):
            manager.sensor("ghost")


class TestAttribution:
    def test_wifi_mac_resolved_to_owner(self, setup):
        manager, datastore, _ = setup
        manager.deploy("wifi_access_point", "ap-1", "b-1001")
        world = StaticWorld()
        world.put("mary", "aa:bb", "b-1001")
        manager.tick(10.0, world)
        stored = datastore.query(sensor_type="wifi_access_point")
        assert stored[0].subject_id == "mary"

    def test_unknown_mac_stays_unattributed(self, setup):
        manager, datastore, _ = setup
        manager.deploy("wifi_access_point", "ap-1", "b-1001")
        world = StaticWorld()
        world.put("stranger", "ff:ff", "b-1001")
        manager.tick(10.0, world)
        stored = datastore.query(sensor_type="wifi_access_point")
        assert stored[0].subject_id is None

    def test_already_attributed_passthrough(self, setup):
        manager, _, _ = setup
        obs = Observation.create(
            "x", "wifi_access_point", 0.0, "b-1001",
            {"device_mac": "aa:bb", "ap_mac": "a", "rssi": -1.0},
            subject_id="someone-else",
        )
        assert manager.attribute(obs).subject_id == "someone-else"


class TestCapturePath:
    def test_stats_account_for_drops(self, setup):
        manager, datastore, _ = setup
        manager.deploy("wifi_access_point", "ap-1", "b-1001")   # authorized
        manager.deploy("camera", "cam-1", "b-f1-corridor")      # not authorized
        world = StaticWorld()
        world.put("mary", "aa:bb", "b-1001")
        stats = manager.tick(10.0, world)
        assert stats.sampled == 2
        assert stats.stored == 1
        assert stats.dropped_capture == 1
        assert datastore.count() == 1

    def test_enforcement_disabled_stores_everything(self, setup):
        manager, datastore, _ = setup
        manager.enforce_capture = False
        manager.deploy("camera", "cam-1", "b-f1-corridor")
        stats = manager.tick(10.0, StaticWorld())
        assert stats.stored == 1
        assert datastore.count() == 1

    def test_ingest_single_observation(self, setup):
        manager, datastore, _ = setup
        obs = Observation.create(
            "ap-1", "wifi_access_point", 1.0, "b-1001",
            {"device_mac": "aa:bb", "ap_mac": "a", "rssi": -1.0},
        )
        stored = manager.ingest(obs)
        assert stored is not None
        assert stored.subject_id == "mary"
        assert datastore.count() == 1

    def test_cumulative_stats_merge(self, setup):
        manager, _, _ = setup
        manager.deploy("wifi_access_point", "ap-1", "b-1001")
        world = StaticWorld()
        world.put("mary", "aa:bb", "b-1001")
        manager.tick(10.0, world)
        manager.tick(100.0, world)
        assert manager.stats.sampled == 2
