"""Tests for the policy-checked social-ties query."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel
from repro.core.policy import catalog
from repro.core.policy.base import DecisionPhase, Effect, RequesterKind
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.preference import UserPreference
from repro.errors import ServiceError

SVC = ("concierge", RequesterKind.BUILDING_SERVICE)


def allow_ties_policy():
    return BuildingPolicy(
        policy_id="ties-sharing",
        name="Social ties sharing",
        description="d",
        categories=(DataCategory.SOCIAL_TIES,),
        phases=(DecisionPhase.SHARING,),
    )


def colocate(tippers, world, pairs, rounds=3):
    """Repeatedly put pairs of users in the same room."""
    for round_no in range(rounds):
        now = 43200.0 + round_no * 400.0
        world.clear()
        for (person, mac, space) in pairs:
            world.put(person, mac, space)
        tippers.tick(now, world)
    return 43200.0 + rounds * 400.0


@pytest.fixture
def populated(tippers, world):
    tippers.define_policy(allow_ties_policy())
    now = colocate(
        tippers,
        world,
        [
            ("mary", "aa:bb:cc:00:00:01", "b-1001"),
            ("bob", "aa:bb:cc:00:00:02", "b-1001"),
        ],
    )
    return tippers, now


class TestFrequentContacts:
    def test_tie_released_when_both_allow(self, populated):
        tippers, now = populated
        response = tippers.request_manager.frequent_contacts(*SVC, "mary", now)
        assert response.allowed
        assert [c["contact"] for c in response.value] == ["bob"]
        assert response.value[0]["encounters"] >= 2

    def test_subject_optout_denies_query(self, populated):
        tippers, now = populated
        tippers.submit_preference(
            UserPreference(
                preference_id="no-ties-mary",
                user_id="mary",
                description="d",
                effect=Effect.DENY,
                categories=(DataCategory.SOCIAL_TIES,),
                phases=(DecisionPhase.SHARING,),
            )
        )
        response = tippers.request_manager.frequent_contacts(*SVC, "mary", now)
        assert not response.allowed

    def test_contact_optout_hides_the_pair(self, populated):
        tippers, now = populated
        tippers.submit_preference(
            UserPreference(
                preference_id="no-ties-bob",
                user_id="bob",
                description="d",
                effect=Effect.DENY,
                categories=(DataCategory.SOCIAL_TIES,),
                phases=(DecisionPhase.SHARING,),
            )
        )
        response = tippers.request_manager.frequent_contacts(*SVC, "mary", now)
        assert response.allowed
        assert response.value == [], "bob's opt-out protects the pair"

    def test_no_policy_means_denied(self, tippers, world):
        now = colocate(
            tippers,
            world,
            [
                ("mary", "aa:bb:cc:00:00:01", "b-1001"),
                ("bob", "aa:bb:cc:00:00:02", "b-1001"),
            ],
        )
        response = tippers.request_manager.frequent_contacts(*SVC, "mary", now)
        assert not response.allowed

    def test_unknown_user_rejected(self, populated):
        tippers, now = populated
        with pytest.raises(ServiceError):
            tippers.request_manager.frequent_contacts(*SVC, "ghost", now)

    def test_no_colocation_no_contacts(self, tippers, world):
        tippers.define_policy(allow_ties_policy())
        now = colocate(
            tippers,
            world,
            [
                ("mary", "aa:bb:cc:00:00:01", "b-1001"),
                ("bob", "aa:bb:cc:00:00:02", "b-1002"),
            ],
        )
        response = tippers.request_manager.frequent_contacts(*SVC, "mary", now)
        assert response.allowed
        assert response.value == []
