"""Unit tests for the storage engine and durable wrappers."""

import pytest

from repro.core.enforcement.audit import AuditRecord
from repro.core.language.vocabulary import GranularityLevel
from repro.core.policy.base import DecisionPhase, Effect
from repro.errors import SimulatedCrash, StorageError
from repro.obs.metrics import MetricsRegistry
from repro.sensors.base import Observation
from repro.storage import records
from repro.storage.durable import DurableAuditLog, DurableDatastore, StorageEngine
from repro.storage.recovery import replay_directory


def obs(timestamp, subject=None):
    return Observation.create(
        sensor_id="s1",
        sensor_type="temperature",
        timestamp=timestamp,
        space_id="r1",
        payload={"v": timestamp},
        subject_id=subject,
    )


def audit_record(timestamp):
    return AuditRecord(
        timestamp=timestamp,
        requester_id="svc",
        phase=DecisionPhase.SHARING,
        category="location",
        subject_id="mary",
        space_id="r1",
        effect=Effect.ALLOW,
        granularity=GranularityLevel.PRECISE,
        reasons=("test",),
        notify_user=False,
    )


class TestRecordCodec:
    def test_round_trip(self):
        payload = records.encode_record(records.OBS, {"a": 1, "b": [2, 3]})
        record_type, data = records.decode_record(payload)
        assert record_type == records.OBS
        assert data == {"a": 1, "b": [2, 3]}

    def test_canonical_encoding_is_stable(self):
        first = records.encode_record(records.PREF, {"b": 1, "a": 2})
        second = records.encode_record(records.PREF, {"a": 2, "b": 1})
        assert first == second

    def test_garbage_raises(self):
        with pytest.raises(StorageError):
            records.decode_record(b"not json")
        with pytest.raises(StorageError):
            records.decode_record(b'["not", "an", "object"]')


class TestStorageEngine:
    def test_log_returns_lsns(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        assert engine.log_observation(obs(1.0)) == 1
        assert engine.log_forget("mary") == 2
        assert engine.log_audit(audit_record(1.0)) == 3
        engine.close()

    def test_replaying_suppresses_logging(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        engine.replaying = True
        assert engine.log_observation(obs(1.0)) is None
        assert engine.wal.appends == 0
        engine.close()

    def test_taps_see_records_before_the_write(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        seen = []
        engine.taps.append(lambda rt, data: seen.append(rt))
        engine.install_fault_plane(lambda op, rt: "torn_write")
        with pytest.raises(SimulatedCrash):
            engine.log_observation(obs(1.0))
        assert seen == [records.OBS]  # tapped even though the write tore
        engine.close()

    def test_storage_metrics_emitted(self, tmp_path):
        metrics = MetricsRegistry()
        engine = StorageEngine(str(tmp_path), metrics=metrics)
        engine.log_observation(obs(1.0))
        engine.log_audit(audit_record(1.0))
        assert metrics.total("storage_wal_appends_total", {"type": "obs"}) == 1
        assert metrics.total("storage_wal_appends_total", {"type": "audit"}) == 1
        assert metrics.total("storage_wal_bytes_total") > 0
        engine.compact()
        assert metrics.total("storage_compactions_total") == 1
        engine.close()


class TestDurableDatastore:
    def test_insert_is_logged_then_applied(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        datastore = DurableDatastore(engine)
        datastore.insert(obs(1.0, subject="mary"))
        assert datastore.count() == 1
        assert engine.wal.appends == 1
        engine.close()
        state = replay_directory(str(tmp_path))
        assert state.datastore.count() == 1
        assert state.datastore.query(subject_id="mary")

    def test_guarded_failure_writes_nothing(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        datastore = DurableDatastore(engine)
        datastore.install_fault_plane(lambda op, detail: True)
        with pytest.raises(StorageError):
            datastore.insert(obs(1.0))
        assert datastore.count() == 0
        assert engine.wal.appends == 0  # guard fires before the WAL
        engine.close()

    def test_crash_mid_append_leaves_memory_a_prefix_of_the_log(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        datastore = DurableDatastore(engine)
        datastore.insert(obs(1.0))
        engine.install_fault_plane(lambda op, rt: "crash_mid_append")
        with pytest.raises(SimulatedCrash):
            datastore.insert(obs(2.0))
        # Memory missed the second insert; the log has it.  Memory is
        # the prefix, the log is the truth.
        assert datastore.count() == 1
        engine.close()
        state = replay_directory(str(tmp_path))
        assert state.datastore.count() == 2

    def test_forget_is_durable(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        datastore = DurableDatastore(engine)
        for index in range(4):
            datastore.insert(obs(float(index), subject="mary"))
        assert datastore.forget_subject("mary") == 4
        engine.close()
        state = replay_directory(str(tmp_path))
        assert state.datastore.count() == 0
        assert state.report.erasures_applied == 1


class TestDurableAuditLog:
    def test_append_round_trips_through_recovery(self, tmp_path):
        engine = StorageEngine(str(tmp_path))
        audit = DurableAuditLog(engine)
        audit.append(audit_record(1.0))
        audit.append(audit_record(2.0))
        engine.close()
        state = replay_directory(str(tmp_path))
        assert list(state.audit) == list(audit)
