"""Unit tests for repro.spatial.model."""

import pytest

from repro.errors import SpatialError
from repro.spatial.geometry import Box, Point
from repro.spatial.model import (
    Space,
    SpaceType,
    SpatialModel,
    build_simple_building,
    iter_room_ids,
)


@pytest.fixture
def model() -> SpatialModel:
    m = SpatialModel()
    m.add("bldg", "Building", SpaceType.BUILDING, footprint=Box(0, 0, 100, 50))
    m.add("f1", "Floor 1", SpaceType.FLOOR, parent_id="bldg", footprint=Box(0, 0, 100, 50))
    m.add("r101", "Room 101", SpaceType.ROOM, parent_id="f1", footprint=Box(0, 0, 20, 20))
    m.add("r102", "Room 102", SpaceType.ROOM, parent_id="f1", footprint=Box(20, 0, 40, 20))
    m.add("r103", "Room 103", SpaceType.ROOM, parent_id="f1", footprint=Box(60, 0, 80, 20))
    return m


class TestConstruction:
    def test_duplicate_id_rejected(self, model):
        with pytest.raises(SpatialError):
            model.add("r101", "dup", SpaceType.ROOM, parent_id="f1")

    def test_unknown_parent_rejected(self, model):
        with pytest.raises(SpatialError):
            model.add("x", "X", SpaceType.ROOM, parent_id="nope")

    def test_child_coarser_than_parent_rejected(self, model):
        with pytest.raises(SpatialError):
            model.add("b2", "Building 2", SpaceType.BUILDING, parent_id="r101")

    def test_empty_id_rejected(self):
        with pytest.raises(SpatialError):
            Space(space_id="", name="x", space_type=SpaceType.ROOM)

    def test_lookup_unknown_space(self, model):
        with pytest.raises(SpatialError):
            model.get("missing")

    def test_len_and_contains(self, model):
        assert len(model) == 5
        assert "r101" in model
        assert "missing" not in model


class TestHierarchy:
    def test_parent_and_children(self, model):
        assert model.parent("r101").space_id == "f1"
        assert model.parent("bldg") is None
        assert {s.space_id for s in model.children("f1")} == {"r101", "r102", "r103"}

    def test_ancestors_order(self, model):
        assert [s.space_id for s in model.ancestors("r101")] == ["f1", "bldg"]

    def test_descendants(self, model):
        assert {s.space_id for s in model.descendants("bldg")} == {
            "f1",
            "r101",
            "r102",
            "r103",
        }

    def test_leaves_under(self, model):
        assert {s.space_id for s in model.leaves_under("bldg")} == {
            "r101",
            "r102",
            "r103",
        }
        assert [s.space_id for s in model.leaves_under("r101")] == ["r101"]

    def test_common_ancestor(self, model):
        assert model.common_ancestor("r101", "r102").space_id == "f1"
        assert model.common_ancestor("r101", "r101").space_id == "r101"


class TestOperators:
    def test_contains_reflexive(self, model):
        assert model.contains("r101", "r101")

    def test_contains_transitive(self, model):
        assert model.contains("bldg", "r101")
        assert model.contains("f1", "r101")
        assert not model.contains("r101", "f1")

    def test_contains_unknown_raises(self, model):
        with pytest.raises(SpatialError):
            model.contains("missing", "missing")

    def test_neighboring_by_footprint(self, model):
        assert model.neighboring("r101", "r102")  # share edge x=20
        assert not model.neighboring("r101", "r103")  # gap between

    def test_neighboring_not_reflexive(self, model):
        assert not model.neighboring("r101", "r101")

    def test_neighboring_fallback_to_siblings(self):
        m = SpatialModel()
        m.add("b", "B", SpaceType.BUILDING)
        m.add("x", "X", SpaceType.ROOM, parent_id="b")
        m.add("y", "Y", SpaceType.ROOM, parent_id="b")
        assert m.neighboring("x", "y")

    def test_overlap_containment_counts(self, model):
        assert model.overlap("bldg", "r101")
        assert model.overlap("r101", "bldg")

    def test_overlap_disjoint_rooms(self, model):
        assert not model.overlap("r101", "r103")


class TestGranularitySupport:
    def test_ancestor_at_level(self, model):
        assert model.ancestor_at_level("r101", SpaceType.FLOOR).space_id == "f1"
        assert model.ancestor_at_level("r101", SpaceType.BUILDING).space_id == "bldg"
        assert model.ancestor_at_level("r101", SpaceType.ROOM).space_id == "r101"
        assert model.ancestor_at_level("bldg", SpaceType.ROOM) is None

    def test_locate_point_prefers_finest(self, model):
        found = model.locate_point(Point(5, 5))
        assert found.space_id == "r101"

    def test_locate_point_outside_everything(self, model):
        assert model.locate_point(Point(500, 500)) is None

    def test_locate_point_in_floor_but_no_room(self, model):
        found = model.locate_point(Point(50, 40))
        assert found.space_id in ("f1", "bldg")


class TestValidate:
    def test_valid_model_passes(self, model):
        model.validate()

    def test_asymmetric_link_detected(self, model):
        model.get("r101").parent_id = "r102"
        with pytest.raises(SpatialError):
            model.validate()

    def test_escaping_footprint_detected(self, model):
        model.get("r101").footprint = Box(-50, -50, -10, -10)
        with pytest.raises(SpatialError):
            model.validate()


class TestBuildSimpleBuilding:
    def test_structure_counts(self):
        m = build_simple_building("t", floors=3, rooms_per_floor=6)
        assert len(m.spaces_of_type(SpaceType.FLOOR)) == 3
        assert len(m.spaces_of_type(SpaceType.ROOM)) == 18
        assert len(m.spaces_of_type(SpaceType.CORRIDOR)) == 3
        m.validate()

    def test_invalid_params_rejected(self):
        with pytest.raises(SpatialError):
            build_simple_building("t", floors=0, rooms_per_floor=4)

    def test_iter_room_ids(self):
        m = build_simple_building("t", floors=1, rooms_per_floor=2)
        assert sorted(iter_room_ids(m)) == ["t-1001", "t-1002"]

    def test_room_ids_follow_floor_numbering(self):
        m = build_simple_building("t", floors=2, rooms_per_floor=2)
        rooms = sorted(iter_room_ids(m))
        assert rooms == ["t-1001", "t-1002", "t-2001", "t-2002"]
