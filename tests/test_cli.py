"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "wifi_access_point" in out
        assert "total sensors: 790" in out

    def test_lint_clean_set(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure1", "--population", "8"]) == 0
        out = capsys.readouterr().out
        assert "step  1" in out
        assert "after opt-out: DENIED" in out

    def test_figure1_unconcerned(self, capsys):
        assert main(["figure1", "--population", "8", "--persona", "unconcerned"]) == 0
        assert "after opt-out: ALLOWED" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestObsCommand:
    def test_obs_prints_snapshot(self, capsys):
        assert main(["obs", "--population", "6", "--ticks", "2"]) == 0
        out = capsys.readouterr().out
        # Bus call and drop counters.
        assert "bus_calls_total" in out
        assert "bus_dropped_total" in out
        # Enforcement decisions by effect.
        assert "enforcement_decisions_total{effect=allow}" in out
        assert "enforcement_decisions_total{effect=deny}" in out
        # Cache hit ratio.
        assert "enforcement cache hit ratio:" in out
        # At least one latency histogram with percentiles.
        assert "enforcement_decide_seconds" in out
        assert "p50=" in out and "p95=" in out and "p99=" in out
        # Span trees.
        assert "slowest traces" in out

    def test_obs_json_export(self, capsys, tmp_path):
        path = tmp_path / "snapshot.json"
        assert main(
            ["obs", "--population", "6", "--ticks", "2", "--json", str(path), "--traces", "0"]
        ) == 0
        import json

        snapshot = json.loads(path.read_text())
        names = {entry["name"] for entry in snapshot["counters"]}
        assert "bus_attempts_total" in names
        assert "enforcement_decisions_total" in names
        assert any(
            entry["name"] == "enforcement_decide_seconds"
            for entry in snapshot["histograms"]
        )

    def test_obs_does_not_pollute_default_registry(self, capsys):
        from repro.obs import get_registry

        before = get_registry()
        assert main(["obs", "--population", "6", "--ticks", "2"]) == 0
        assert get_registry() is before
