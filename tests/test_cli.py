"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "wifi_access_point" in out
        assert "total sensors: 790" in out

    def test_lint_clean_set(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure1", "--population", "8"]) == 0
        out = capsys.readouterr().out
        assert "step  1" in out
        assert "after opt-out: DENIED" in out

    def test_figure1_unconcerned(self, capsys):
        assert main(["figure1", "--population", "8", "--persona", "unconcerned"]) == 0
        assert "after opt-out: ALLOWED" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
