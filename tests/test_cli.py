"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "wifi_access_point" in out
        assert "total sensors: 790" in out

    def test_lint_clean_set(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure1", "--population", "8"]) == 0
        out = capsys.readouterr().out
        assert "step  1" in out
        assert "after opt-out: DENIED" in out

    def test_figure1_unconcerned(self, capsys):
        assert main(["figure1", "--population", "8", "--persona", "unconcerned"]) == 0
        assert "after opt-out: ALLOWED" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestRecoverCommands:
    def seed_directory(self, tmp_path):
        from repro.sensors.base import Observation
        from repro.storage import DurableDatastore, StorageEngine

        engine = StorageEngine(str(tmp_path))
        datastore = DurableDatastore(engine)
        datastore.insert(
            Observation.create(
                sensor_id="s1",
                sensor_type="temperature",
                timestamp=1.0,
                space_id="r1",
                payload={"v": 1},
            )
        )
        engine.close()

    def test_recover_replays_a_directory(self, capsys, tmp_path):
        self.seed_directory(tmp_path)
        assert main(["recover", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "recovery: snapshot_lsn=0 last_lsn=1 frames_replayed=1" in out
        assert "restored: observations=1" in out

    def test_recover_json(self, capsys, tmp_path):
        import json

        self.seed_directory(tmp_path)
        assert main(["recover", "--dir", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["observations_restored"] == 1
        assert report["torn"] is False

    def test_recover_rejects_non_storage_directory(self, capsys, tmp_path):
        assert main(["recover", "--dir", str(tmp_path)]) == 2
        assert "not a storage directory" in capsys.readouterr().err

    def test_chaos_recover_scenario(self, capsys, tmp_path):
        report_path = tmp_path / "report.txt"
        assert main(
            ["chaos", "--recover", "--plan", "torn-storage", "--seed", "11",
             "--report-out", str(report_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "result: OK" in out
        assert report_path.read_text() == out

    def test_chaos_recover_json(self, capsys):
        import json

        assert main(
            ["chaos", "--recover", "--plan", "crashy-storage", "--seed", "11", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["crashed"] is True
        assert report["invariants"] == {
            "audit_prefix": True, "erasure": True, "retention": True,
        }


class TestObsCommand:
    def test_obs_prints_snapshot(self, capsys):
        assert main(["obs", "--population", "6", "--ticks", "2"]) == 0
        out = capsys.readouterr().out
        # Bus call and drop counters.
        assert "bus_calls_total" in out
        assert "bus_dropped_total" in out
        # Enforcement decisions by effect.
        assert "enforcement_decisions_total{effect=allow}" in out
        assert "enforcement_decisions_total{effect=deny}" in out
        # Cache hit ratio.
        assert "enforcement cache hit ratio:" in out
        # At least one latency histogram with percentiles.
        assert "enforcement_decide_seconds" in out
        assert "p50=" in out and "p95=" in out and "p99=" in out
        # Span trees.
        assert "slowest traces" in out

    def test_obs_json_export(self, capsys, tmp_path):
        path = tmp_path / "snapshot.json"
        assert main(
            ["obs", "--population", "6", "--ticks", "2", "--json", str(path), "--traces", "0"]
        ) == 0
        import json

        snapshot = json.loads(path.read_text())
        names = {entry["name"] for entry in snapshot["counters"]}
        assert "bus_attempts_total" in names
        assert "enforcement_decisions_total" in names
        assert any(
            entry["name"] == "enforcement_decide_seconds"
            for entry in snapshot["histograms"]
        )

    def test_obs_does_not_pollute_default_registry(self, capsys):
        from repro.obs import get_registry

        before = get_registry()
        assert main(["obs", "--population", "6", "--ticks", "2"]) == 0
        assert get_registry() is before
