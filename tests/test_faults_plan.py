"""Unit tests for fault specs, plans, traces, and the named registry."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    BUS_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultTrace,
    build_plan,
    describe_plans,
    named_plans,
)


class TestFaultSpecValidation:
    def test_negative_every_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.DROP, every=-1)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.DROP, start=-1)

    def test_empty_window_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.DROP, start=5, stop=5)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.DROP, rate=1.5)

    def test_latency_fault_needs_duration(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.LATENCY)

    def test_negative_latency_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.DROP, latency_s=-1.0)


class TestFaultSpecScheduling:
    def test_at_steps_fires_exactly_there(self):
        spec = FaultSpec(kind=FaultKind.DROP, at_steps=(2, 5))
        fires = [s for s in range(8) if spec.scheduled_at(s)]
        assert fires == [2, 5]

    def test_every_with_phase(self):
        spec = FaultSpec(kind=FaultKind.DROP, every=3, phase=1)
        fires = [s for s in range(10) if spec.scheduled_at(s)]
        assert fires == [1, 4, 7]

    def test_window_bounds_are_half_open(self):
        spec = FaultSpec(kind=FaultKind.CRASH, start=2, stop=4)
        assert [s for s in range(6) if spec.in_window(s)] == [2, 3]

    def test_bare_spec_fires_on_every_windowed_step(self):
        spec = FaultSpec(kind=FaultKind.CRASH, start=1, stop=3)
        assert spec.unconditional
        assert all(spec.scheduled_at(s) for s in range(5))

    def test_rate_spec_is_not_unconditional(self):
        assert not FaultSpec(kind=FaultKind.DROP, rate=0.5).unconditional

    def test_target_matching(self):
        spec = FaultSpec(kind=FaultKind.DROP, target="irr-1")
        assert spec.matches_target(("irr-1", "discover"))
        assert not spec.matches_target(("tippers", "discover"))
        assert FaultSpec(kind=FaultKind.DROP).matches_target(("anything",))


class TestFaultPlanMatching:
    def test_kind_filter(self):
        plan = FaultPlan([FaultSpec(kind=FaultKind.SENSOR_STALL)], seed=0)
        assert plan.matching(0, BUS_KINDS, ("x",)) == []

    def test_rate_draws_are_deterministic(self):
        def fire_pattern():
            plan = FaultPlan([FaultSpec(kind=FaultKind.DROP, rate=0.5)], seed=9)
            return [bool(plan.matching(s, BUS_KINDS, ("x",))) for s in range(50)]

        first, second = fire_pattern(), fire_pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_different_seeds_differ(self):
        def pattern(seed):
            plan = FaultPlan([FaultSpec(kind=FaultKind.DROP, rate=0.5)], seed=seed)
            return [bool(plan.matching(s, BUS_KINDS, ("x",))) for s in range(64)]

        assert pattern(1) != pattern(2)

    def test_out_of_window_rate_spec_consumes_no_randomness(self):
        spec = FaultSpec(kind=FaultKind.DROP, rate=0.5, start=100)
        windowed = FaultPlan([spec], seed=3)
        for step in range(100):
            assert windowed.matching(step, BUS_KINDS, ("x",)) == []
        # The RNG was never consumed, so step 100 onward matches a
        # fresh plan queried only at those steps.
        fresh = FaultPlan([spec], seed=3)
        assert [
            bool(windowed.matching(s, BUS_KINDS, ("x",))) for s in range(100, 120)
        ] == [bool(fresh.matching(s, BUS_KINDS, ("x",))) for s in range(100, 120)]


class TestSerialization:
    def test_roundtrip(self):
        plan = FaultPlan(
            [
                FaultSpec(kind=FaultKind.DROP, target="irr-1", rate=0.3),
                FaultSpec(kind=FaultKind.LATENCY, every=5, phase=2, latency_s=0.1),
                FaultSpec(kind=FaultKind.CRASH, target="tippers", start=3, stop=9),
            ],
            seed=42,
            name="roundtrip",
        )
        restored = FaultPlan.from_dict(plan.to_dict())
        assert restored.name == "roundtrip"
        assert restored.seed == 42
        assert restored.specs == plan.specs

    def test_bad_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec.from_dict({"kind": "meteor-strike"})

    def test_plan_needs_specs(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"name": "empty", "specs": []})

    def test_plan_must_be_object(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict(["not", "a", "plan"])


class TestFaultTrace:
    def test_lines_are_stable_and_ordered(self):
        trace = FaultTrace()
        trace.record(3, "bus", FaultKind.DROP, "irr-1", "method=discover")
        trace.record(7, "datastore", FaultKind.STORE_WRITE_FAIL, "insert")
        assert trace.lines() == [
            "step=000003 site=bus kind=drop target=irr-1 method=discover",
            "step=000007 site=datastore kind=store_write_fail target=insert",
        ]
        assert trace.to_text() == "\n".join(trace.lines()) + "\n"
        assert len(trace) == 2
        assert trace.counts() == {"drop": 1, "store_write_fail": 1}


class TestNamedPlans:
    def test_registry_is_sorted_and_complete(self):
        assert named_plans() == (
            "campus-storm",
            "crashy-storage",
            "datastore-brownout",
            "flaky-registry",
            "lossy",
            "monkey",
            "policy-outage",
            "ring-change",
            "rush-hour",
            "torn-storage",
        )

    def test_every_plan_builds_and_roundtrips(self):
        for name in named_plans():
            plan = build_plan(name, seed=5)
            assert plan.name == name
            assert len(plan) >= 1
            assert FaultPlan.from_dict(plan.to_dict()).specs == plan.specs

    def test_unknown_plan_rejected(self):
        with pytest.raises(FaultError):
            build_plan("volcano")

    def test_describe_plans_covers_all(self):
        lines = describe_plans()
        assert len(lines) == len(named_plans())
        for name in named_plans():
            assert any(line.startswith(name + ":") for line in lines)
