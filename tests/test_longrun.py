"""Unit tests for the multi-day scenario runner."""

import pytest

pytestmark = pytest.mark.slow

from repro.core.reasoner.resolution import ResolutionStrategy
from repro.simulation.longrun import WeekReport, run_week


@pytest.fixture(scope="module")
def result():
    return run_week(days=2, population=12, ticks_per_day=8, seed=9)


class TestRunWeek:
    def test_observations_flow(self, result):
        assert result.observations_sampled > 0
        assert 0 < result.observations_stored < result.observations_sampled

    def test_services_ran(self, result):
        assert result.queries_total > 0
        assert result.deliveries_attempted > 0

    def test_settings_configured_for_everyone(self, result):
        assert sum(result.selections.values()) == result.population

    def test_audit_consistent(self, result):
        assert result.audit_summary["total"] >= result.queries_total

    def test_denial_rate_bounds(self, result):
        assert 0.0 <= result.denial_rate <= 1.0

    def test_deterministic_for_seed(self):
        a = run_week(days=1, population=8, ticks_per_day=6, seed=3)
        b = run_week(days=1, population=8, ticks_per_day=6, seed=3)
        assert a.observations_stored == b.observations_stored
        assert a.selections == b.selections
        assert a.queries_denied == b.queries_denied

    def test_building_wins_denies_nothing(self):
        result = run_week(
            days=1,
            population=10,
            ticks_per_day=6,
            seed=4,
            strategy=ResolutionStrategy.BUILDING_WINS,
        )
        assert result.queries_denied == 0

    def test_cache_does_not_change_outcomes(self):
        cached = run_week(days=1, population=8, ticks_per_day=6, seed=5, cache_decisions=True)
        plain = run_week(days=1, population=8, ticks_per_day=6, seed=5, cache_decisions=False)
        assert cached.observations_stored == plain.observations_stored
        assert cached.queries_denied == plain.queries_denied
        assert cached.selections == plain.selections
