"""The differential harness: reference interpreter vs compiled engine.

:class:`EnginePair` owns two enforcement engines built from identical
rule stores -- the reference
:class:`~repro.core.enforcement.engine.EnforcementEngine` (the oracle)
and a :class:`~repro.core.enforcement.compiled.CompiledEnforcementEngine`
constructed through the public ``EnforcementEngine(compiled=True)``
switch.  Every mutation is applied to both stores; every request is
decided by both engines and the outcomes compared field by field.

Normalization: injected policy-fetch failures embed the fault
injector's logical step number in the fail-closed reason string, and
the two engines drive *separate* injectors whose counters need not
agree -- so reasons are compared with ``step <n>`` rewritten to
``step N``.  Nothing else is normalized; effects, granularities, rule
id orderings, notify flags, and audit trails must match exactly.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Tuple

from repro.core.enforcement.audit import AuditLog, AuditRecord
from repro.core.enforcement.compiled import CompiledEnforcementEngine
from repro.core.enforcement.engine import Decision, EnforcementEngine
from repro.core.policy.base import Effect
from repro.core.policy.conditions import EvaluationContext
from repro.core.reasoner.index import PolicyIndex
from repro.core.reasoner.resolution import Resolution, ResolutionStrategy
from repro.obs.metrics import MetricsRegistry
from repro.spatial.model import build_simple_building

_STEP = re.compile(r"step \d+")

_SPATIAL = build_simple_building("b", floors=2, rooms_per_floor=4)

#: Profile groups referenced by the shared ``ProfileCondition``
#: strategy; carol and dan stay unprofiled on purpose.
USER_PROFILES = {
    "mary": frozenset({"faculty"}),
    "bob": frozenset({"grad-student"}),
}


def make_context() -> EvaluationContext:
    return EvaluationContext(spatial=_SPATIAL, user_profiles=dict(USER_PROFILES))


def normalize_reasons(reasons: Iterable[str]) -> Tuple[str, ...]:
    """Reasons with injector step numbers masked (see module docs)."""
    return tuple(_STEP.sub("step N", reason) for reason in reasons)


def resolution_key(resolution: Resolution) -> tuple:
    return (
        resolution.effect,
        resolution.granularity,
        resolution.policy_ids,
        resolution.preference_ids,
        resolution.notify_user,
        normalize_reasons(resolution.reasons),
    )


def audit_key(record: AuditRecord) -> tuple:
    return record[:8] + (normalize_reasons(record.reasons), record.notify_user)


class EnginePair:
    """Reference and compiled engines fed identical rules and requests."""

    def __init__(
        self,
        policies: Iterable = (),
        preferences: Iterable = (),
        strategy: ResolutionStrategy = ResolutionStrategy.NEGOTIATE,
        shard_capacity: int = 4096,
        max_shards: int = 16384,
    ) -> None:
        self.reference_metrics = MetricsRegistry()
        self.compiled_metrics = MetricsRegistry()
        self.reference = EnforcementEngine(
            store=PolicyIndex(),
            context=make_context(),
            strategy=strategy,
            audit=AuditLog(metrics=self.reference_metrics),
            metrics=self.reference_metrics,
        )
        self.compiled = EnforcementEngine(
            store=PolicyIndex(),
            context=make_context(),
            strategy=strategy,
            audit=AuditLog(metrics=self.compiled_metrics),
            metrics=self.compiled_metrics,
            compiled=True,
            shard_capacity=shard_capacity,
            max_shards=max_shards,
        )
        assert isinstance(self.compiled, CompiledEnforcementEngine)
        self.policy_ids: List[str] = []
        for policy in policies:
            self.add_policy(policy)
        for preference in preferences:
            self.add_preference(preference)

    # ------------------------------------------------------------------
    # Mutations (applied to both stores)
    # ------------------------------------------------------------------
    def add_policy(self, policy) -> None:
        self.reference.store.add_policy(policy)
        self.compiled.store.add_policy(policy)
        self.policy_ids.append(policy.policy_id)

    def remove_policy_at(self, index: int) -> Optional[str]:
        """Remove the ``index % len``-th live policy from both stores."""
        if not self.policy_ids:
            return None
        policy_id = self.policy_ids.pop(index % len(self.policy_ids))
        self.reference.store.remove_policy(policy_id)
        self.compiled.store.remove_policy(policy_id)
        return policy_id

    def add_preference(self, preference) -> None:
        self.reference.store.add_preference(preference)
        self.compiled.store.add_preference(preference)

    def withdraw_user(self, user_id: str) -> None:
        self.reference.store.remove_preferences_of(user_id)
        self.compiled.store.remove_preferences_of(user_id)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def decide(self, request, notes: Tuple[str, ...] = ()) -> Tuple[Decision, Decision]:
        expected = self.reference.decide(request, notes)
        actual = self.compiled.decide(request, notes)
        assert resolution_key(actual.resolution) == resolution_key(
            expected.resolution
        ), "divergence on %r:\ncompiled:  %r\nreference: %r" % (
            request,
            actual.resolution,
            expected.resolution,
        )
        return expected, actual

    def apply(self, step) -> None:
        """Apply one generated ``(op, payload)`` step (see strategies)."""
        op, payload = step
        if op == "request":
            self.decide(payload)
        elif op == "add_preference":
            self.add_preference(payload)
        elif op == "withdraw_user":
            self.withdraw_user(payload)
        elif op == "add_policy":
            self.add_policy(payload)
        elif op == "remove_policy":
            self.remove_policy_at(payload)
        else:  # pragma: no cover - strategy bug
            raise AssertionError("unknown step %r" % (op,))

    # ------------------------------------------------------------------
    # Whole-run checks
    # ------------------------------------------------------------------
    def assert_trails_equal(self) -> None:
        reference = [audit_key(r) for r in self.reference.audit]
        compiled = [audit_key(r) for r in self.compiled.audit]
        assert compiled == reference, "audit trails diverged"

    def assert_counters_equal(self) -> None:
        for effect in Effect:
            labels = {"effect": effect.value}
            assert self.compiled_metrics.total(
                "enforcement_decisions_total", labels
            ) == self.reference_metrics.total(
                "enforcement_decisions_total", labels
            ), ("decision counter diverged for %s" % effect.value)
        assert self.compiled_metrics.histogram(
            "enforcement_decide_seconds"
        ).count == self.reference_metrics.histogram(
            "enforcement_decide_seconds"
        ).count, "latency histogram sample counts diverged"
