"""Strategies for the differential suite.

Builds on :mod:`tests.property.strategies` (the shared rule/request
generators) and adds the *mutation* vocabulary: a differential run is a
stream of steps, each either a request to decide or a store mutation
that must invalidate exactly the right compiled shards.
"""

from __future__ import annotations

import dataclasses

from hypothesis import strategies as st

from repro.core.reasoner.resolution import ResolutionStrategy
from tests.property.strategies import (
    USERS,
    conditions,
    policies as plain_policies,
    preferences as plain_preferences,
    requests,
)

strategies = st.sampled_from(list(ResolutionStrategy))

#: Rules with a condition attached (including TemporalCondition, which
#: makes matching requests uncacheable, and ProfileCondition, which is
#: compiled but context-dependent) mixed with unconditioned ones.
policies = st.one_of(
    plain_policies,
    st.builds(
        lambda policy, condition: dataclasses.replace(
            policy, condition=condition
        ),
        plain_policies,
        conditions,
    ),
)
preferences = st.one_of(
    plain_preferences,
    st.builds(
        lambda preference, condition: dataclasses.replace(
            preference, condition=condition
        ),
        plain_preferences,
        conditions,
    ),
)

#: Requests whose subjects are always concrete users, so preference
#: mutations have someone to hit.
subject_requests = requests.filter(lambda r: r.subject_id is not None)


def _mk_request(request):
    return ("request", request)


def _mk_add_preference(preference):
    return ("add_preference", preference)


def _mk_withdraw(user_id):
    return ("withdraw_user", user_id)


def _mk_add_policy(policy):
    return ("add_policy", policy)


def _mk_remove_policy(index):
    # Resolved against the pair's live policy ids at apply time.
    return ("remove_policy", index)


#: One step of a differential run.  Requests dominate (the point is to
#: exercise warm compiled rows), with mutations sprinkled in so rows go
#: stale mid-stream.
steps = st.one_of(
    requests.map(_mk_request),
    requests.map(_mk_request),
    requests.map(_mk_request),
    preferences.map(_mk_add_preference),
    st.sampled_from(USERS).map(_mk_withdraw),
    policies.map(_mk_add_policy),
    st.integers(0, 7).map(_mk_remove_policy),
)

runs = st.lists(steps, min_size=1, max_size=40)
