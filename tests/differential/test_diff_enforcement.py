"""Differential tests: compiled tables vs the reference interpreter.

Every test drives the :class:`~tests.differential.harness.EnginePair`
through generated workloads and asserts bit-for-bit equivalent
outcomes.  The example counts come from the profiles in ``conftest.py``
(``diff-ci`` runs >= 1000 generated cases across this module alone).
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, strategies as st

from repro.core.policy.base import Effect
from repro.faults import FaultInjector, FaultKind, FaultSpec, single_spec_plan
from tests.differential.harness import EnginePair
from tests.differential.strategies import (
    policies,
    preferences,
    requests,
    runs,
    strategies,
    subject_requests,
)


@given(
    policy_list=st.lists(policies, max_size=6),
    preference_list=st.lists(preferences, max_size=6),
    request_list=st.lists(requests, min_size=1, max_size=15),
)
def test_static_rules_two_passes(policy_list, preference_list, request_list):
    """Same stream twice: the second pass is served mostly from compiled
    rows and must not change a single outcome, audit record, or counter."""
    pair = EnginePair(policies=policy_list, preferences=preference_list)
    for _ in range(2):
        for request in request_list:
            pair.decide(request)
    pair.assert_trails_equal()
    pair.assert_counters_equal()


@given(
    policy_list=st.lists(policies, max_size=5),
    preference_list=st.lists(preferences, max_size=5),
    run=runs,
)
def test_mutation_interleavings(policy_list, preference_list, run):
    """Requests interleaved with policy/preference mutations: compiled
    rows must go stale exactly when the interpreter's answer changes."""
    pair = EnginePair(policies=policy_list, preferences=preference_list)
    for step in run:
        pair.apply(step)
    pair.assert_trails_equal()
    pair.assert_counters_equal()


@given(
    strategy=strategies,
    policy_list=st.lists(policies, max_size=4),
    preference_list=st.lists(preferences, max_size=4),
    request_list=st.lists(subject_requests, min_size=1, max_size=10),
)
def test_every_resolution_strategy(
    strategy, policy_list, preference_list, request_list
):
    pair = EnginePair(
        policies=policy_list, preferences=preference_list, strategy=strategy
    )
    for _ in range(2):
        for request in request_list:
            pair.decide(request)
    pair.assert_trails_equal()


@given(
    policy_list=st.lists(policies, min_size=1, max_size=4),
    request=subject_requests,
    notes=st.lists(
        st.sampled_from(
            ["brownout: coarse granularity", "brownout: sampled", "degraded"]
        ),
        min_size=1,
        max_size=2,
        unique=True,
    ).map(tuple),
)
def test_noted_decisions_bypass_table(policy_list, request, notes):
    """Brownout-noted decisions must be equivalent too -- and never
    populate or consult the table on either side of a plain decide."""
    pair = EnginePair(policies=policy_list)
    pair.decide(request, notes)
    assert pair.compiled.table_rows == 0, "noted decision was compiled"
    pair.decide(request)  # plain miss compiles the row...
    pair.decide(request, notes)  # ...which a noted decide must not serve
    pair.decide(request)
    pair.assert_trails_equal()
    pair.assert_counters_equal()


@given(
    policy_list=st.lists(policies, min_size=1, max_size=4),
    preference_list=st.lists(preferences, max_size=4),
    base=subject_requests,
    before=st.integers(1, 4),
    during=st.integers(1, 4),
    after=st.integers(1, 4),
)
def test_fail_closed_fault_injection(
    policy_list, preference_list, base, before, during, after
):
    """An injected policy-fetch outage fails both engines closed
    identically, and the fail-closed denials are never compiled.

    Each engine gets its own injector (their step counters advance at
    different rates: the compiled miss path fetches candidates again in
    its cacheability check), so the outage is delimited by install /
    uninstall rather than step windows, and the step number embedded in
    the fail-closed reason is masked by the harness.  Requests use a
    fresh requester id per step: a warm compiled row would otherwise
    (by design, like the decision cache) keep serving during the
    outage, which is an availability difference, not an equivalence
    bug -- see test_warm_rows_serve_through_outage.
    """
    pair = EnginePair(policies=policy_list, preferences=preference_list)
    serial = [0]

    def fresh():
        serial[0] += 1
        return dataclasses.replace(base, requester_id="svc-%04d" % serial[0])

    for _ in range(before):
        pair.decide(fresh())

    outage = FaultSpec(kind=FaultKind.POLICY_FETCH_FAIL, target="policy_store")
    injectors = []
    for engine in (pair.reference, pair.compiled):
        injector = FaultInjector(single_spec_plan(outage))
        injector.install_policy_store(engine.store)
        injectors.append(injector)
    try:
        outage_requests = [fresh() for _ in range(during)]
        for request in outage_requests:
            expected, actual = pair.decide(request)
            assert expected.resolution.effect is Effect.DENY
            assert "fail-closed deny" in actual.resolution.reasons
    finally:
        for injector in injectors:
            injector.uninstall()

    assert pair.compiled.metrics.total("enforcement_failclosed_total") == during
    rows_after_outage = pair.compiled.table_rows
    for request in outage_requests:
        pair.decide(request)  # same keys again: must re-evaluate, not hit
    assert (
        pair.compiled.hits == 0
    ), "a fail-closed denial was compiled into the table"
    assert pair.compiled.table_rows >= rows_after_outage
    for _ in range(after):
        pair.decide(fresh())
    pair.assert_trails_equal()
    pair.assert_counters_equal()


def test_warm_rows_serve_through_outage():
    """Documented availability asymmetry: a warm compiled row keeps
    serving during a policy-fetch outage (the row needs no fetch), while
    the interpreter fails closed -- the same trade the decision cache
    makes.  This is the one deliberate non-equivalence, pinned here so a
    future change to either behavior is a conscious one."""
    from repro.core.language.vocabulary import DataCategory, Purpose
    from repro.core.policy import catalog
    from repro.core.policy.base import DataRequest, DecisionPhase, RequesterKind

    pair = EnginePair(policies=[catalog.policy_service_sharing("b")])

    request = DataRequest(
        requester_id="svc-a",
        requester_kind=RequesterKind.BUILDING_SERVICE,
        phase=DecisionPhase.SHARING,
        category=DataCategory.LOCATION,
        subject_id="mary",
        space_id="b-1001",
        timestamp=100.0,
        purpose=Purpose.PROVIDING_SERVICE,
    )
    pair.decide(request)  # warm the row (and the oracle, pre-outage)
    warm = pair.compiled.decide(dataclasses.replace(request, timestamp=200.0))

    injector = FaultInjector(
        single_spec_plan(
            FaultSpec(kind=FaultKind.POLICY_FETCH_FAIL, target="policy_store")
        )
    )
    injector.install_policy_store(pair.compiled.store)
    try:
        during = pair.compiled.decide(dataclasses.replace(request, timestamp=300.0))
        assert during.resolution == warm.resolution, (
            "warm row must keep serving through the outage"
        )
        cold = dataclasses.replace(request, requester_id="svc-cold")
        denied = pair.compiled.decide(cold)
        assert denied.resolution.effect is Effect.DENY
        assert "fail-closed deny" in denied.resolution.reasons
    finally:
        injector.uninstall()
