"""Round-trip tests for compiled-table serialization through the WAL.

export -> ``log_compiled_table`` -> crash -> recovery -> ``import_table``
must hand back a table that serves decisions byte-identical to the
originals; stale or unreadable tables are discarded, never trusted.
"""

from __future__ import annotations

import dataclasses
import json

from hypothesis import given, strategies as st

from repro.core.enforcement.engine import EnforcementEngine
from repro.core.enforcement.tables import TABLE_SCHEMA_VERSION
from repro.core.language.vocabulary import DataCategory, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import DataRequest, DecisionPhase, RequesterKind
from repro.core.policy.conditions import EvaluationContext
from repro.core.reasoner.index import PolicyIndex
from repro.obs.metrics import MetricsRegistry
from repro.spatial.model import build_simple_building
from repro.storage.durable import StorageEngine
from repro.storage.recovery import replay_directory
from tests.differential.harness import EnginePair, resolution_key
from tests.differential.strategies import policies, preferences
from tests.property.strategies import requests

_SPATIAL = build_simple_building("b", 2, 4)


def request(subject="mary", timestamp=100.0, **overrides):
    defaults = dict(
        requester_id="concierge",
        requester_kind=RequesterKind.BUILDING_SERVICE,
        phase=DecisionPhase.SHARING,
        category=DataCategory.LOCATION,
        subject_id=subject,
        space_id="b-1001",
        timestamp=timestamp,
        purpose=Purpose.PROVIDING_SERVICE,
    )
    defaults.update(overrides)
    return DataRequest(**defaults)


def compiled_engine(store=None):
    engine = EnforcementEngine(
        store=store if store is not None else PolicyIndex(),
        context=EvaluationContext(spatial=_SPATIAL),
        metrics=MetricsRegistry(),
        compiled=True,
    )
    if store is None:
        engine.store.add_policy(catalog.policy_service_sharing("b"))
    return engine


class TestExportDeterminism:
    def test_export_is_deterministic_and_json_safe(self):
        engine = compiled_engine()
        for subject in ("mary", "bob", None):
            for category in (DataCategory.LOCATION, DataCategory.PRESENCE):
                engine.decide(request(subject=subject, category=category))
        first = engine.export_table()
        second = engine.export_table()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert first["schema"] == TABLE_SCHEMA_VERSION
        assert len(first["shards"]) == 3
        # Insertion order must not leak into the export: a second engine
        # warmed in a different order exports the identical document.
        other = compiled_engine()
        for subject in (None, "bob", "mary"):
            for category in (DataCategory.PRESENCE, DataCategory.LOCATION):
                other.decide(request(subject=subject, category=category))
        assert json.dumps(other.export_table(), sort_keys=True) == json.dumps(
            first, sort_keys=True
        )


class TestImportAdoption:
    def test_round_trip_serves_identical_decisions(self):
        source = compiled_engine()
        probes = [
            request(subject=subject, category=category)
            for subject in ("mary", "bob", None)
            for category in (DataCategory.LOCATION, DataCategory.PRESENCE)
        ]
        originals = [source.decide(probe) for probe in probes]
        data = json.loads(json.dumps(source.export_table()))

        target = compiled_engine()
        adopted = target.import_table(data)
        assert adopted == len(probes)
        assert target.table_rows == source.table_rows
        for probe, original in zip(probes, originals):
            served = target.decide(
                dataclasses.replace(probe, timestamp=probe.timestamp + 1)
            )
            assert resolution_key(served.resolution) == resolution_key(
                original.resolution
            )
        assert target.hits == len(probes), "adopted rows must serve as hits"
        assert target.misses == 0

    def test_policy_version_mismatch_discards_everything(self):
        source = compiled_engine()
        source.decide(request())
        data = source.export_table()
        target = compiled_engine()
        target.store.remove_policy("policy-service-sharing")
        target.store.add_policy(catalog.policy_service_sharing("b"))
        assert target.import_table(data) == 0
        assert target.table_rows == 0

    def test_pref_version_mismatch_skips_only_that_shard(self):
        source = compiled_engine()
        source.decide(request(subject="mary"))
        source.decide(request(subject="bob"))
        data = source.export_table()
        target = compiled_engine()
        target.store.add_preference(catalog.preference_2_no_location("mary"))
        assert target.import_table(data) == 1
        assert target.table_shards == 1
        assert not target.decide(request(subject="mary")).allowed

    def test_unknown_schema_raises(self):
        engine = compiled_engine()
        try:
            engine.import_table({"schema": TABLE_SCHEMA_VERSION + 1})
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("unknown schema must raise ValueError")


class TestWalRoundTrip:
    def test_logged_table_survives_crash_and_recovery(self, tmp_path):
        storage = StorageEngine(str(tmp_path))
        engine = compiled_engine()
        for subject in ("mary", "bob"):
            engine.decide(request(subject=subject))
        exported = engine.export_table()
        storage.log_compiled_table(exported)
        storage.close()  # simulated crash boundary: nothing else flushed

        state = replay_directory(str(tmp_path))
        assert state.compiled_table == json.loads(json.dumps(exported))
        revived = compiled_engine()
        assert revived.import_table(state.compiled_table) == 2
        for subject in ("mary", "bob"):
            revived.decide(request(subject=subject, timestamp=200.0))
        assert revived.hits == 2

    def test_latest_logged_table_wins(self, tmp_path):
        storage = StorageEngine(str(tmp_path))
        engine = compiled_engine()
        engine.decide(request(subject="mary"))
        storage.log_compiled_table(engine.export_table())
        engine.decide(request(subject="bob"))
        storage.log_compiled_table(engine.export_table())
        storage.close()
        state = replay_directory(str(tmp_path))
        assert len(state.compiled_table["shards"]) == 2

    def test_compaction_drops_table_records(self, tmp_path):
        storage = StorageEngine(str(tmp_path), segment_bytes=256)
        engine = compiled_engine()
        engine.decide(request(subject="mary"))
        storage.log_compiled_table(engine.export_table())
        storage.compact()
        storage.close()
        state = replay_directory(str(tmp_path))
        assert state.compiled_table is None, (
            "a compacted log must not resurrect a stale advisory table"
        )


class TestRoundTripProperty:
    @given(
        policy_list=st.lists(policies, max_size=5),
        preference_list=st.lists(preferences, max_size=5),
        request_list=st.lists(requests, min_size=1, max_size=12),
    )
    def test_generated_tables_round_trip(
        self, policy_list, preference_list, request_list
    ):
        """For any generated rule set and warm-up stream, a JSON
        round-tripped table adopted into a fresh engine serves the same
        resolutions the reference interpreter produces."""
        pair = EnginePair(policies=policy_list, preferences=preference_list)
        for item in request_list:
            pair.decide(item)
        data = json.loads(json.dumps(pair.compiled.export_table()))

        fresh = EnginePair(policies=policy_list, preferences=preference_list)
        adopted = fresh.compiled.import_table(data)
        assert adopted == pair.compiled.table_rows
        for item in request_list:
            fresh.decide(item)
        fresh.assert_trails_equal()
