"""Hypothesis profiles for the differential suite.

Two profiles, both fully deterministic (``derandomize=True`` replaces
the random seed with one derived from each test, so a CI failure
reproduces locally with no seed juggling):

- ``diff-dev`` (default): small example counts so the suite stays
  inside the tier-1 budget.
- ``diff-ci``: what ``make diff-test`` runs -- large example counts so
  one CI run covers >= 1000 generated cases across the suite.

``REPRO_DIFF_PROFILE`` selects the profile; ``REPRO_DIFF_EXAMPLES``
overrides the per-test example count on top of whichever profile is
active (used to scale a local soak without editing code).
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "diff-dev",
    max_examples=20,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "diff-ci",
    max_examples=250,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_profile = os.environ.get("REPRO_DIFF_PROFILE", "diff-dev")
_examples = os.environ.get("REPRO_DIFF_EXAMPLES")
if _examples:
    settings.register_profile(
        _profile, settings.get_profile(_profile), max_examples=int(_examples)
    )
settings.load_profile(_profile)
