"""Differential tests: compiled enforcement vs the reference interpreter.

The reference :class:`~repro.core.enforcement.engine.EnforcementEngine`
is the oracle.  Every test here drives a
:class:`~tests.differential.harness.EnginePair` -- the interpreter and
the compiled engine built from identical rule stores -- through the
same request stream (interleaved with rule mutations and injected
faults) and asserts the two produce identical resolutions, audit
trails, and decision counters at every step.
"""
