"""Invalidation regression tests for the compiled decision table.

The contract under test: a preference mutation evicts exactly the
affected user's shard, a policy mutation evicts everything, and the
per-decide version check keeps the table honest even for mutations
that never touch a listener hook (the historical stale-cache failure
mode these tests pin).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.enforcement.compiled import CompiledEnforcementEngine
from repro.core.enforcement.engine import EnforcementEngine
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.conditions import EvaluationContext, ProfileCondition
from repro.core.policy.building import BuildingPolicy
from repro.obs.metrics import MetricsRegistry
from repro.spatial.model import build_simple_building
from repro.tippers.bms import TIPPERS
from repro.users.profile import UserProfile


def request(subject="mary", timestamp=100.0, **overrides):
    defaults = dict(
        requester_id="concierge",
        requester_kind=RequesterKind.BUILDING_SERVICE,
        phase=DecisionPhase.SHARING,
        category=DataCategory.LOCATION,
        subject_id=subject,
        space_id="b-1001",
        timestamp=timestamp,
        purpose=Purpose.PROVIDING_SERVICE,
    )
    defaults.update(overrides)
    return DataRequest(**defaults)


@pytest.fixture
def engine():
    spatial = build_simple_building("b", 2, 4)
    engine = EnforcementEngine(
        context=EvaluationContext(spatial=spatial),
        metrics=MetricsRegistry(),
        compiled=True,
    )
    engine.store.add_policy(catalog.policy_service_sharing("b"))
    return engine


class TestExactShardEviction:
    def test_preference_mutation_evicts_only_that_user(self, engine):
        engine.decide(request(subject="mary"))
        engine.decide(request(subject="bob"))
        engine.decide(request(subject=None))
        assert engine.table_shards == 3
        engine.store.add_preference(catalog.preference_2_no_location("mary"))
        # The stale shard is discovered (and dropped) on mary's next
        # decide; bob's and the subject-less shard serve hits untouched.
        assert not engine.decide(request(subject="mary", timestamp=200.0)).allowed
        assert engine.decide(request(subject="bob", timestamp=200.0)).allowed
        engine.decide(request(subject=None, timestamp=200.0))
        assert engine.hits == 2
        assert engine.table_shards == 3

    def test_withdraw_all_evicts_only_that_user(self, engine):
        engine.store.add_preference(catalog.preference_2_no_location("mary"))
        assert not engine.decide(request(subject="mary")).allowed
        engine.decide(request(subject="bob"))
        engine.store.remove_preferences_of("mary")
        assert engine.decide(request(subject="mary", timestamp=200.0)).allowed
        engine.decide(request(subject="bob", timestamp=200.0))
        assert engine.hits == 1, "bob's shard must survive mary's withdrawal"

    def test_policy_mutation_evicts_everything(self, engine):
        engine.decide(request(subject="mary"))
        engine.decide(request(subject="bob"))
        assert engine.table_rows == 2
        engine.store.remove_policy("policy-service-sharing")
        assert not engine.decide(request(subject="mary", timestamp=200.0)).allowed
        assert not engine.decide(request(subject="bob", timestamp=200.0)).allowed
        assert engine.hits == 0

    def test_policy_replacement_takes_effect(self, engine):
        assert engine.decide(request()).allowed
        engine.store.remove_policy("policy-service-sharing")
        replacement = dataclasses.replace(
            catalog.policy_service_sharing("b"), effect=Effect.DENY
        )
        engine.store.add_policy(replacement)
        assert not engine.decide(request(timestamp=200.0)).allowed


class TestStaleTablePin:
    """The bug class this PR's version counters exist to prevent.

    A mutation applied *directly to the store* -- no manager, no
    listener, no hook -- must still never let the table serve a stale
    row.  Disabling the per-decide version check (as a buggy build
    would) makes these exact scenarios serve stale data; the oracle
    comparison here fails loudly in that world.
    """

    def test_direct_store_preference_mutation_never_serves_stale(self, engine):
        reference = EnforcementEngine(
            context=engine.context, metrics=MetricsRegistry()
        )
        reference.store.add_policy(catalog.policy_service_sharing("b"))
        for timestamp in (100.0, 150.0):
            assert (
                engine.decide(request(timestamp=timestamp)).resolution
                == reference.decide(request(timestamp=timestamp)).resolution
            )
        assert engine.hits == 1, "sanity: the row was warm before the mutation"
        opt_out = catalog.preference_2_no_location("mary")
        engine.store.add_preference(opt_out)
        reference.store.add_preference(opt_out)
        fresh = request(timestamp=200.0)
        assert (
            engine.decide(fresh).resolution
            == reference.decide(fresh).resolution
        ), "compiled engine served a stale row after a direct store mutation"

    def test_stale_check_is_per_decide_not_per_hook(self, engine):
        engine.decide(request())
        shard_versions_before = engine.store.preference_versions.get("mary", 0)
        engine.store.add_preference(catalog.preference_2_no_location("mary"))
        assert (
            engine.store.preference_versions["mary"] == shard_versions_before + 1
        ), "store mutations must bump the per-user version counter"
        assert engine.table_rows == 1, "eviction is lazy (no hook fired)"
        assert not engine.decide(request(timestamp=200.0)).allowed
        assert engine.hits == 0


class TestManagerHooks:
    def _tippers(self):
        spatial = build_simple_building("b", 2, 4)
        tippers = TIPPERS(
            spatial,
            "b",
            compile_decisions=True,
            metrics=MetricsRegistry(),
        )
        tippers.define_policy(catalog.policy_service_sharing("b"))
        tippers.add_user(UserProfile(user_id="mary", name="Mary"))
        tippers.add_user(UserProfile(user_id="bob", name="Bob"))
        return tippers

    def test_submit_evicts_eagerly(self):
        tippers = self._tippers()
        engine = tippers.engine
        engine.decide(request(subject="mary"))
        engine.decide(request(subject="bob"))
        assert engine.table_shards == 2
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        assert engine.table_shards == 1, "submit must evict mary's shard eagerly"
        assert not engine.decide(request(subject="mary", timestamp=200.0)).allowed

    def test_withdraw_all_evicts_eagerly(self):
        tippers = self._tippers()
        engine = tippers.engine
        tippers.submit_preference(catalog.preference_2_no_location("mary"))
        assert not engine.decide(request(subject="mary")).allowed
        rows_before = engine.table_rows
        tippers.preference_manager.withdraw_all("mary")
        assert engine.table_rows == rows_before - 1
        assert engine.decide(request(subject="mary", timestamp=200.0)).allowed

    def test_add_user_invalidates_profile_conditioned_rows(self):
        """ProfileCondition is compiled into rows (it is not
        time-sensitive), so a directory change must flush the table."""
        spatial = build_simple_building("b", 2, 4)
        tippers = TIPPERS(
            spatial, "b", compile_decisions=True, metrics=MetricsRegistry()
        )
        tippers.define_policy(
            BuildingPolicy(
                policy_id="faculty-only",
                name="faculty only",
                description="share location of faculty members only",
                effect=Effect.ALLOW,
                categories=(DataCategory.LOCATION,),
                phases=(DecisionPhase.SHARING,),
                condition=ProfileCondition(group="faculty"),
            )
        )
        engine = tippers.engine
        assert not engine.decide(request(subject="mary")).allowed
        tippers.add_user(
            UserProfile(
                user_id="mary", name="Mary", groups=frozenset({"faculty"})
            )
        )
        assert engine.decide(request(subject="mary", timestamp=200.0)).allowed, (
            "profile change must not be masked by a stale compiled row"
        )


class TestCapacityBounds:
    def test_max_shards_fifo_eviction(self):
        spatial = build_simple_building("b", 2, 4)
        engine = EnforcementEngine(
            context=EvaluationContext(spatial=spatial),
            metrics=MetricsRegistry(),
            compiled=True,
            max_shards=2,
        )
        engine.store.add_policy(catalog.policy_service_sharing("b"))
        for index in range(5):
            engine.decide(request(subject="user-%d" % index))
        assert engine.table_shards <= 2
        assert engine.table_rows <= 2

    def test_shard_capacity_clears_full_shard(self):
        spatial = build_simple_building("b", 2, 4)
        engine = EnforcementEngine(
            context=EvaluationContext(spatial=spatial),
            metrics=MetricsRegistry(),
            compiled=True,
            shard_capacity=2,
        )
        engine.store.add_policy(catalog.policy_service_sharing("b"))
        for index in range(5):
            engine.decide(request(requester_id="svc-%d" % index))
        assert engine.table_rows <= 2
        assert engine.table_shards == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            EnforcementEngine(compiled=True, shard_capacity=0)
        with pytest.raises(ValueError):
            EnforcementEngine(compiled=True, max_shards=0)


class TestInvalidationMetrics:
    def test_counters_and_gauges_track(self, engine):
        registry = engine.metrics
        engine.decide(request(subject="mary"))
        engine.decide(request(subject="bob"))
        assert registry.gauge("enforcement_table_shards").value == 2
        assert registry.gauge("enforcement_table_rows").value == 2
        engine.invalidate_user("mary")
        assert registry.total("enforcement_table_invalidations_total") == 1
        assert registry.gauge("enforcement_table_shards").value == 1
        assert registry.gauge("enforcement_table_rows").value == 1
        engine.invalidate_all()
        assert registry.total("enforcement_table_invalidations_total") == 2
        assert registry.gauge("enforcement_table_rows").value == 0
        assert engine.table_rows == 0

    def test_hit_miss_uncacheable_counters(self, engine):
        engine.store.add_preference(
            catalog.preference_1_office_after_hours("mary", "b-1001")
        )
        registry = engine.metrics
        engine.decide(request(subject="bob"))
        engine.decide(request(subject="bob", timestamp=200.0))
        engine.decide(request(subject="mary", category=DataCategory.OCCUPANCY))
        assert registry.total("enforcement_table_total", {"result": "miss"}) == 1
        assert registry.total("enforcement_table_total", {"result": "hit"}) == 1
        assert (
            registry.total("enforcement_table_total", {"result": "uncacheable"})
            == 1
        )
        stats = engine.table_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["uncacheable"] == 1
        assert 0.0 <= stats["hit_rate"] <= 1.0
