"""Unit tests for ISO-8601 durations."""

import pytest

from repro.core.language.duration import Duration
from repro.errors import SchemaError


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected_seconds",
        [
            ("P6M", 6 * 30 * 86400),       # the paper's Figure 2 value
            ("P1Y", 365 * 86400),
            ("P2W", 14 * 86400),
            ("P7D", 7 * 86400),
            ("PT1H", 3600),
            ("PT30M", 1800),
            ("PT45S", 45),
            ("P1DT12H", 86400 + 12 * 3600),
            ("P1Y2M3DT4H5M6S", 365 * 86400 + 2 * 30 * 86400 + 3 * 86400 + 4 * 3600 + 5 * 60 + 6),
        ],
    )
    def test_parse_values(self, text, expected_seconds):
        assert Duration.parse(text).total_seconds() == expected_seconds

    @pytest.mark.parametrize("bad", ["", "P", "PT", "6M", "P6", "P-6M", "P6M3Y", "PT1H2H", 42])
    def test_malformed_rejected(self, bad):
        with pytest.raises(SchemaError):
            Duration.parse(bad)

    def test_month_minute_disambiguation(self):
        months = Duration.parse("P6M")
        minutes = Duration.parse("PT6M")
        assert months.months == 6 and months.minutes == 0
        assert minutes.minutes == 6 and minutes.months == 0


class TestFormatting:
    @pytest.mark.parametrize(
        "text", ["P6M", "P1Y", "P7D", "PT1H", "PT30M", "P1DT12H", "P2W"]
    )
    def test_round_trip(self, text):
        assert Duration.parse(text).isoformat() == text

    def test_zero_duration_formats(self):
        assert Duration().isoformat() == "PT0S"

    def test_str_is_isoformat(self):
        assert str(Duration.parse("P6M")) == "P6M"


class TestFromSeconds:
    def test_exact_decomposition(self):
        duration = Duration.from_seconds(90061)  # 1d 1h 1m 1s
        assert (duration.days, duration.hours, duration.minutes, duration.seconds) == (
            1,
            1,
            1,
            1,
        )

    def test_round_trip_through_seconds(self):
        for total in (0, 59, 3600, 86400, 86400 * 400 + 3661):
            assert Duration.from_seconds(total).total_seconds() == total

    def test_negative_rejected(self):
        with pytest.raises(SchemaError):
            Duration.from_seconds(-1)


class TestComparison:
    def test_ordering_by_length(self):
        assert Duration.parse("P1D") < Duration.parse("P1W")
        assert Duration.parse("P1Y") > Duration.parse("P6M")
        assert Duration.parse("PT60M") <= Duration.parse("PT1H")
        assert Duration.parse("PT1H") >= Duration.parse("PT60M")

    def test_negative_component_rejected(self):
        with pytest.raises(SchemaError):
            Duration(days=-1)
