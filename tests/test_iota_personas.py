"""Unit tests for privacy personas and decision generation."""

import random

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.errors import PolicyError
from repro.iota.personas import (
    PERSONAS,
    Persona,
    generate_decisions,
    sample_practice,
)
from repro.iota.preference_model import DataPractice


def practice(**overrides):
    defaults = dict(
        category=DataCategory.LOCATION,
        purpose=Purpose.PROVIDING_SERVICE,
        granularity=GranularityLevel.PRECISE,
    )
    defaults.update(overrides)
    return DataPractice(**defaults)


class TestPersonaOrdering:
    def test_tolerance_ordering(self):
        assert (
            PERSONAS["fundamentalist"].tolerance
            < PERSONAS["pragmatist"].tolerance
            < PERSONAS["unconcerned"].tolerance
        )

    def test_unconcerned_allows_more_than_fundamentalist(self):
        rng = random.Random(0)
        practices = [sample_practice(rng) for _ in range(300)]
        unconcerned = sum(PERSONAS["unconcerned"].allows(p) for p in practices)
        fundamentalist = sum(PERSONAS["fundamentalist"].allows(p) for p in practices)
        assert unconcerned > fundamentalist * 2

    def test_everyone_rejects_third_party_identity_marketing(self):
        bad = practice(
            category=DataCategory.IDENTITY,
            purpose=Purpose.MARKETING,
            third_party=True,
            retention_days=365.0,
        )
        for persona in PERSONAS.values():
            assert not persona.allows(bad)

    def test_everyone_accepts_anonymous_temperature(self):
        benign = practice(
            category=DataCategory.TEMPERATURE,
            purpose=Purpose.COMFORT,
            granularity=GranularityLevel.AGGREGATE,
            retention_days=1.0,
        )
        for persona in PERSONAS.values():
            assert persona.allows(benign)


class TestPersonaMechanics:
    def test_third_party_raises_discomfort(self):
        persona = PERSONAS["pragmatist"]
        assert persona.discomfort(practice(third_party=True)) > persona.discomfort(practice())

    def test_retention_raises_discomfort(self):
        persona = PERSONAS["pragmatist"]
        long = practice(retention_days=365.0)
        short = practice(retention_days=1.0)
        assert persona.discomfort(long) > persona.discomfort(short)

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(PolicyError):
            Persona(name="x", tolerance=2.0)

    def test_noiseless_decision_matches_allows(self):
        persona = PERSONAS["pragmatist"]
        p = practice()
        decision = persona.decide(p, noise=0.0)
        assert decision.allowed == persona.allows(p)


class TestGeneration:
    def test_reproducible_with_seed(self):
        a = generate_decisions(PERSONAS["pragmatist"], 50, seed=9)
        b = generate_decisions(PERSONAS["pragmatist"], 50, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_decisions(PERSONAS["pragmatist"], 50, seed=1)
        b = generate_decisions(PERSONAS["pragmatist"], 50, seed=2)
        assert a != b

    def test_count_respected(self):
        assert len(generate_decisions(PERSONAS["pragmatist"], 17)) == 17
        assert generate_decisions(PERSONAS["pragmatist"], 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(PolicyError):
            generate_decisions(PERSONAS["pragmatist"], -1)

    def test_noise_flips_some_labels(self):
        clean = generate_decisions(PERSONAS["pragmatist"], 300, seed=4, noise=0.0)
        noisy = generate_decisions(PERSONAS["pragmatist"], 300, seed=4, noise=0.3)
        flips = sum(
            1 for c, n in zip(clean, noisy) if c.practice == n.practice and c.allowed != n.allowed
        )
        assert flips > 0
