"""Unit tests for the BENCH_<n>.json record schema.

A bench record is a committed artifact other builds must be able to
trust, so the schema's job is mostly *rejection*: unknown versions,
NaN/negative latencies, inverted percentiles, missing benchmarks, and
malformed JSON all raise :class:`BenchError` before any number is
believed.
"""

import json
import math

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BENCHMARK_NAMES,
    OPTIONAL_BENCHMARK_NAMES,
    REQUIRED_BENCHMARK_NAMES,
    BenchmarkEntry,
    BenchRecord,
    LatencySummary,
)
from repro.errors import BenchError


def make_latency(p50=10.0, p99=50.0, mean=15.0, maximum=80.0, count=100):
    return LatencySummary(
        p50_us=p50, p99_us=p99, mean_us=mean, max_us=maximum, count=count
    )


def make_entry(name, **overrides):
    fields = dict(
        name=name,
        decision_latency=make_latency(),
        ingest_throughput_per_s=1000.0,
        shed_rate=0.1,
        brownout_rate=0.05,
        wal_bytes=4096,
        extra={"users": 100.0},
    )
    fields.update(overrides)
    return BenchmarkEntry(**fields)


def make_record(**overrides):
    fields = dict(
        version=BENCH_SCHEMA_VERSION,
        record_id=1,
        scale="ci",
        label="unit-test",
        peak_rss_kb=50000,
        benchmarks={name: make_entry(name) for name in BENCHMARK_NAMES},
    )
    fields.update(overrides)
    return BenchRecord(**fields)


class TestRoundTrip:
    def test_dump_load_round_trip_is_lossless(self):
        record = make_record()
        record.validate()
        loaded = BenchRecord.loads(record.dumps())
        assert loaded == record

    def test_dumps_is_deterministic_and_newline_terminated(self):
        record = make_record()
        text = record.dumps()
        assert text == record.dumps()
        assert text.endswith("\n")
        assert json.loads(text)["version"] == BENCH_SCHEMA_VERSION

    def test_benchmark_name_sets_are_pinned(self):
        assert set(REQUIRED_BENCHMARK_NAMES) == {
            "scale_enforcement", "scale_ingest", "scale_notifications",
            "scale_week", "scale_overload",
        }
        assert set(OPTIONAL_BENCHMARK_NAMES) == {
            "scale_federate", "scale_rebalance",
        }
        assert set(BENCHMARK_NAMES) == (
            set(REQUIRED_BENCHMARK_NAMES) | set(OPTIONAL_BENCHMARK_NAMES)
        )

    def test_optional_benchmarks_may_be_absent(self):
        # BENCH_0001/0002 predate scale_federate; they must stay loadable.
        benchmarks = {
            name: make_entry(name) for name in REQUIRED_BENCHMARK_NAMES
        }
        record = BenchRecord(
            version=BENCH_SCHEMA_VERSION,
            record_id=1,
            scale="ci",
            label="pre-federation record",
            peak_rss_kb=1024,
            benchmarks=benchmarks,
        )
        loaded = BenchRecord.loads(record.dumps())
        assert set(loaded.benchmarks) == set(REQUIRED_BENCHMARK_NAMES)


class TestVersionGate:
    @pytest.mark.parametrize("version", [0, 2, 99, "1", None])
    def test_unknown_versions_are_rejected(self, version):
        data = make_record().to_dict()
        data["version"] = version
        with pytest.raises(BenchError, match="version"):
            BenchRecord.from_dict(data)

    def test_version_is_checked_before_benchmarks(self):
        # A future-version record with an unreadable body must fail on
        # the version, not on the body it has no business interpreting.
        data = {"version": BENCH_SCHEMA_VERSION + 1, "benchmarks": "not-a-map"}
        with pytest.raises(BenchError, match="version"):
            BenchRecord.from_dict(data)

    def test_missing_version_is_rejected(self):
        data = make_record().to_dict()
        del data["version"]
        with pytest.raises(BenchError, match="version"):
            BenchRecord.from_dict(data)


class TestLatencyValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0, "10"])
    def test_non_finite_or_negative_latency_is_rejected(self, bad):
        with pytest.raises(BenchError):
            make_latency(p50=bad).validate("test")

    def test_inverted_percentiles_are_rejected(self):
        with pytest.raises(BenchError, match="p50.*exceeds p99"):
            make_latency(p50=60.0, p99=50.0).validate("test")
        with pytest.raises(BenchError, match="p99.*exceeds max"):
            make_latency(p99=50.0, maximum=40.0).validate("test")

    def test_empty_distribution_is_rejected(self):
        with pytest.raises(BenchError, match="count"):
            make_latency(count=0).validate("test")

    def test_nan_rejected_through_json_path(self):
        data = make_record().to_dict()
        entry = data["benchmarks"]["scale_ingest"]
        entry["decision_latency"]["p99_us"] = math.nan
        with pytest.raises(BenchError, match="finite"):
            BenchRecord.from_dict(data)


class TestEntryValidation:
    def test_zero_throughput_is_rejected(self):
        with pytest.raises(BenchError, match="throughput"):
            make_entry("scale_ingest", ingest_throughput_per_s=0.0).validate()

    @pytest.mark.parametrize("rate", [-0.1, 1.5, float("nan")])
    def test_out_of_range_rates_are_rejected(self, rate):
        with pytest.raises(BenchError):
            make_entry("scale_ingest", shed_rate=rate).validate()

    def test_negative_wal_bytes_are_rejected(self):
        with pytest.raises(BenchError, match="wal_bytes"):
            make_entry("scale_ingest", wal_bytes=-1).validate()

    def test_entry_name_must_match_its_key(self):
        data = make_record().to_dict()
        data["benchmarks"]["scale_ingest"]["name"] = "scale_other"
        with pytest.raises(BenchError, match="disagrees"):
            BenchRecord.from_dict(data)


class TestRecordValidation:
    def test_missing_benchmark_is_rejected(self):
        data = make_record().to_dict()
        del data["benchmarks"]["scale_week"]
        with pytest.raises(BenchError, match="missing benchmarks"):
            BenchRecord.from_dict(data)

    def test_unknown_benchmark_is_rejected(self):
        benchmarks = {name: make_entry(name) for name in BENCHMARK_NAMES}
        benchmarks["scale_mystery"] = make_entry("scale_mystery")
        with pytest.raises(BenchError, match="unknown benchmarks"):
            make_record(benchmarks=benchmarks).validate()

    def test_negative_record_id_is_rejected(self):
        with pytest.raises(BenchError, match="record_id"):
            make_record(record_id=-1).validate()

    def test_malformed_json_raises_bench_error(self):
        with pytest.raises(BenchError, match="JSON"):
            BenchRecord.loads("{not json")
        with pytest.raises(BenchError):
            BenchRecord.loads("[1, 2, 3]")
