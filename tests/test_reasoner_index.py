"""Unit tests for the rule stores (linear and indexed)."""

import pytest

from repro.core.language.vocabulary import DataCategory, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.preference import UserPreference
from repro.core.reasoner.index import LinearRuleStore, PolicyIndex


def request(category=DataCategory.LOCATION, phase=DecisionPhase.SHARING, subject="mary"):
    return DataRequest(
        requester_id="svc",
        requester_kind=RequesterKind.BUILDING_SERVICE,
        phase=phase,
        category=category,
        subject_id=subject,
        space_id="r1",
        timestamp=0.0,
        purpose=Purpose.PROVIDING_SERVICE,
    )


def policy(pid, categories=(DataCategory.LOCATION,), phases=(DecisionPhase.SHARING,)):
    return BuildingPolicy(
        policy_id=pid, name=pid, description="d", categories=categories, phases=phases
    )


def preference(pid, user="mary", categories=(DataCategory.LOCATION,), phases=(DecisionPhase.SHARING,)):
    return UserPreference(
        preference_id=pid,
        user_id=user,
        description="d",
        effect=Effect.DENY,
        categories=categories,
        phases=phases,
    )


@pytest.mark.parametrize("store_cls", [LinearRuleStore, PolicyIndex])
class TestStoreInterface:
    def test_add_and_list(self, store_cls):
        store = store_cls()
        store.add_policy(policy("p1"))
        store.add_preference(preference("f1"))
        assert [p.policy_id for p in store.policies] == ["p1"]
        assert [p.preference_id for p in store.preferences] == ["f1"]

    def test_remove_policy(self, store_cls):
        store = store_cls()
        store.add_policy(policy("p1"))
        store.remove_policy("p1")
        assert store.policies == []
        assert store.candidate_policies(request()) == []

    def test_remove_missing_policy_noop(self, store_cls):
        store_cls().remove_policy("ghost")

    def test_remove_preferences_of_user(self, store_cls):
        store = store_cls()
        store.add_preference(preference("f1"))
        store.add_preference(preference("f2", user="bob"))
        removed = store.remove_preferences_of("mary")
        assert removed == 1
        assert [p.preference_id for p in store.preferences] == ["f2"]

    def test_candidates_are_superset_of_matches(self, store_cls):
        store = store_cls()
        store.add_policy(policy("p1"))
        store.add_policy(policy("p2", categories=(DataCategory.ENERGY_USE,)))
        candidates = {p.policy_id for p in store.candidate_policies(request())}
        assert "p1" in candidates  # the matching one must be present

    def test_replacing_policy_updates(self, store_cls):
        store = store_cls()
        store.add_policy(policy("p1"))
        store.add_policy(policy("p1", categories=(DataCategory.ENERGY_USE,)))
        assert len(store.policies) == 1


class TestPolicyIndexPruning:
    def test_category_buckets_prune(self):
        index = PolicyIndex()
        index.add_policy(policy("loc"))
        index.add_policy(policy("energy", categories=(DataCategory.ENERGY_USE,)))
        found = {p.policy_id for p in index.candidate_policies(request())}
        assert found == {"loc"}

    def test_phase_buckets_prune(self):
        index = PolicyIndex()
        index.add_policy(policy("share", phases=(DecisionPhase.SHARING,)))
        index.add_policy(policy("capture", phases=(DecisionPhase.CAPTURE,)))
        found = {p.policy_id for p in index.candidate_policies(request())}
        assert found == {"share"}

    def test_wildcard_policies_always_candidates(self):
        index = PolicyIndex()
        index.add_policy(policy("wild", categories=(), phases=tuple(DecisionPhase)))
        for category in (DataCategory.LOCATION, DataCategory.ENERGY_USE):
            found = {p.policy_id for p in index.candidate_policies(request(category))}
            assert "wild" in found

    def test_preferences_partitioned_by_user(self):
        index = PolicyIndex()
        for i in range(50):
            index.add_preference(preference("f%d" % i, user="user-%d" % i))
        index.add_preference(preference("mine", user="mary"))
        found = index.candidate_preferences(request())
        assert [p.preference_id for p in found] == ["mine"]

    def test_unattributed_request_has_no_preference_candidates(self):
        index = PolicyIndex()
        index.add_preference(preference("f1"))
        assert index.candidate_preferences(request(subject=None)) == []

    def test_preference_resubmission_replaces(self):
        index = PolicyIndex()
        index.add_preference(preference("f1"))
        index.add_preference(
            preference("f1", categories=(DataCategory.ENERGY_USE,))
        )
        assert len(index.preferences) == 1
        found = index.candidate_preferences(request(DataCategory.ENERGY_USE))
        assert [p.preference_id for p in found] == ["f1"]
