"""Unit tests for the JSON-Schema subset validator."""

import pytest

from repro.core.language.schema import (
    RESOURCE_POLICY_SCHEMA,
    SERVICE_POLICY_SCHEMA,
    SETTINGS_SCHEMA,
    Schema,
    ValidationError,
    validate,
)
from repro.errors import SchemaError


class TestTypeChecks:
    @pytest.mark.parametrize(
        "value,type_name",
        [
            ({}, "object"),
            ([], "array"),
            ("x", "string"),
            (1.5, "number"),
            (3, "integer"),
            (True, "boolean"),
            (None, "null"),
        ],
    )
    def test_accepting(self, value, type_name):
        validate(value, {"type": type_name})

    def test_bool_is_not_number(self):
        with pytest.raises(ValidationError):
            validate(True, {"type": "number"})

    def test_int_is_number(self):
        validate(3, {"type": "number"})

    def test_type_union(self):
        validate(None, {"type": ["string", "null"]})
        with pytest.raises(ValidationError):
            validate(3, {"type": ["string", "null"]})

    def test_unknown_type_is_schema_bug(self):
        with pytest.raises(SchemaError):
            validate(1, {"type": "quaternion"})


class TestConstraints:
    def test_enum(self):
        validate("a", {"enum": ["a", "b"]})
        with pytest.raises(ValidationError):
            validate("c", {"enum": ["a", "b"]})

    def test_pattern(self):
        validate("P6M", {"type": "string", "pattern": r"^P\d+M$"})
        with pytest.raises(ValidationError):
            validate("6M", {"type": "string", "pattern": r"^P\d+M$"})

    def test_string_lengths(self):
        schema = {"type": "string", "minLength": 2, "maxLength": 3}
        validate("ab", schema)
        with pytest.raises(ValidationError):
            validate("a", schema)
        with pytest.raises(ValidationError):
            validate("abcd", schema)

    def test_numeric_bounds(self):
        schema = {"type": "number", "minimum": 0, "maximum": 10}
        validate(0, schema)
        validate(10, schema)
        with pytest.raises(ValidationError):
            validate(-1, schema)
        with pytest.raises(ValidationError):
            validate(11, schema)


class TestObjects:
    SCHEMA = {
        "type": "object",
        "required": ["name"],
        "properties": {"name": {"type": "string"}, "age": {"type": "integer"}},
        "additionalProperties": False,
    }

    def test_required_missing(self):
        with pytest.raises(ValidationError) as excinfo:
            validate({}, self.SCHEMA)
        assert "name" in str(excinfo.value)

    def test_additional_properties_false(self):
        with pytest.raises(ValidationError):
            validate({"name": "x", "extra": 1}, self.SCHEMA)

    def test_additional_properties_schema(self):
        schema = {"type": "object", "additionalProperties": {"type": "integer"}}
        validate({"a": 1, "b": 2}, schema)
        with pytest.raises(ValidationError):
            validate({"a": "nope"}, schema)

    def test_nested_error_path(self):
        schema = {
            "type": "object",
            "properties": {"inner": {"type": "object", "required": ["x"]}},
        }
        with pytest.raises(ValidationError) as excinfo:
            validate({"inner": {}}, schema)
        assert excinfo.value.path == "/inner"


class TestArrays:
    def test_items_validated_with_index_path(self):
        schema = {"type": "array", "items": {"type": "integer"}}
        validate([1, 2, 3], schema)
        with pytest.raises(ValidationError) as excinfo:
            validate([1, "x"], schema)
        assert excinfo.value.path == "/1"

    def test_min_max_items(self):
        schema = {"type": "array", "minItems": 1, "maxItems": 2}
        validate([1], schema)
        with pytest.raises(ValidationError):
            validate([], schema)
        with pytest.raises(ValidationError):
            validate([1, 2, 3], schema)


class TestOneOf:
    SCHEMA = {"oneOf": [{"type": "string"}, {"type": "object"}]}

    def test_single_match(self):
        validate("x", self.SCHEMA)
        validate({}, self.SCHEMA)

    def test_no_match(self):
        with pytest.raises(ValidationError):
            validate(3, self.SCHEMA)

    def test_double_match_rejected(self):
        schema = {"oneOf": [{"type": "number"}, {"minimum": 0}]}
        with pytest.raises(ValidationError):
            validate(3, schema)


class TestSchemaWrapper:
    def test_is_valid(self):
        schema = Schema({"type": "string"}, title="s")
        assert schema.is_valid("x")
        assert not schema.is_valid(3)

    def test_errors_list(self):
        schema = Schema({"type": "string"})
        assert schema.errors("x") == []
        assert len(schema.errors(3)) == 1

    def test_non_dict_definition_rejected(self):
        with pytest.raises(SchemaError):
            Schema("not a schema")


class TestLanguageSchemas:
    def test_figure2_shape_validates(self):
        RESOURCE_POLICY_SCHEMA.validate(
            {
                "resources": [
                    {
                        "info": {"name": "Location tracking in DBH"},
                        "context": {
                            "location": {
                                "spatial": {"name": "Donald Bren Hall", "type": "Building"},
                                "location_owner": {
                                    "name": "UCI",
                                    "human_description": {"more_info": "https://uci.edu"},
                                },
                            }
                        },
                        "sensor": {
                            "type": "WiFi Access Point",
                            "description": "Installed inside the building",
                        },
                        "purpose": {
                            "emergency response": {
                                "description": "Location is stored continuously"
                            }
                        },
                        "observations": [
                            {
                                "name": "MAC address of the device",
                                "description": "If your device is connected...",
                            }
                        ],
                        "retention": {"duration": "P6M"},
                    }
                ]
            }
        )

    def test_resources_must_be_non_empty(self):
        assert not RESOURCE_POLICY_SCHEMA.is_valid({"resources": []})

    def test_figure3_shape_validates(self):
        SERVICE_POLICY_SCHEMA.validate(
            {
                "observations": [
                    {"name": "wifi_access_point", "description": "..."},
                    {"name": "bluetooth_beacon", "description": "..."},
                ],
                "purpose": {
                    "providing_service": {"description": "directions"},
                    "service_id": "Concierge",
                },
            }
        )

    def test_service_id_required(self):
        assert not SERVICE_POLICY_SCHEMA.is_valid(
            {
                "observations": [{"name": "x"}],
                "purpose": {"providing_service": {"description": "d"}},
            }
        )

    def test_figure4_shape_validates(self):
        SETTINGS_SCHEMA.validate(
            {
                "settings": [
                    {
                        "select": [
                            {"description": "fine grained location sensing", "on": "wifi=opt-in"},
                            {"description": "coarse grained location sensing", "on": "wifi=opt-in"},
                            {"description": "No location sensing", "on": "wifi=opt-out"},
                        ]
                    }
                ]
            }
        )

    def test_settings_option_needs_on(self):
        assert not SETTINGS_SCHEMA.is_valid(
            {"settings": [{"select": [{"description": "x"}]}]}
        )

    def test_retention_pattern_rejects_garbage(self):
        doc = {
            "resources": [
                {
                    "info": {"name": "n"},
                    "context": {"location": {"spatial": {"name": "B", "type": "Building"}}},
                    "sensor": {"type": "t"},
                    "purpose": {"security": {"description": "d"}},
                    "observations": [{"name": "o"}],
                    "retention": {"duration": "six months"},
                }
            ]
        }
        assert not RESOURCE_POLICY_SCHEMA.is_valid(doc)


class TestValidateErrorPaths:
    """Error reporting contracts: oneOf diagnostics, nested paths,
    non-dict instances."""

    NESTED = {
        "type": "object",
        "properties": {
            "resources": {
                "type": "array",
                "items": {
                    "type": "object",
                    "properties": {
                        "observations": {
                            "type": "array",
                            "items": {"type": "object", "required": ["name"]},
                        }
                    },
                },
            }
        },
    }

    def test_oneof_zero_matches_reports_each_branch_reason(self):
        schema = {"oneOf": [{"type": "string"}, {"type": "object"}]}
        with pytest.raises(ValidationError) as excinfo:
            validate(3, schema)
        assert "matched 0 of oneOf branches" in excinfo.value.reason
        assert "expected type string" in excinfo.value.reason
        assert "expected type object" in excinfo.value.reason

    def test_oneof_two_matches_says_so(self):
        schema = {"oneOf": [{"type": "integer"}, {"minimum": 0}]}
        with pytest.raises(ValidationError) as excinfo:
            validate(3, schema)
        assert "matched 2 of oneOf branches" in excinfo.value.reason

    def test_oneof_failure_carries_the_nested_path(self):
        schema = {
            "type": "object",
            "properties": {
                "purpose": {
                    "type": "object",
                    "additionalProperties": {
                        "oneOf": [{"type": "string"}, {"type": "object"}]
                    },
                }
            },
        }
        with pytest.raises(ValidationError) as excinfo:
            validate({"purpose": {"comfort": 7}}, schema)
        assert excinfo.value.path == "/purpose/comfort"

    def test_schema_bug_inside_oneof_branch_propagates(self):
        # A broken branch is a schema bug, not an instance mismatch.
        schema = {"oneOf": [{"type": "quaternion"}]}
        with pytest.raises(SchemaError) as excinfo:
            validate("x", schema)
        assert not isinstance(excinfo.value, ValidationError)

    def test_path_threads_through_arrays_and_objects(self):
        doc = {"resources": [{"observations": [{"name": "ok"}, {}]}]}
        with pytest.raises(ValidationError) as excinfo:
            validate(doc, self.NESTED)
        assert excinfo.value.path == "/resources/0/observations/1"
        assert "name" in excinfo.value.reason

    def test_root_path_renders_as_slash(self):
        with pytest.raises(ValidationError) as excinfo:
            validate(3, {"type": "string"})
        assert excinfo.value.path == "/"
        assert "(at /)" in str(excinfo.value)

    @pytest.mark.parametrize("instance", ["text", ["list"], None, 42, True])
    def test_non_dict_instances_against_object_schema(self, instance):
        with pytest.raises(ValidationError) as excinfo:
            validate(instance, {"type": "object", "required": ["x"]})
        assert "expected type object" in excinfo.value.reason

    def test_non_dict_instance_skips_required_check(self):
        # Without a type constraint, required/properties only apply to
        # dicts; scalars pass through untouched.
        validate("anything", {"required": ["x"], "properties": {"x": {}}})

    def test_non_dict_schema_is_rejected(self):
        with pytest.raises(SchemaError):
            validate({}, "not a schema")

    def test_figure2_bad_purpose_branch_reports_deep_path(self):
        doc = {
            "resources": [
                {
                    "info": {"name": "n"},
                    "context": {
                        "location": {"spatial": {"name": "B", "type": "Building"}}
                    },
                    "sensor": {"type": "t"},
                    "purpose": {"security": 99},
                    "observations": [{"name": "o"}],
                }
            ]
        }
        errors = RESOURCE_POLICY_SCHEMA.errors(doc)
        assert len(errors) == 1
        assert "/resources/0/purpose/security" in errors[0]
