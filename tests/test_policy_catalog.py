"""Unit tests for the paper's Policies 1-4 and Preferences 1-4."""

import pytest

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.conditions import EvaluationContext
from repro.spatial.model import build_simple_building


@pytest.fixture
def context():
    return EvaluationContext(spatial=build_simple_building("b", 2, 4))


class TestPolicy1:
    def test_actuation_pipeline_declared(self):
        policy = catalog.policy_1_comfort(["b-1001"], setpoint_f=70.0)
        assert policy.actuations[0].sensor_type == "hvac_unit"
        assert policy.actuations[0].settings["setpoint_f"] == 70.0
        assert policy.actuations[0].trigger == "occupied"

    def test_covers_motion_and_temperature(self, context):
        policy = catalog.policy_1_comfort(["b-1001"])
        req = DataRequest(
            requester_id="building",
            requester_kind=RequesterKind.BUILDING,
            phase=DecisionPhase.CAPTURE,
            category=DataCategory.OCCUPANCY,
            subject_id=None,
            space_id="b-1001",
            timestamp=0.0,
            purpose=Purpose.COMFORT,
            sensor_type="motion_sensor",
        )
        assert policy.applies_to(req, context)


class TestPolicy2:
    def test_is_mandatory_with_p6m_retention(self):
        policy = catalog.policy_2_emergency_location("b")
        assert policy.mandatory
        assert policy.retention.isoformat() == "P6M"
        assert Purpose.EMERGENCY_RESPONSE in policy.purposes

    def test_covers_wifi_capture(self, context):
        policy = catalog.policy_2_emergency_location("b")
        req = DataRequest(
            requester_id="building",
            requester_kind=RequesterKind.BUILDING,
            phase=DecisionPhase.CAPTURE,
            category=DataCategory.LOCATION,
            subject_id="mary",
            space_id="b-1001",
            timestamp=0.0,
            purpose=Purpose.EMERGENCY_RESPONSE,
            sensor_type="wifi_access_point",
        )
        assert policy.applies_to(req, context)


class TestPolicy3:
    def test_reader_mode_actuation(self):
        policy = catalog.policy_3_meeting_room_access(["b-1004"])
        assert policy.actuations[0].settings == {"mode": "card_or_fingerprint"}
        assert DataCategory.IDENTITY in policy.categories


class TestPolicy4:
    def test_sharing_phase_only(self):
        policy = catalog.policy_4_event_disclosure("b-1004")
        assert policy.phases == (DecisionPhase.SHARING,)
        assert DataCategory.MEETING_DETAILS in policy.categories


class TestServiceSharingPolicy:
    def test_not_mandatory(self):
        policy = catalog.policy_service_sharing("b")
        assert not policy.mandatory
        assert DecisionPhase.SHARING in policy.phases


class TestPreference1:
    def test_after_hours_only(self, context):
        pref = catalog.preference_1_office_after_hours("mary", "b-1001")

        def req(hour):
            return DataRequest(
                requester_id="svc",
                requester_kind=RequesterKind.BUILDING_SERVICE,
                phase=DecisionPhase.SHARING,
                category=DataCategory.OCCUPANCY,
                subject_id="mary",
                space_id="b-1001",
                timestamp=hour * 3600.0,
                purpose=Purpose.PROVIDING_SERVICE,
            )

        assert pref.applies_to(req(20), context)
        assert pref.applies_to(req(6), context)
        assert not pref.applies_to(req(12), context)

    def test_scoped_to_office(self, context):
        pref = catalog.preference_1_office_after_hours("mary", "b-1001")
        req = DataRequest(
            requester_id="svc",
            requester_kind=RequesterKind.BUILDING_SERVICE,
            phase=DecisionPhase.SHARING,
            category=DataCategory.OCCUPANCY,
            subject_id="mary",
            space_id="b-1002",
            timestamp=20 * 3600.0,
            purpose=Purpose.PROVIDING_SERVICE,
        )
        assert not pref.applies_to(req, context)


class TestPreference2:
    def test_denies_all_phases(self):
        pref = catalog.preference_2_no_location("mary")
        assert pref.effect is Effect.DENY
        assert set(pref.phases) == set(DecisionPhase)

    def test_conflicts_with_policy2(self, context):
        from repro.core.reasoner.conflicts import ConflictKind, detect_conflicts

        conflicts = detect_conflicts(
            [catalog.policy_2_emergency_location("b")],
            [catalog.preference_2_no_location("mary")],
            context,
        )
        assert len(conflicts) == 1
        assert conflicts[0].kind is ConflictKind.HARD


class TestPreferences3And4:
    def test_concierge_grant(self):
        permission = catalog.preference_3_concierge_location("mary")
        assert permission.granted
        assert permission.granularity is GranularityLevel.PRECISE
        assert permission.service_id == "concierge"

    def test_meeting_grant(self):
        permission = catalog.preference_4_meeting_details("mary")
        assert permission.category is DataCategory.MEETING_DETAILS
