"""Unit tests for the shared finding/reporting core."""

import pytest

from repro.analysis.findings import (
    RULES,
    Finding,
    Rule,
    Severity,
    all_rules,
    exit_code,
    expand_selection,
    is_suppressed,
    register_rule,
    render_json,
    render_text,
    selected,
    sort_findings,
    suppressions_in,
)
from repro.errors import AnalysisError


def finding(**overrides) -> Finding:
    defaults = dict(
        rule_id="C003",
        severity=Severity.ERROR,
        message="bare except",
        file="src/x.py",
        line=3,
    )
    defaults.update(overrides)
    return Finding(**defaults)


class TestRegistry:
    def test_all_twenty_three_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        assert {"C001", "C007", "F001", "F006", "P001", "P010"} <= set(ids)
        assert len(ids) == 23

    def test_duplicate_registration_rejected(self):
        all_rules()  # ensure analyzers imported
        with pytest.raises(AnalysisError):
            register_rule("C001", "dup", Severity.ERROR, "dup")

    def test_bad_rule_id_shape_rejected(self):
        with pytest.raises(AnalysisError):
            Rule("X123", "bad", Severity.ERROR, "bad")
        with pytest.raises(AnalysisError):
            Rule("C12", "bad", Severity.ERROR, "bad")

    def test_every_rule_has_a_summary(self):
        for rule in all_rules():
            assert rule.summary
            assert rule.name


class TestRendering:
    def test_str_includes_location_rule_and_severity(self):
        text = str(finding())
        assert text == "src/x.py:3: C003 bare-except [error] bare except"

    def test_subject_location_for_policy_findings(self):
        text = str(finding(rule_id="P001", file="", line=0, subject="pol-1"))
        assert text.startswith("pol-1: P001")

    def test_render_text_has_summary_tail(self):
        lines = render_text([finding(), finding(severity=Severity.WARNING)])
        assert len(lines) == 3
        assert lines[-1] == "2 finding(s): 1 error, 1 warning"

    def test_render_text_empty(self):
        assert render_text([]) == []

    def test_render_json_roundtrips_fields(self):
        payload = render_json([finding()])
        assert payload["count"] == 1
        entry = payload["findings"][0]
        assert entry["rule_id"] == "C003"
        assert entry["severity"] == "error"
        assert entry["file"] == "src/x.py"
        assert entry["line"] == 3


class TestOrderingAndExit:
    def test_sort_by_file_line_then_severity(self):
        later = finding(file="src/z.py", line=1)
        warn = finding(severity=Severity.WARNING, rule_id="C005", line=3)
        error = finding(line=3)
        first = finding(line=1)
        assert sort_findings([later, warn, error, first]) == [
            first, error, warn, later,
        ]

    def test_exit_code(self):
        assert exit_code([]) == 0
        assert exit_code([finding()]) == 1


class TestSelection:
    def test_prefix_expansion(self):
        chosen = expand_selection("C")
        assert chosen == {
            "C001", "C002", "C003", "C004", "C005", "C006", "C007",
        }

    def test_exact_and_mixed(self):
        assert expand_selection("C003,P001") == {"C003", "P001"}

    def test_empty_means_all(self):
        assert expand_selection(None) is None
        assert expand_selection("") is None

    def test_unknown_token_raises(self):
        with pytest.raises(AnalysisError):
            expand_selection("Z999")

    def test_selected(self):
        assert selected(finding(), None)
        assert selected(finding(), {"C003"})
        assert not selected(finding(), {"C001"})


class TestSuppression:
    def test_noqa_parsing(self):
        table = suppressions_in("x = 1\ny = 2  # repro: noqa=C002, C003\n")
        assert table == {2: {"C002", "C003"}}

    def test_is_suppressed_matches_line_and_rule(self):
        table = {3: {"C003"}}
        assert is_suppressed(finding(), table)
        assert not is_suppressed(finding(line=4), table)
        assert not is_suppressed(finding(rule_id="C001"), table)

    def test_all_wildcard(self):
        table = suppressions_in("a\nb\nc  # repro: noqa=ALL\n")
        assert is_suppressed(finding(), table)

    def test_severity_rank(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank
