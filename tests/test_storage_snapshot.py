"""Unit tests for manifests, snapshots, and compaction."""

import json
import os

import pytest

from repro.errors import StorageError
from repro.sensors.base import Observation
from repro.storage.durable import DurableAuditLog, DurableDatastore, StorageEngine
from repro.storage.snapshot import (
    Manifest,
    load_preferences,
    manifest_path,
    read_manifest,
    save_preferences,
    snapshot_paths,
    write_manifest,
)
from repro.storage.wal import list_segments


def obs(timestamp, subject=None, sensor_type="temperature"):
    return Observation.create(
        sensor_id="s1",
        sensor_type=sensor_type,
        timestamp=timestamp,
        space_id="r1",
        payload={"v": timestamp},
        subject_id=subject,
    )


class TestManifest:
    def test_missing_manifest_means_fresh_store(self, tmp_path):
        assert read_manifest(str(tmp_path)) == Manifest(snapshot_lsn=0)

    def test_round_trip(self, tmp_path):
        write_manifest(str(tmp_path), Manifest(snapshot_lsn=42))
        assert read_manifest(str(tmp_path)).snapshot_lsn == 42

    def test_corrupt_manifest_raises(self, tmp_path):
        with open(manifest_path(str(tmp_path)), "w") as handle:
            handle.write("not json")
        with pytest.raises(StorageError):
            read_manifest(str(tmp_path))

    def test_unsupported_format_raises(self, tmp_path):
        with open(manifest_path(str(tmp_path)), "w") as handle:
            json.dump({"format": 99, "snapshot_lsn": 1}, handle)
        with pytest.raises(StorageError):
            read_manifest(str(tmp_path))

    def test_write_is_atomic(self, tmp_path):
        write_manifest(str(tmp_path), Manifest(snapshot_lsn=1))
        assert not os.path.exists(manifest_path(str(tmp_path)) + ".tmp")


class TestPreferenceSnapshots:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "prefs.jsonl")
        prefs = [{"user_id": "mary", "preference_id": "p1", "effect": "deny"}]
        assert save_preferences(prefs, path) == 1
        assert load_preferences(path) == prefs

    def test_torn_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "prefs.jsonl")
        save_preferences([{"user_id": "mary", "preference_id": "p1"}], path)
        with open(path, "a") as handle:
            handle.write('{"user_id": "bo')
        assert len(load_preferences(path)) == 1


class TestCompaction:
    def make_engine(self, tmp_path, segment_bytes=256):
        engine = StorageEngine(str(tmp_path), segment_bytes=segment_bytes)
        return engine, DurableDatastore(engine), DurableAuditLog(engine)

    def test_compaction_folds_sealed_segments(self, tmp_path):
        engine, datastore, _ = self.make_engine(tmp_path)
        for index in range(20):
            datastore.insert(obs(float(index)))
        report = engine.compact()
        assert report.segments_folded > 0
        assert report.observations_snapshotted == 20
        assert report.snapshot_lsn == 20
        assert read_manifest(str(tmp_path)).snapshot_lsn == 20
        # Only the fresh active segment remains.
        assert list_segments(str(tmp_path)) == [engine.wal.active_path]
        engine.close()

    def test_compaction_physically_drops_erased_data(self, tmp_path):
        engine, datastore, _ = self.make_engine(tmp_path)
        for index in range(10):
            datastore.insert(obs(float(index), subject="mary"))
        datastore.forget_subject("mary")
        report = engine.compact()
        assert report.erasures_folded == 1
        assert report.erased_observations_dropped == 10
        engine.close()
        # Grep the whole directory: no file may still contain the
        # erased subject's id.
        for name in os.listdir(str(tmp_path)):
            with open(os.path.join(str(tmp_path), name), "rb") as handle:
                assert b"mary" not in handle.read(), name

    def test_compaction_honors_retention(self, tmp_path):
        engine, datastore, _ = self.make_engine(tmp_path)
        datastore.insert(obs(10.0))
        datastore.insert(obs(1000.0))
        report = engine.compact(retention_by_type={"temperature": 100.0}, now=1050.0)
        assert report.retention_purged == 1
        assert report.observations_snapshotted == 1
        engine.close()

    def test_second_compaction_collects_old_snapshot(self, tmp_path):
        engine, datastore, _ = self.make_engine(tmp_path)
        datastore.insert(obs(1.0))
        first = engine.compact()
        datastore.insert(obs(2.0))
        second = engine.compact()
        assert second.snapshot_lsn > first.snapshot_lsn
        assert second.obsolete_files_removed >= 3
        old = snapshot_paths(str(tmp_path), first.snapshot_lsn)
        assert not any(os.path.exists(path) for path in old.values())
        engine.close()

    def test_compaction_is_idempotent_when_idle(self, tmp_path):
        engine, datastore, _ = self.make_engine(tmp_path)
        datastore.insert(obs(1.0))
        first = engine.compact()
        second = engine.compact()
        assert second.snapshot_lsn == first.snapshot_lsn
        assert second.frames_folded == 0
        engine.close()
