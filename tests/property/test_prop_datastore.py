"""Property tests: datastore consistency and snapshot round-trips."""

import json

from hypothesis import given, settings, strategies as st

from repro.sensors.base import Observation
from repro.tippers.datastore import Datastore
from repro.tippers.persistence import observation_from_json, observation_to_json

observations = st.builds(
    Observation.create,
    sensor_id=st.sampled_from(["s1", "s2"]),
    sensor_type=st.sampled_from(["wifi_access_point", "motion_sensor", "camera"]),
    timestamp=st.floats(0, 1e6, allow_nan=False),
    space_id=st.one_of(st.none(), st.sampled_from(["r1", "r2", "r3"])),
    payload=st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.one_of(st.integers(-5, 5), st.text(max_size=5), st.booleans(), st.none()),
        max_size=3,
    ),
    subject_id=st.one_of(st.none(), st.sampled_from(["mary", "bob"])),
)


@settings(max_examples=100, deadline=None)
@given(batch=st.lists(observations, max_size=30))
def test_query_is_sorted_and_complete(batch):
    store = Datastore()
    store.insert_many(batch)
    everything = store.query()
    assert len(everything) == len(batch)
    times = [o.timestamp for o in everything]
    assert times == sorted(times)


@settings(max_examples=100, deadline=None)
@given(batch=st.lists(observations, max_size=30))
def test_stream_partition_is_exact(batch):
    """Per-type queries partition the full result set."""
    store = Datastore()
    store.insert_many(batch)
    by_stream = [
        o.observation_id
        for name in store.stream_names()
        for o in store.query(sensor_type=name)
    ]
    assert sorted(by_stream) == sorted(o.observation_id for o in batch)


@settings(max_examples=100, deadline=None)
@given(batch=st.lists(observations, max_size=30))
def test_subject_index_matches_scan(batch):
    store = Datastore()
    store.insert_many(batch)
    for subject in ("mary", "bob"):
        indexed = {o.observation_id for o in store.query(subject_id=subject)}
        scanned = {
            o.observation_id for o in store.query() if o.subject_id == subject
        }
        assert indexed == scanned


@settings(max_examples=100, deadline=None)
@given(batch=st.lists(observations, max_size=20), retention=st.floats(0, 1e6, allow_nan=False), now=st.floats(0, 2e6, allow_nan=False))
def test_sweep_removes_exactly_the_expired(batch, retention, now):
    store = Datastore()
    store.insert_many(batch)
    schedule = {"wifi_access_point": retention}
    store.sweep(now, schedule)
    cutoff = now - retention
    for observation in store.query():
        if observation.sensor_type == "wifi_access_point":
            assert observation.timestamp >= cutoff
    expected_kept = [
        o
        for o in batch
        if o.sensor_type != "wifi_access_point" or o.timestamp >= cutoff
    ]
    assert store.count() == len(expected_kept)


@settings(max_examples=150, deadline=None)
@given(observation=observations)
def test_snapshot_line_round_trip(observation):
    line = observation_to_json(observation)
    restored = observation_from_json(line)
    assert restored.to_dict() == observation.to_dict()
    # Lines are self-contained JSON objects.
    assert isinstance(json.loads(line), dict)


@settings(max_examples=75, deadline=None)
@given(batch=st.lists(observations, max_size=20))
def test_forget_subject_removes_all_and_only(batch):
    store = Datastore()
    store.insert_many(batch)
    removed = store.forget_subject("mary")
    assert removed == sum(1 for o in batch if o.subject_id == "mary")
    assert store.query(subject_id="mary") == []
    assert store.count() == len(batch) - removed
