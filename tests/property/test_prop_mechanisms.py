"""Property tests: privacy mechanisms."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.enforcement.mechanisms import (
    aggregate_counts,
    coarsen_space,
    degrade_observation,
    laplace_noise,
)
from repro.core.language.vocabulary import GranularityLevel
from repro.sensors.base import Observation
from repro.sensors.ontology import default_ontology
from repro.spatial.model import SpaceType, build_simple_building

_SPATIAL = build_simple_building("b", floors=3, rooms_per_floor=4)
_ONTOLOGY = default_ontology()
_SPACE_IDS = sorted(s.space_id for s in _SPATIAL)

granularities = st.sampled_from(list(GranularityLevel))

observations = st.builds(
    Observation.create,
    sensor_id=st.just("s1"),
    sensor_type=st.sampled_from(["wifi_access_point", "bluetooth_beacon", "camera"]),
    timestamp=st.floats(0, 1e6, allow_nan=False),
    space_id=st.one_of(st.none(), st.sampled_from(_SPACE_IDS)),
    payload=st.just({}),
    subject_id=st.one_of(st.none(), st.sampled_from(["mary", "bob"])),
)


class TestCoarsenSpace:
    @settings(max_examples=100)
    @given(space_id=st.sampled_from(_SPACE_IDS), level=granularities)
    def test_result_is_ancestor_or_hidden(self, space_id, level):
        out = coarsen_space(space_id, level, _SPATIAL)
        if out is not None:
            assert _SPATIAL.contains(out, space_id)

    @settings(max_examples=100)
    @given(space_id=st.sampled_from(_SPACE_IDS), level=granularities)
    def test_idempotent(self, space_id, level):
        once = coarsen_space(space_id, level, _SPATIAL)
        twice = coarsen_space(once, level, _SPATIAL)
        assert once == twice

    @settings(max_examples=100)
    @given(space_id=st.sampled_from(_SPACE_IDS))
    def test_monotone_in_level(self, space_id):
        """A coarser level never yields a strictly finer space."""
        order = [
            GranularityLevel.PRECISE,
            GranularityLevel.COARSE,
            GranularityLevel.BUILDING,
            GranularityLevel.NONE,
        ]
        previous_rank = None
        for level in order:
            out = coarsen_space(space_id, level, _SPATIAL)
            rank = (
                _SPATIAL.get(out).space_type.granularity_rank if out is not None else -1
            )
            if previous_rank is not None:
                assert rank <= previous_rank
            previous_rank = rank


class TestDegradeObservation:
    @settings(max_examples=100)
    @given(observation=observations, level=granularities)
    def test_identity_preserved(self, observation, level):
        out = degrade_observation(observation, level, _SPATIAL, _ONTOLOGY)
        if level is GranularityLevel.NONE:
            assert out is None
            return
        assert out is not None
        assert out.observation_id == observation.observation_id
        assert out.timestamp == observation.timestamp
        assert out.sensor_type == observation.sensor_type

    @settings(max_examples=100)
    @given(observation=observations, level=granularities)
    def test_never_reveals_more(self, observation, level):
        out = degrade_observation(observation, level, _SPATIAL, _ONTOLOGY)
        if out is None:
            return
        # Subject attribution never appears out of nowhere.
        if observation.subject_id is None:
            assert out.subject_id is None
        # Aggregate always strips attribution.
        if level is GranularityLevel.AGGREGATE:
            assert out.subject_id is None
        # Location never gets finer.
        if observation.space_id is None:
            assert out.space_id is None
        elif out.space_id is not None:
            assert _SPATIAL.contains(out.space_id, observation.space_id)

    @settings(max_examples=100)
    @given(observation=observations, level=granularities)
    def test_idempotent(self, observation, level):
        once = degrade_observation(observation, level, _SPATIAL, _ONTOLOGY)
        if once is None:
            return
        twice = degrade_observation(once, level, _SPATIAL, _ONTOLOGY)
        assert twice is not None
        assert twice.space_id == once.space_id
        assert twice.subject_id == once.subject_id
        assert twice.payload == once.payload


class TestAggregation:
    @settings(max_examples=100)
    @given(
        sightings=st.lists(
            st.tuples(
                st.sampled_from(["r1", "r2", "r3"]),
                st.sampled_from(["a", "b", "c", "d", "e"]),
            ),
            max_size=40,
        ),
        k=st.integers(1, 5),
    )
    def test_counts_respect_k(self, sightings, k):
        observations = [
            Observation.create("s", "bluetooth_beacon", 0.0, space, {}, subject_id=who)
            for space, who in sightings
        ]
        counts = aggregate_counts(observations, k=k)
        assert all(count >= k for count in counts.values())
        # Counts never exceed the distinct-subject universe.
        assert all(count <= 5 for count in counts.values())


class TestLaplace:
    @settings(max_examples=30)
    @given(
        value=st.floats(-1e3, 1e3, allow_nan=False),
        epsilon=st.floats(0.1, 10.0, allow_nan=False),
        seed=st.integers(0, 2**16),
    )
    def test_noise_is_finite_and_seeded(self, value, epsilon, seed):
        a = laplace_noise(value, 1.0, epsilon, random.Random(seed))
        b = laplace_noise(value, 1.0, epsilon, random.Random(seed))
        assert a == b
        assert abs(a) < float("inf")
