"""Property tests for the WAL frame codec and segment scanner.

The durability story rests on two properties: a frame stream always
round-trips exactly, and a *damaged* stream -- truncated anywhere, or
with any bit flipped past the intact prefix -- degrades to a clean
prefix of the original records, never an exception and never a wrong
record (the CRC covers both the header and the payload).
"""

import os

from hypothesis import given, settings, strategies as st

from repro.storage.wal import (
    FRAME_HEADER,
    SEGMENT_HEADER,
    SEGMENT_MAGIC,
    decode_frame,
    encode_frame,
    scan_segment,
)

payloads = st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=12)


def frame_stream(payload_list, first_lsn=1):
    return b"".join(
        encode_frame(first_lsn + index, payload)
        for index, payload in enumerate(payload_list)
    )


def decode_stream(buffer):
    """Decode frames until the decoder stops; return (frames, reason)."""
    frames, offset = [], 0
    while offset < len(buffer):
        frame, consumed, reason = decode_frame(buffer[offset:])
        if frame is None:
            return frames, reason
        frames.append(frame)
        offset += consumed
    return frames, ""


class TestFrameStreamProperties:
    @given(payload_list=payloads)
    def test_round_trip_is_exact(self, payload_list):
        frames, reason = decode_stream(frame_stream(payload_list))
        assert reason == ""
        assert [frame.payload for frame in frames] == payload_list
        assert [frame.lsn for frame in frames] == list(
            range(1, len(payload_list) + 1)
        )

    @given(payload_list=payloads, data=st.data())
    def test_truncation_yields_an_exact_prefix(self, payload_list, data):
        stream = frame_stream(payload_list)
        cut = data.draw(st.integers(0, len(stream) - 1), label="cut")
        frames, _reason = decode_stream(stream[:cut])
        # Never an exception, and always an exact prefix of the
        # original records -- a torn tail loses the suffix, nothing else.
        assert [frame.payload for frame in frames] == payload_list[: len(frames)]

    @given(payload_list=payloads, data=st.data())
    def test_bit_flip_never_yields_a_wrong_record(self, payload_list, data):
        stream = bytearray(frame_stream(payload_list))
        position = data.draw(st.integers(0, len(stream) - 1), label="position")
        bit = data.draw(st.integers(0, 7), label="bit")
        stream[position] ^= 1 << bit
        frames, _reason = decode_stream(bytes(stream))
        # Decoding stops at or before the damaged frame; every record
        # it *does* return is byte-identical to an original.
        assert [frame.payload for frame in frames] == payload_list[: len(frames)]

    @given(payload_list=payloads)
    def test_frame_sizes_account_for_every_byte(self, payload_list):
        stream = frame_stream(payload_list)
        assert len(stream) == sum(
            FRAME_HEADER.size + len(payload) for payload in payload_list
        )


class TestSegmentScanProperties:
    @settings(max_examples=25)
    @given(payload_list=payloads, data=st.data())
    def test_scanning_a_truncated_segment_never_raises(
        self, payload_list, data, tmp_path_factory
    ):
        directory = tmp_path_factory.mktemp("wal")
        path = str(directory / "wal-00000001.seg")
        body = frame_stream(payload_list)
        cut = data.draw(st.integers(0, len(body)), label="cut")
        with open(path, "wb") as handle:
            handle.write(SEGMENT_HEADER.pack(SEGMENT_MAGIC, 1))
            handle.write(body[:cut])
        scan = scan_segment(path)
        assert [frame.payload for frame in scan.frames] == payload_list[
            : len(scan.frames)
        ]
        # A cut exactly on a frame boundary is a clean (shorter) log;
        # anything else is a torn tail the scanner must flag.
        boundaries, offset = {0}, 0
        for payload in payload_list:
            offset += FRAME_HEADER.size + len(payload)
            boundaries.add(offset)
        assert scan.torn == (cut not in boundaries)
        os.remove(path)
