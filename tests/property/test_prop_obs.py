"""Property tests for the observability layer.

Mirrors the round-trip idiom of ``test_prop_documents.py``: snapshots
must reconstruct losslessly, and histogram merging must be exactly
equivalent to observing the concatenated sample streams -- the property
that makes per-shard metric aggregation trustworthy.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)

samples = st.floats(
    min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(samples, max_size=80)
bucket_sets = st.sampled_from(
    [DEFAULT_LATENCY_BUCKETS, DEFAULT_COUNT_BUCKETS, (1.0, 2.0, 4.0, 8.0)]
)

label_names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters="_"),
    min_size=1,
    max_size=12,
)
label_dicts = st.dictionaries(label_names, label_names, max_size=3)


def build_histogram(values, boundaries):
    histogram = Histogram("h", boundaries=boundaries)
    for value in values:
        histogram.observe(value)
    return histogram


def assert_snapshots_equivalent(a, b):
    """Equal snapshots, modulo float-addition reassociation in ``sum``."""
    sum_a, sum_b = a.pop("sum"), b.pop("sum")
    assert a == b
    assert sum_a == pytest.approx(sum_b, rel=1e-12, abs=1e-12)


@settings(max_examples=100, deadline=None)
@given(xs=sample_lists, ys=sample_lists, boundaries=bucket_sets)
def test_merged_histogram_equals_concatenated_samples(xs, ys, boundaries):
    merged = build_histogram(xs, boundaries).merge(build_histogram(ys, boundaries))
    concatenated = build_histogram(xs + ys, boundaries)
    assert_snapshots_equivalent(merged.snapshot(), concatenated.snapshot())


@settings(max_examples=100, deadline=None)
@given(xs=sample_lists, ys=sample_lists, boundaries=bucket_sets)
def test_merged_percentiles_equal_concatenated_percentiles(xs, ys, boundaries):
    merged = build_histogram(xs, boundaries).merge(build_histogram(ys, boundaries))
    concatenated = build_histogram(xs + ys, boundaries)
    for p in (1, 25, 50, 75, 90, 95, 99, 100):
        assert merged.percentile(p) == concatenated.percentile(p)


@settings(max_examples=100, deadline=None)
@given(xs=sample_lists, ys=sample_lists, boundaries=bucket_sets)
def test_merge_is_commutative(xs, ys, boundaries):
    a = build_histogram(xs, boundaries)
    b = build_histogram(ys, boundaries)
    assert a.merge(b).snapshot() == b.merge(a).snapshot()


@settings(max_examples=100, deadline=None)
@given(values=sample_lists, boundaries=bucket_sets)
def test_histogram_snapshot_round_trip(values, boundaries):
    histogram = build_histogram(values, boundaries)
    restored = Histogram.from_snapshot("h", (), histogram.snapshot())
    assert restored.snapshot() == histogram.snapshot()


counter_ops = st.lists(
    st.tuples(label_names, label_dicts, st.integers(min_value=0, max_value=1000)),
    max_size=20,
)
gauge_ops = st.lists(
    st.tuples(label_names, label_dicts, st.floats(-1e6, 1e6, allow_nan=False)),
    max_size=20,
)
histogram_ops = st.lists(
    st.tuples(label_names, label_dicts, sample_lists, bucket_sets),
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(counters=counter_ops, gauges=gauge_ops, histograms=histogram_ops)
def test_registry_snapshot_restore_round_trip(counters, gauges, histograms):
    registry = MetricsRegistry()
    for name, labels, amount in counters:
        registry.counter(name, labels).inc(amount)
    for name, labels, value in gauges:
        registry.gauge(name, labels).set(value)
    for name, labels, values, boundaries in histograms:
        histogram = registry.histogram(name, labels, boundaries)
        for value in values:
            histogram.observe(value)
    snapshot = registry.snapshot()
    assert MetricsRegistry.restore(snapshot).snapshot() == snapshot


@settings(max_examples=60, deadline=None)
@given(counters=counter_ops)
def test_registry_totals_match_snapshot(counters):
    registry = MetricsRegistry()
    for name, labels, amount in counters:
        registry.counter(name, labels).inc(amount)
    snapshot = registry.snapshot()
    by_name: dict = {}
    for entry in snapshot["counters"]:
        by_name[entry["name"]] = by_name.get(entry["name"], 0) + entry["value"]
    for name, expected in by_name.items():
        assert registry.total(name) == expected
