"""Shared hypothesis strategies for the property tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.language.duration import Duration
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.conditions import (
    AllOf,
    Always,
    Not,
    ProfileCondition,
    SpatialCondition,
    TemporalCondition,
)
from repro.core.policy.preference import UserPreference

USERS = ["mary", "bob", "carol", "dan"]
SPACES = ["b", "b-f1", "b-f2", "b-1001", "b-1002", "b-2001", "b-2002"]
SENSOR_TYPES = ["wifi_access_point", "bluetooth_beacon", "camera", "motion_sensor"]

categories = st.sampled_from(list(DataCategory))
purposes = st.sampled_from(list(Purpose))
granularities = st.sampled_from(list(GranularityLevel))
phases = st.sampled_from(list(DecisionPhase))
effects = st.sampled_from(list(Effect))
requester_kinds = st.sampled_from(list(RequesterKind))


def subset(values, max_size=3):
    """A possibly-empty selector tuple over ``values`` (empty = wildcard)."""
    return st.lists(st.sampled_from(values), max_size=max_size, unique=True).map(tuple)


durations = st.builds(
    Duration,
    years=st.integers(0, 3),
    months=st.integers(0, 24),
    weeks=st.integers(0, 10),
    days=st.integers(0, 400),
    hours=st.integers(0, 48),
    minutes=st.integers(0, 120),
    seconds=st.integers(0, 120),
)


requests = st.builds(
    DataRequest,
    requester_id=st.sampled_from(["svc-a", "svc-b", "building"]),
    requester_kind=requester_kinds,
    phase=phases,
    category=categories,
    subject_id=st.one_of(st.none(), st.sampled_from(USERS)),
    space_id=st.one_of(st.none(), st.sampled_from(SPACES)),
    timestamp=st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
    purpose=st.one_of(st.none(), purposes),
    granularity=granularities,
    sensor_type=st.one_of(st.none(), st.sampled_from(SENSOR_TYPES)),
)


_leaf_conditions = st.one_of(
    st.just(Always()),
    st.builds(SpatialCondition, space_id=st.sampled_from(SPACES)),
    st.builds(ProfileCondition, group=st.sampled_from(["faculty", "staff", "grad-student"])),
    st.builds(
        TemporalCondition,
        start_hour=st.floats(0.0, 24.0, allow_nan=False),
        end_hour=st.floats(0.0, 24.0, allow_nan=False),
        weekdays_only=st.booleans(),
    ),
)

conditions = st.one_of(
    _leaf_conditions,
    st.builds(Not, _leaf_conditions),
    st.builds(lambda a, b: AllOf((a, b)), _leaf_conditions, _leaf_conditions),
)

_policy_counter = st.integers(0, 10_000)

policies = st.builds(
    BuildingPolicy,
    policy_id=st.uuids().map(lambda u: "p-%s" % u.hex[:8]),
    name=st.just("policy"),
    description=st.just("generated"),
    effect=effects,
    categories=subset(list(DataCategory)),
    sensor_types=subset(SENSOR_TYPES),
    space_ids=subset(SPACES, max_size=2),
    phases=st.lists(phases, min_size=1, max_size=4, unique=True).map(tuple),
    purposes=subset(list(Purpose)),
    granularity=granularities,
    retention=st.one_of(st.none(), durations),
    mandatory=st.booleans(),
    priority=st.integers(-5, 5),
)

preferences = st.builds(
    UserPreference,
    preference_id=st.uuids().map(lambda u: "f-%s" % u.hex[:8]),
    user_id=st.sampled_from(USERS),
    description=st.just("generated"),
    effect=effects,
    categories=subset(list(DataCategory)),
    phases=st.lists(phases, min_size=1, max_size=4, unique=True).map(tuple),
    requester_ids=subset(["svc-a", "svc-b", "building"], max_size=2),
    requester_kinds=subset(list(RequesterKind), max_size=2),
    purposes=subset(list(Purpose)),
    space_ids=subset(SPACES, max_size=2),
    granularity_cap=granularities,
    strength=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
