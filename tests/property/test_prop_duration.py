"""Property tests: ISO-8601 durations."""

from hypothesis import given, strategies as st

from repro.core.language.duration import Duration
from tests.property.strategies import durations


@given(durations)
def test_isoformat_parse_round_trip(duration):
    """Format-then-parse is the identity on component values."""
    assert Duration.parse(duration.isoformat()) == duration


@given(st.integers(min_value=0, max_value=10**9))
def test_from_seconds_total_seconds_round_trip(total):
    assert Duration.from_seconds(total).total_seconds() == total


@given(durations, durations)
def test_ordering_consistent_with_total_seconds(a, b):
    assert (a < b) == (a.total_seconds() < b.total_seconds())
    assert (a <= b) == (a.total_seconds() <= b.total_seconds())


@given(durations)
def test_total_seconds_non_negative(duration):
    assert duration.total_seconds() >= 0


@given(durations)
def test_isoformat_is_valid_iso(duration):
    text = duration.isoformat()
    assert text.startswith("P")
    # Parsing must never raise for our own output.
    Duration.parse(text)
