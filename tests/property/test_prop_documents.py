"""Property tests: policy documents round-trip through JSON."""

from hypothesis import given, settings, strategies as st

from repro.core.language.document import (
    ObservationDescription,
    ResourceDescription,
    ResourcePolicyDocument,
    ServicePolicyDocument,
    SettingOptionDescription,
    SettingsDocument,
)
from repro.core.language.vocabulary import GranularityLevel
from tests.property.strategies import durations

names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" -_"),
    min_size=1,
    max_size=30,
).filter(lambda s: s.strip())

granularity_or_none = st.one_of(st.none(), st.sampled_from(list(GranularityLevel)))

observation_descriptions = st.builds(
    ObservationDescription,
    name=names,
    description=st.text(max_size=50),
    granularity=granularity_or_none,
    inferred=st.lists(names, max_size=3).map(tuple),
)

resources = st.builds(
    ResourceDescription,
    name=names,
    spatial_name=names,
    spatial_type=st.sampled_from(["Building", "Floor", "Room"]),
    owner_name=st.one_of(st.just(""), names),
    owner_more_info=st.one_of(st.just(""), st.just("https://example.org")),
    sensor_type=names,
    sensor_description=st.text(max_size=50),
    purposes=st.dictionaries(names, st.text(max_size=30), min_size=1, max_size=3),
    observations=st.lists(observation_descriptions, min_size=1, max_size=3).map(tuple),
    retention=st.one_of(st.none(), durations),
    retention_description=st.text(max_size=30),
    resource_id=st.one_of(st.just(""), names),
    settings_url=st.one_of(st.just(""), st.just("https://example.org/settings")),
)


@settings(max_examples=100, deadline=None)
@given(resource_list=st.lists(resources, min_size=1, max_size=3))
def test_resource_document_round_trip(resource_list):
    document = ResourcePolicyDocument(resource_list)
    assert ResourcePolicyDocument.from_json(document.to_json()) == document


@settings(max_examples=100, deadline=None)
@given(
    service_id=names,
    observation_list=st.lists(observation_descriptions, min_size=1, max_size=3),
    purposes=st.dictionaries(
        names.filter(lambda n: n != "service_id"),
        st.text(max_size=30),
        min_size=1,
        max_size=3,
    ),
    developer=st.one_of(st.just(""), names),
    third_party=st.booleans(),
)
def test_service_document_round_trip(
    service_id, observation_list, purposes, developer, third_party
):
    document = ServicePolicyDocument(
        service_id=service_id,
        observations=observation_list,
        purposes=purposes,
        developer_name=developer,
        third_party=third_party,
    )
    assert ServicePolicyDocument.from_json(document.to_json()) == document


setting_options = st.builds(
    SettingOptionDescription,
    description=names,
    on=names,
    granularity=granularity_or_none,
    key=st.one_of(st.just(""), names),
)


@settings(max_examples=100, deadline=None)
@given(
    groups=st.lists(
        st.lists(setting_options, min_size=1, max_size=4), min_size=1, max_size=3
    )
)
def test_settings_document_round_trip(groups):
    document = SettingsDocument(groups)
    assert SettingsDocument.from_json(document.to_json()) == document
