"""Property tests for the flow analyzer's determinism guarantees.

The analyzer promises byte-identical output for the same tree: the
finding order is a total order invariant under input permutation, the
analysis itself is invariant under module-visit order, and the
baseline serialization round-trips exactly.
"""

import json
import textwrap

from hypothesis import given, strategies as st

from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.flow import BaselineEntry, FlowBaseline
from repro.analysis.flow.analyzer import analyze_flow_sources
from repro.analysis.flow.model import FlowModel

MODEL = FlowModel(
    source_specs=(r"^repro\.pipe\.sensor\.Sensor\.sample$",),
    sink_specs=(r"^repro\.pipe\.response\.Response$",),
    sanitizer_specs=(r"^repro\.pipe\.engine\.Engine\.decide$",),
    audit_specs=(),
)

#: Three modules with a cross-module leak and a cross-module safe
#: path, so visit order could plausibly matter -- and must not.
MODULES = {
    "src/repro/pipe/sensor.py": textwrap.dedent(
        """
        class Sensor:
            def sample(self):
                return {"who": "mary"}
        """
    ),
    "src/repro/pipe/response.py": textwrap.dedent(
        """
        class Response:
            def __init__(self, rows):
                self.rows = rows
        """
    ),
    "src/repro/pipe/engine.py": textwrap.dedent(
        """
        class Engine:
            def decide(self, request):
                return request
        """
    ),
    "src/repro/pipe/service.py": textwrap.dedent(
        """
        from repro.pipe.engine import Engine
        from repro.pipe.response import Response
        from repro.pipe.sensor import Sensor

        def leak(sensor: Sensor):
            return Response(sensor.sample())

        def safe(sensor: Sensor, engine: Engine):
            rows = sensor.sample()
            decision = engine.decide(rows)
            if decision:
                return Response(rows)
            return None
        """
    ),
}

EXPECTED = analyze_flow_sources(dict(MODULES), model=MODEL)


# The message is deliberately constant: it is not part of the sort
# key, so findings that tie on the key must be *identical* for strict
# permutation invariance (the analyzer never emits key-ties with
# different messages -- each rule anchors one message per site).
findings = st.lists(
    st.builds(
        Finding,
        rule_id=st.sampled_from(["F001", "F002", "F006", "C001"]),
        severity=st.sampled_from(list(Severity)),
        message=st.just("m"),
        subject=st.sampled_from(["", "m.f", "m.C.g"]),
        file=st.sampled_from(["", "a.py", "b.py"]),
        line=st.integers(0, 5),
    ),
    max_size=16,
)


@given(findings, st.randoms())
def test_sort_findings_is_permutation_invariant(items, rnd):
    shuffled = list(items)
    rnd.shuffle(shuffled)
    assert sort_findings(shuffled) == sort_findings(items)


@given(findings)
def test_sort_findings_is_idempotent(items):
    once = sort_findings(items)
    assert sort_findings(once) == once


@given(st.permutations(sorted(MODULES)))
def test_analysis_is_invariant_under_module_visit_order(order):
    reordered = {path: MODULES[path] for path in order}
    assert analyze_flow_sources(reordered, model=MODEL) == EXPECTED


def test_the_expected_fixture_actually_fires():
    assert [f.rule_id for f in EXPECTED] == ["F001"]
    assert EXPECTED[0].subject == "repro.pipe.service.leak"


entries = st.lists(
    st.builds(
        BaselineEntry,
        rule_id=st.sampled_from(["F001", "F004", "F006"]),
        file=st.sampled_from(["a.py", "src/b.py", "src/repro/c.py"]),
        function=st.sampled_from(["m.f", "m.C.g", "m.h"]),
        justification=st.text(min_size=1, max_size=24).filter(
            lambda s: bool(s.strip())
        ),
    ),
    unique_by=lambda entry: entry.key(),
    max_size=6,
)


@given(entries)
def test_baseline_serialization_round_trips(items):
    ordered = tuple(sorted(items, key=lambda entry: entry.key()))
    baseline = FlowBaseline(entries=ordered)
    assert FlowBaseline.from_dict(json.loads(baseline.dumps())) == baseline


@given(entries)
def test_baseline_dumps_is_order_insensitive(items):
    ordered = tuple(sorted(items, key=lambda entry: entry.key()))
    assert (
        FlowBaseline(entries=tuple(reversed(ordered))).dumps()
        == FlowBaseline(entries=ordered).dumps()
    )
