"""Property test: the caching engine is observably identical.

For any rule set (including time-sensitive temporal conditions), any
request stream (including repeats at different timestamps), and any
interleaved rule mutation, the caching engine must produce exactly the
decisions the plain engine produces.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.core.enforcement.cache import CachingEnforcementEngine
from repro.core.enforcement.engine import EnforcementEngine
from repro.core.policy.conditions import EvaluationContext
from repro.core.reasoner.index import PolicyIndex
from repro.spatial.model import build_simple_building
from tests.property.strategies import (
    conditions,
    policies,
    preferences,
    requests,
)

_SPATIAL = build_simple_building("b", floors=2, rooms_per_floor=4)

conditioned_policies = st.builds(
    lambda policy, condition: dataclasses.replace(policy, condition=condition),
    policies,
    conditions,
)

conditioned_preferences = st.builds(
    lambda preference, condition: dataclasses.replace(preference, condition=condition),
    preferences,
    conditions,
)


def build_engines(policy_list, preference_list):
    plain_store, cached_store = PolicyIndex(), PolicyIndex()
    for policy in policy_list:
        plain_store.add_policy(policy)
        cached_store.add_policy(policy)
    for preference in preference_list:
        plain_store.add_preference(preference)
        cached_store.add_preference(preference)
    plain = EnforcementEngine(
        store=plain_store, context=EvaluationContext(spatial=_SPATIAL)
    )
    cached = CachingEnforcementEngine(
        store=cached_store, context=EvaluationContext(spatial=_SPATIAL)
    )
    return plain, cached


@settings(max_examples=75, deadline=None)
@given(
    policy_list=st.lists(conditioned_policies, max_size=5),
    preference_list=st.lists(conditioned_preferences, max_size=5),
    request_list=st.lists(requests, min_size=1, max_size=10),
    timestamps=st.lists(st.floats(0, 1e6, allow_nan=False), min_size=3, max_size=3),
)
def test_cached_equals_plain_with_repeats(
    policy_list, preference_list, request_list, timestamps
):
    plain, cached = build_engines(policy_list, preference_list)
    for request in request_list:
        for timestamp in timestamps:
            variant = dataclasses.replace(request, timestamp=timestamp)
            assert (
                cached.decide(variant).resolution == plain.decide(variant).resolution
            )
    # Audit trails have the same length (every decision audited).
    assert len(cached.audit) == len(plain.audit)


@settings(max_examples=50, deadline=None)
@given(
    policy_list=st.lists(conditioned_policies, min_size=1, max_size=4),
    preference_list=st.lists(conditioned_preferences, max_size=4),
    extra=conditioned_preferences,
    request=requests,
)
def test_mutation_invalidates_cache(policy_list, preference_list, extra, request):
    plain, cached = build_engines(policy_list, preference_list)
    cached.decide(request)
    plain.decide(request)
    # Mutate both stores identically, then decide again.
    plain.store.add_preference(extra)
    cached.store.add_preference(extra)
    assert cached.decide(request).resolution == plain.decide(request).resolution
    plain.store.remove_policy(policy_list[0].policy_id)
    cached.store.remove_policy(policy_list[0].policy_id)
    assert cached.decide(request).resolution == plain.decide(request).resolution
