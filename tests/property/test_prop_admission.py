"""Property tests for the overload-protection primitives.

The admission layer's guarantees are what the capacity soak leans on:
token buckets never go negative and never exceed capacity, topic-queue
watermark levels agree with the load fraction, CRITICAL traffic is
never shed, and the shed ledger always balances.  Hypothesis drives
arbitrary operation sequences through each invariant.
"""

from hypothesis import given, settings, strategies as st

from repro.net.admission import (
    AdmissionController,
    LoadLevel,
    Priority,
    TokenBucket,
    TopicQueue,
)
from repro.obs.metrics import MetricsRegistry

buckets = st.builds(
    TokenBucket,
    capacity=st.floats(0.5, 64.0, allow_nan=False),
    refill_per_step=st.floats(0.0, 8.0, allow_nan=False),
)

bucket_ops = st.lists(
    st.one_of(
        st.just(("step", 0.0)),
        st.tuples(st.just("take"), st.floats(0.0, 16.0, allow_nan=False)),
    ),
    max_size=64,
)

queues = st.builds(
    TopicQueue,
    capacity=st.integers(1, 256),
    high_watermark=st.floats(0.05, 0.6, allow_nan=False),
    shed_watermark=st.floats(0.65, 1.0, allow_nan=False),
    drain_per_step=st.floats(0.5, 32.0, allow_nan=False),
)

queue_ops = st.lists(
    st.one_of(
        st.just(("drain", 0.0)),
        st.tuples(st.just("arrive"), st.floats(0.0, 300.0, allow_nan=False)),
    ),
    max_size=64,
)


class TestTokenBucketProperties:
    @given(bucket=buckets, ops=bucket_ops)
    def test_tokens_stay_within_bounds(self, bucket, ops):
        for op, amount in ops:
            if op == "step":
                bucket.step()
            else:
                bucket.try_take(amount)
            assert 0.0 <= bucket.tokens <= bucket.capacity

    @given(bucket=buckets, spends=st.lists(st.floats(0.0, 16.0), max_size=32))
    def test_refill_is_monotone(self, bucket, spends):
        for spend in spends:
            bucket.try_take(spend)
        before = bucket.tokens
        bucket.step()
        assert bucket.tokens >= before

    @given(bucket=buckets, cost=st.floats(0.0, 200.0, allow_nan=False))
    def test_failed_take_leaves_tokens_unchanged(self, bucket, cost):
        before = bucket.tokens
        taken = bucket.try_take(cost)
        if taken:
            assert bucket.tokens == before - cost
        else:
            assert bucket.tokens == before


class TestTopicQueueProperties:
    @given(queue=queues, ops=queue_ops)
    def test_depth_stays_within_capacity(self, queue, ops):
        for op, units in ops:
            if op == "drain":
                queue.drain()
            else:
                queue.arrive(units)
            assert 0.0 <= queue.depth <= queue.capacity
            assert 0.0 <= queue.load <= 1.0

    @given(queue=queues, ops=queue_ops)
    def test_level_agrees_with_watermarks(self, queue, ops):
        for op, units in ops:
            if op == "drain":
                queue.drain()
            else:
                queue.arrive(units)
            level = queue.level()
            if level is LoadLevel.OVERLOAD:
                assert queue.load >= queue.shed_watermark
            elif level is LoadLevel.BROWNOUT:
                assert queue.high_watermark <= queue.load < queue.shed_watermark
            else:
                assert queue.load < queue.high_watermark


calls = st.lists(
    st.tuples(
        st.sampled_from(["tippers", "irr"]),
        st.sampled_from(
            ["get_policy_document", "locate_user", "discover", "dsar_report"]
        ),
        st.sampled_from(["alice", "bob", "svc", None]),
    ),
    max_size=80,
)


class TestAdmissionControllerProperties:
    @settings(deadline=None)
    @given(seed=st.integers(0, 2**16), burst=st.integers(0, 40), ops=calls)
    def test_critical_is_never_shed_and_ledger_balances(
        self, seed, burst, ops
    ):
        controller = AdmissionController(
            seed=seed,
            queue_capacity=16,
            drain_per_step=1.0,
            principal_capacity=4.0,
            principal_refill_per_step=0.25,
            metrics=MetricsRegistry(),
        )
        if burst:
            controller.install_fault_plane(lambda target, method: burst)
        for target, method, principal in ops:
            ticket = controller.admit(target, method, principal)
            if controller.classify(target, method) is Priority.CRITICAL:
                assert ticket.admitted
            if not ticket.admitted and "over budget" not in ticket.reason:
                # Non-budget sheds only happen under watermark pressure.
                if ticket.priority is Priority.NORMAL:
                    assert ticket.load >= controller.shed_watermark
                else:
                    assert ticket.load >= controller.high_watermark
        ledger = controller.ledger
        assert ledger.checked == ledger.admitted + ledger.shed
        assert ledger.checked == len(ops)
        assert sum(ledger.admitted_by_class.values()) == ledger.admitted
        assert sum(ledger.shed_by_class.values()) == ledger.shed
        assert ledger.shed_by_class.get(Priority.CRITICAL.value, 0) == 0
