"""Property tests: resolution invariants across all strategies."""

from hypothesis import given, settings, strategies as st

from repro.core.language.vocabulary import GranularityLevel
from repro.core.policy.base import Effect
from repro.core.policy.conditions import EvaluationContext
from repro.core.reasoner.matcher import PolicyMatcher
from repro.core.reasoner.index import LinearRuleStore
from repro.core.reasoner.resolution import ResolutionStrategy, resolve
from tests.property.strategies import policies, preferences, requests

strategies_list = st.sampled_from(list(ResolutionStrategy))


def match_for(policy_list, preference_list, request):
    store = LinearRuleStore()
    for policy in policy_list:
        store.add_policy(policy)
    for preference in preference_list:
        store.add_preference(preference)
    return PolicyMatcher(store, EvaluationContext()).match(request)


@settings(max_examples=150, deadline=None)
@given(
    policy_list=st.lists(policies, max_size=6),
    preference_list=st.lists(preferences, max_size=6),
    request=requests,
    strategy=strategies_list,
)
def test_core_invariants(policy_list, preference_list, request, strategy):
    match = match_for(policy_list, preference_list, request)
    resolution = resolve(match, strategy)

    # Denied resolutions carry NONE granularity.
    if resolution.effect is Effect.DENY:
        assert resolution.granularity is GranularityLevel.NONE
        return

    # A grant never exceeds the requested granularity.
    assert resolution.granularity.rank <= request.granularity.rank
    # A grant never exceeds what some allowing policy authorizes.
    max_policy = max(
        (p.granularity.rank for p in match.allowing_policies), default=-1
    )
    assert resolution.granularity.rank <= max_policy
    # A grant is never NONE.
    assert resolution.granularity is not GranularityLevel.NONE
    # Denying policies always win.
    assert not match.denying_policies
    # No authorization, no grant.
    assert match.has_building_authorization


@settings(max_examples=150, deadline=None)
@given(
    policy_list=st.lists(policies, max_size=6),
    preference_list=st.lists(preferences, max_size=6),
    request=requests,
)
def test_user_wins_honours_every_optout(policy_list, preference_list, request):
    match = match_for(policy_list, preference_list, request)
    resolution = resolve(match, ResolutionStrategy.USER_WINS)
    if match.user_objects:
        assert resolution.effect is Effect.DENY
    if resolution.effect is Effect.ALLOW and match.preferences:
        caps = [p.permitted_granularity().rank for p in match.preferences]
        assert resolution.granularity.rank <= min(caps)


@settings(max_examples=150, deadline=None)
@given(
    policy_list=st.lists(policies, max_size=6),
    preference_list=st.lists(preferences, max_size=6),
    request=requests,
)
def test_negotiate_only_overrides_with_mandatory_and_notifies(
    policy_list, preference_list, request
):
    match = match_for(policy_list, preference_list, request)
    resolution = resolve(match, ResolutionStrategy.NEGOTIATE)
    if resolution.effect is Effect.ALLOW and match.preferences:
        caps = [p.permitted_granularity().rank for p in match.preferences]
        exceeded = resolution.granularity.rank > min(caps)
        if exceeded:
            assert match.mandatory_policies, "only mandatory policies may override"
            assert resolution.notify_user, "override requires notification"


@settings(max_examples=100, deadline=None)
@given(
    policy_list=st.lists(policies, min_size=1, max_size=6),
    preference_list=st.lists(preferences, max_size=5),
    extra_preference=preferences,
    request=requests,
)
def test_adding_a_preference_never_reveals_more(
    policy_list, preference_list, extra_preference, request
):
    """Under NEGOTIATE (without mandatory overrides), more preferences
    can only restrict, never widen, what is released."""
    non_mandatory = [
        p for p in policy_list if not p.mandatory
    ]
    match_before = match_for(non_mandatory, preference_list, request)
    match_after = match_for(
        non_mandatory, preference_list + [extra_preference], request
    )
    before = resolve(match_before, ResolutionStrategy.NEGOTIATE)
    after = resolve(match_after, ResolutionStrategy.NEGOTIATE)
    assert after.granularity.rank <= before.granularity.rank
