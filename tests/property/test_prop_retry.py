"""Property tests for the retry/deadline primitives.

The resilience layer's whole value is determinism under uncertainty:
the backoff schedule must be a pure function of the policy's fields,
bounded by the configured cap, and never overdraw a deadline budget.
"""

from hypothesis import given, settings, strategies as st

from repro.net.resilience import Deadline, RetryPolicy

policies = st.builds(
    RetryPolicy,
    max_retries=st.integers(0, 8),
    base_delay_s=st.floats(0.001, 5.0, allow_nan=False),
    multiplier=st.floats(1.0, 4.0, allow_nan=False),
    max_delay_s=st.floats(0.001, 10.0, allow_nan=False),
    jitter=st.floats(0.0, 1.0, allow_nan=False),
    seed=st.integers(0, 2**16),
)


class TestScheduleProperties:
    @given(policy=policies)
    def test_schedule_is_deterministic(self, policy):
        clone = RetryPolicy(
            max_retries=policy.max_retries,
            base_delay_s=policy.base_delay_s,
            multiplier=policy.multiplier,
            max_delay_s=policy.max_delay_s,
            jitter=policy.jitter,
            seed=policy.seed,
        )
        assert policy.schedule() == clone.schedule()
        assert policy.schedule() == policy.schedule()

    @given(policy=policies)
    def test_schedule_length_matches_retry_budget(self, policy):
        assert len(policy.schedule()) == policy.max_retries

    @given(policy=policies)
    def test_every_delay_is_bounded(self, policy):
        for delay in policy.schedule():
            assert 0.0 <= delay <= policy.max_delay_s

    @given(policy=policies)
    def test_base_schedule_is_monotone_and_capped(self, policy):
        schedule = policy.base_schedule()
        for earlier, later in zip(schedule, schedule[1:]):
            assert earlier <= later
        for delay in schedule:
            assert delay <= policy.max_delay_s

    @given(policy=policies)
    def test_jitter_band(self, policy):
        for attempt in range(1, policy.max_retries + 1):
            base = policy.base_delay_for(attempt)
            delay = policy.delay_for(attempt)
            assert delay <= min(base * (1.0 + policy.jitter), policy.max_delay_s)
            assert delay >= min(base * (1.0 - policy.jitter), policy.max_delay_s)


class TestBudgetProperties:
    @given(policy=policies, budget=st.floats(0.0, 20.0, allow_nan=False))
    def test_schedule_within_never_overdraws(self, policy, budget):
        kept = policy.schedule_within(budget)
        assert sum(kept) <= budget
        assert kept == policy.schedule()[: len(kept)]

    @given(policy=policies, budget=st.floats(0.01, 20.0, allow_nan=False))
    def test_charging_the_kept_schedule_always_fits(self, policy, budget):
        deadline = Deadline(budget)
        for delay in policy.schedule_within(budget):
            assert deadline.try_charge(delay)
        assert deadline.spent_s <= deadline.budget_s

    @given(
        budget=st.floats(0.01, 100.0, allow_nan=False),
        charges=st.lists(st.floats(0.0, 10.0, allow_nan=False), max_size=30),
    )
    def test_deadline_never_exceeds_budget(self, budget, charges):
        deadline = Deadline(budget)
        for charge in charges:
            deadline.try_charge(charge)
            assert deadline.spent_s <= deadline.budget_s
            assert deadline.remaining_s >= 0.0
        assert deadline.expired == (deadline.remaining_s == 0.0)
