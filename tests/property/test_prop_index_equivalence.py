"""Property test: the policy index is equivalent to a linear scan.

The paper's Section V-C optimization must be a pure performance change:
for any rule set and any request, matching against the index yields the
exact same applicable rules (and hence the same resolution) as matching
against the naive store.
"""

from hypothesis import given, settings, strategies as st

from repro.core.policy.conditions import EvaluationContext
from repro.core.reasoner.index import LinearRuleStore, PolicyIndex
from repro.core.reasoner.matcher import PolicyMatcher
from repro.core.reasoner.resolution import ResolutionStrategy, resolve
from repro.spatial.model import build_simple_building
from tests.property.strategies import policies, preferences, requests

_SPATIAL = build_simple_building("b", floors=2, rooms_per_floor=4)


def make_context():
    return EvaluationContext(
        spatial=_SPATIAL,
        user_profiles={"mary": frozenset({"faculty"}), "bob": frozenset({"staff"})},
    )


@settings(max_examples=100, deadline=None)
@given(
    policy_list=st.lists(policies, max_size=8),
    preference_list=st.lists(preferences, max_size=8),
    request=requests,
)
def test_index_matches_linear_scan(policy_list, preference_list, request):
    context = make_context()
    linear = LinearRuleStore()
    index = PolicyIndex()
    for policy in policy_list:
        linear.add_policy(policy)
        index.add_policy(policy)
    for preference in preference_list:
        linear.add_preference(preference)
        index.add_preference(preference)

    linear_match = PolicyMatcher(linear, context).match(request)
    index_match = PolicyMatcher(index, context).match(request)

    assert [p.policy_id for p in linear_match.policies] == [
        p.policy_id for p in index_match.policies
    ]
    assert [p.preference_id for p in linear_match.preferences] == [
        p.preference_id for p in index_match.preferences
    ]

    for strategy in ResolutionStrategy:
        assert resolve(linear_match, strategy) == resolve(index_match, strategy)


@settings(max_examples=50, deadline=None)
@given(
    policy_list=st.lists(policies, max_size=6),
    preference_list=st.lists(preferences, max_size=6),
    request=requests,
)
def test_index_survives_removals(policy_list, preference_list, request):
    context = make_context()
    linear = LinearRuleStore()
    index = PolicyIndex()
    for policy in policy_list:
        linear.add_policy(policy)
        index.add_policy(policy)
    for preference in preference_list:
        linear.add_preference(preference)
        index.add_preference(preference)
    # Remove half the policies and one user's preferences from both.
    for policy in policy_list[::2]:
        linear.remove_policy(policy.policy_id)
        index.remove_policy(policy.policy_id)
    linear.remove_preferences_of("mary")
    index.remove_preferences_of("mary")

    linear_match = PolicyMatcher(linear, context).match(request)
    index_match = PolicyMatcher(index, context).match(request)
    assert [p.policy_id for p in linear_match.policies] == [
        p.policy_id for p in index_match.policies
    ]
    assert [p.preference_id for p in linear_match.preferences] == [
        p.preference_id for p in index_match.preferences
    ]
