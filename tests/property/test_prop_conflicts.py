"""Property tests: conflict detection is sound (no missed conflicts).

Static detection over-approximates; what it must never do is *miss* a
conflict: whenever a concrete request shows an allowing policy and an
objecting (or capping) preference both in force, the static pass must
have flagged that pair.
"""

from hypothesis import given, settings, strategies as st

from repro.core.policy.base import Effect
from repro.core.policy.conditions import EvaluationContext
from repro.core.policy.serialization import (
    preference_from_dict,
    preference_to_dict,
)
from repro.core.reasoner.conflicts import detect_conflicts
from repro.spatial.model import build_simple_building
from tests.property.strategies import policies, preferences, requests

_SPATIAL = build_simple_building("b", floors=2, rooms_per_floor=4)


@settings(max_examples=200, deadline=None)
@given(policy=policies, preference=preferences, request=requests)
def test_no_missed_conflicts(policy, preference, request):
    context = EvaluationContext(spatial=_SPATIAL)
    if policy.effect is not Effect.ALLOW:
        return
    if not (
        policy.applies_to(request, context)
        and preference.applies_to(request, context)
    ):
        return
    disagree = preference.is_opt_out or (
        policy.granularity.rank > preference.granularity_cap.rank
    )
    if disagree:
        conflicts = detect_conflicts([policy], [preference], context)
        assert conflicts, (
            "request-level disagreement not statically detected: %r vs %r"
            % (policy.policy_id, preference.preference_id)
        )


@settings(max_examples=200, deadline=None)
@given(preference=preferences)
def test_preference_wire_round_trip(preference):
    assert preference_from_dict(preference_to_dict(preference)) == preference


@settings(max_examples=100, deadline=None)
@given(preference=preferences, request=requests)
def test_wire_round_trip_preserves_semantics(preference, request):
    """A preference behaves identically after crossing the wire."""
    context = EvaluationContext(spatial=_SPATIAL)
    restored = preference_from_dict(preference_to_dict(preference))
    assert restored.applies_to(request, context) == preference.applies_to(
        request, context
    )
