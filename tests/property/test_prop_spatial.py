"""Property tests: spatial model laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.geometry import Box, Point
from repro.spatial.model import SpaceType, build_simple_building

boxes = st.builds(
    lambda x, y, w, h: Box(x, y, x + w, y + h),
    x=st.floats(-100, 100, allow_nan=False),
    y=st.floats(-100, 100, allow_nan=False),
    w=st.floats(0, 50, allow_nan=False),
    h=st.floats(0, 50, allow_nan=False),
)


class TestBoxLaws:
    @given(boxes, boxes)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(boxes, boxes)
    def test_touch_symmetric_and_disjoint_from_overlap(self, a, b):
        assert a.touches(b) == b.touches(a)
        assert not (a.touches(b) and a.overlaps(b))

    @given(boxes)
    def test_self_containment(self, box):
        assert box.contains_box(box)
        assert box.contains_point(box.center)

    @given(boxes, boxes)
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_box(inter)
            assert b.contains_box(inter)

    @given(boxes, boxes)
    def test_union_bounds_contains_both(self, a, b):
        union = a.union_bounds(b)
        assert union.contains_box(a)
        assert union.contains_box(b)

    @given(boxes, st.floats(0, 10, allow_nan=False))
    def test_expand_monotone(self, box, margin):
        assert box.expand(margin).contains_box(box)


@pytest.fixture(scope="module")
def model():
    return build_simple_building("b", floors=3, rooms_per_floor=6)


def space_ids(model):
    return sorted(s.space_id for s in model)


class TestModelLaws:
    @settings(max_examples=50)
    @given(data=st.data())
    def test_contains_is_a_partial_order(self, model, data):
        ids = space_ids(model)
        a = data.draw(st.sampled_from(ids))
        b = data.draw(st.sampled_from(ids))
        c = data.draw(st.sampled_from(ids))
        # Reflexive.
        assert model.contains(a, a)
        # Antisymmetric.
        if model.contains(a, b) and model.contains(b, a):
            assert a == b
        # Transitive.
        if model.contains(a, b) and model.contains(b, c):
            assert model.contains(a, c)

    @settings(max_examples=50)
    @given(data=st.data())
    def test_overlap_symmetric_and_implied_by_contains(self, model, data):
        ids = space_ids(model)
        a = data.draw(st.sampled_from(ids))
        b = data.draw(st.sampled_from(ids))
        assert model.overlap(a, b) == model.overlap(b, a)
        if model.contains(a, b):
            assert model.overlap(a, b)

    @settings(max_examples=50)
    @given(data=st.data())
    def test_neighboring_irreflexive_symmetric(self, model, data):
        ids = space_ids(model)
        a = data.draw(st.sampled_from(ids))
        b = data.draw(st.sampled_from(ids))
        assert not model.neighboring(a, a)
        assert model.neighboring(a, b) == model.neighboring(b, a)

    @settings(max_examples=50)
    @given(data=st.data())
    def test_ancestor_at_level_is_ancestor_and_coarser(self, model, data):
        ids = space_ids(model)
        a = data.draw(st.sampled_from(ids))
        level = data.draw(st.sampled_from(list(SpaceType)))
        ancestor = model.ancestor_at_level(a, level)
        if ancestor is not None:
            assert model.contains(ancestor.space_id, a)
            assert ancestor.space_type is level

    @settings(max_examples=50)
    @given(data=st.data())
    def test_path_to_root_ends_at_root(self, model, data):
        ids = space_ids(model)
        a = data.draw(st.sampled_from(ids))
        path = model.path_to_root(a)
        assert path[0].space_id == a
        assert path[-1].is_root
        # Each hop is a parent link.
        for child, parent in zip(path, path[1:]):
            assert child.parent_id == parent.space_id

    @settings(max_examples=50)
    @given(data=st.data())
    def test_rooms_on_different_floors_never_neighbor(self, model, data):
        rooms = [s.space_id for s in model.spaces_of_type(SpaceType.ROOM)]
        a = data.draw(st.sampled_from(rooms))
        b = data.draw(st.sampled_from(rooms))
        floor_a = model.ancestor_at_level(a, SpaceType.FLOOR).space_id
        floor_b = model.ancestor_at_level(b, SpaceType.FLOOR).space_id
        if floor_a != floor_b:
            assert not model.neighboring(a, b)
            assert not model.overlap(a, b)
