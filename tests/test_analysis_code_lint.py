"""Unit tests for the AST code linter (rules C001-C007)."""

import textwrap

import pytest

from repro.analysis.code_lint import LAYER_DAG, CodeLinter, lint_paths
from repro.errors import AnalysisError


def lint(source: str, filename: str = "snippet.py"):
    return CodeLinter().lint_source(textwrap.dedent(source), filename=filename)


def rule_ids(source: str, filename: str = "snippet.py"):
    return [f.rule_id for f in lint(source, filename)]


class TestWallClock:
    def test_time_time_flagged(self):
        assert rule_ids("import time\nstamp = time.time()\n") == ["C001"]

    def test_datetime_now_flagged(self):
        assert rule_ids(
            "import datetime\nwhen = datetime.datetime.now()\n"
        ) == ["C001"]

    def test_from_import_alias_resolved(self):
        assert rule_ids("from time import time as now\nstamp = now()\n") == ["C001"]

    def test_import_alias_resolved(self):
        assert rule_ids("import datetime as dt\nwhen = dt.date.today()\n") == ["C001"]

    def test_perf_counter_clean(self):
        assert rule_ids("import time\nelapsed = time.perf_counter()\n") == []

    def test_injected_clock_clean(self):
        assert rule_ids("def f(clock):\n    return clock.now()\n") == []

    def test_monotonic_flagged(self):
        assert rule_ids("import time\nstamp = time.monotonic()\n") == ["C001"]

    def test_utcnow_through_assignment_alias_flagged(self):
        assert rule_ids(
            "import datetime\n"
            "_now = datetime.datetime.utcnow\n"
            "stamp = _now()\n"
        ) == ["C001"]

    def test_assignment_alias_chain_resolved(self):
        assert rule_ids(
            "import time\nt = time\n_now = t.time\nstamp = _now()\n"
        ) == ["C001"]

    def test_unrelated_assignment_not_an_alias(self):
        assert rule_ids(
            "def now():\n    return 0\n_now = now\nstamp = _now()\n"
        ) == []


class TestUnseededRandom:
    def test_global_function_flagged(self):
        assert rule_ids("import random\nx = random.choice([1, 2])\n") == ["C002"]

    def test_unseeded_random_instance_flagged(self):
        assert rule_ids("import random\nrng = random.Random()\n") == ["C002"]

    def test_seeded_random_clean(self):
        assert rule_ids("import random\nrng = random.Random(0)\n") == []

    def test_instance_method_clean(self):
        assert rule_ids("def f(rng):\n    return rng.random()\n") == []

    def test_from_import_flagged(self):
        assert rule_ids("from random import shuffle\nshuffle([1])\n") == ["C002"]

    def test_lambda_body_flagged(self):
        assert rule_ids(
            "import random\npick = lambda xs: random.choice(xs)\n"
        ) == ["C002"]

    def test_comprehension_flagged(self):
        assert rule_ids(
            "import random\nnoise = [random.random() for _ in range(3)]\n"
        ) == ["C002"]

    def test_unseeded_random_in_comprehension_flagged(self):
        assert rule_ids(
            "import random\nrngs = [random.Random() for _ in range(2)]\n"
        ) == ["C002"]

    def test_constructor_assignment_alias_flagged(self):
        assert rule_ids(
            "import random\nR = random.Random\nrng = R()\n"
        ) == ["C002"]

    def test_seeded_through_alias_clean(self):
        assert rule_ids(
            "import random\nR = random.Random\nrng = R(7)\n"
        ) == []


class TestBareExcept:
    def test_bare_except_flagged(self):
        assert rule_ids(
            "try:\n    pass\nexcept:\n    pass\n"
        ) == ["C003"]

    def test_typed_except_clean(self):
        assert rule_ids(
            "try:\n    pass\nexcept ValueError:\n    pass\n"
        ) == []


class TestMutableDefault:
    def test_list_literal_flagged(self):
        assert rule_ids("def f(items=[]):\n    pass\n") == ["C004"]

    def test_dict_call_flagged(self):
        assert rule_ids("def f(table=dict()):\n    pass\n") == ["C004"]

    def test_kwonly_default_flagged(self):
        assert rule_ids("def f(*, tags={'a'}):\n    pass\n") == ["C004"]

    def test_none_default_clean(self):
        assert rule_ids("def f(items=None):\n    pass\n") == []

    def test_tuple_default_clean(self):
        assert rule_ids("def f(items=()):\n    pass\n") == []


class TestMetricName:
    def test_camel_case_counter_flagged(self):
        assert rule_ids("registry.counter('cacheHits')\n") == ["C005"]

    def test_dashes_in_span_flagged(self):
        assert rule_ids("tracer.span('child-1')\n") == ["C005"]

    def test_snake_and_dotted_clean(self):
        assert rule_ids(
            "registry.counter('bus_calls_total')\ntracer.span('bus.call')\n"
        ) == []

    def test_non_literal_name_ignored(self):
        assert rule_ids("registry.counter(name)\n") == []

    def test_unrelated_method_ignored(self):
        assert rule_ids("obj.lookup('Not-A-Metric')\n") == []


class TestLayering:
    def test_core_importing_tippers_flagged(self):
        ids = rule_ids(
            "from repro.tippers.policy_manager import PolicyManager\n",
            filename="src/repro/core/engine.py",
        )
        assert ids == ["C006"]

    def test_downward_import_clean(self):
        assert rule_ids(
            "from repro.spatial.model import SpatialModel\n",
            filename="src/repro/core/engine.py",
        ) == []

    def test_function_local_import_is_escape_hatch(self):
        assert rule_ids(
            "def wire():\n    from repro.irr.registry import IoTResourceRegistry\n",
            filename="src/repro/analysis/policy_lint.py",
        ) == []

    def test_top_level_modules_exempt(self):
        assert rule_ids(
            "from repro.simulation.dbh import make_dbh_tippers\n",
            filename="src/repro/__main__.py",
        ) == []

    def test_files_outside_repro_not_layer_checked(self):
        assert rule_ids(
            "from repro.tippers.policy_manager import PolicyManager\n",
            filename="tests/test_x.py",
        ) == []

    def test_dag_is_acyclic(self):
        seen = set()

        def visit(layer, stack):
            assert layer not in stack, "cycle through %r" % layer
            if layer in seen:
                return
            seen.add(layer)
            for dep in LAYER_DAG[layer]:
                visit(dep, stack | {layer})

        for layer in LAYER_DAG:
            visit(layer, set())


class TestSuppressionAndErrors:
    def test_noqa_suppresses_on_the_flagged_line(self):
        assert rule_ids(
            "import random\nrng = random.Random()  # repro: noqa=C002\n"
        ) == []

    def test_noqa_other_rule_does_not_suppress(self):
        assert rule_ids(
            "import random\nrng = random.Random()  # repro: noqa=C001\n"
        ) == ["C002"]

    def test_syntax_error_reported_not_raised(self):
        findings = lint("def broken(:\n")
        assert len(findings) == 1
        assert "cannot parse" in findings[0].message

    def test_lint_paths_missing_path_raises(self):
        with pytest.raises(AnalysisError):
            lint_paths(["/no/such/path"])

    def test_lint_paths_walks_tree(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text(
            "try:\n    pass\nexcept:\n    pass\n"
        )
        (tmp_path / "pkg" / "notes.txt").write_text("except:\n")
        findings = lint_paths([str(tmp_path)])
        assert [f.rule_id for f in findings] == ["C003"]
        assert findings[0].file.endswith("bad.py")

    def test_select_restricts_rules(self):
        linter = CodeLinter(select={"C003"})
        source = "import random\ntry:\n    random.random()\nexcept:\n    pass\n"
        assert [f.rule_id for f in linter.lint_source(source)] == ["C003"]
