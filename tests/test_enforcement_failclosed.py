"""Fail-closed enforcement: a policy-fetch outage must never widen access."""

import pytest

from repro.core.enforcement.cache import CachingEnforcementEngine
from repro.core.enforcement.engine import EnforcementEngine
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy import catalog
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.conditions import EvaluationContext
from repro.core.reasoner.resolution import ResolutionStrategy
from repro.errors import StorageError
from repro.faults import FaultInjector, FaultKind, FaultSpec, single_spec_plan
from repro.obs.metrics import MetricsRegistry
from repro.spatial.model import build_simple_building


def sharing_request(timestamp=100.0, **overrides):
    defaults = dict(
        requester_id="concierge",
        requester_kind=RequesterKind.BUILDING_SERVICE,
        phase=DecisionPhase.SHARING,
        category=DataCategory.LOCATION,
        subject_id="mary",
        space_id="b-1001",
        timestamp=timestamp,
        purpose=Purpose.PROVIDING_SERVICE,
    )
    defaults.update(overrides)
    return DataRequest(**defaults)


def make_engine(cls=EnforcementEngine):
    spatial = build_simple_building("b", 2, 4)
    engine = cls(
        context=EvaluationContext(spatial=spatial),
        metrics=MetricsRegistry(),
    )
    engine.store.add_policy(catalog.policy_service_sharing("b"))
    return engine


def outage_injector(store, spec=None):
    injector = FaultInjector(
        single_spec_plan(spec or FaultSpec(kind=FaultKind.POLICY_FETCH_FAIL))
    )
    injector.install_policy_store(store)
    return injector


class TestEngineFailClosed:
    def test_fetch_fault_denies_and_audits(self):
        engine = make_engine()
        assert engine.decide(sharing_request()).allowed  # healthy baseline
        injector = outage_injector(engine.store)
        decision = engine.decide(sharing_request())
        assert not decision.allowed
        assert decision.resolution.effect is Effect.DENY
        assert decision.granularity is GranularityLevel.NONE
        assert "fail-closed deny" in decision.resolution.reasons
        assert any(
            reason.startswith("policy fetch failed:")
            for reason in decision.resolution.reasons
        )
        record = engine.audit.records()[-1]
        assert record.effect is Effect.DENY
        assert "fail-closed deny" in record.reasons
        assert engine.metrics.total("enforcement_failclosed_total") == 1
        assert injector.trace.counts() == {"policy_fetch_fail": 1}

    def test_recovery_after_outage(self):
        engine = make_engine()
        injector = outage_injector(engine.store)
        assert not engine.decide(sharing_request()).allowed
        injector.uninstall()
        assert engine.decide(sharing_request()).allowed

    def test_intermittent_outage_never_allows_a_faulted_fetch(self):
        engine = make_engine()
        injector = outage_injector(
            engine.store, FaultSpec(kind=FaultKind.POLICY_FETCH_FAIL, every=3)
        )
        outcomes = [engine.decide(sharing_request()).allowed for _ in range(12)]
        failclosed = int(engine.metrics.total("enforcement_failclosed_total"))
        # Each decide performs exactly one fetch: every faulted fetch is
        # a fail-closed deny, every clean one the baseline allow.
        assert failclosed == injector.trace.counts()["policy_fetch_fail"] == 4
        assert outcomes.count(False) == failclosed
        assert outcomes.count(True) == 12 - failclosed

    def test_capture_path_fails_closed_too(self):
        from repro.sensors.base import Observation

        engine = make_engine()
        engine.store.add_policy(catalog.policy_2_emergency_location("b"))
        observation = Observation.create(
            sensor_id="ap-1",
            sensor_type="wifi_access_point",
            timestamp=50.0,
            space_id="b-1001",
            payload={"device_mac": "aa:bb", "ap_mac": "x", "rssi": -40.0},
            subject_id="mary",
        )
        assert engine.enforce_observation(observation) is not None
        outage_injector(engine.store)
        # The faulted store must drop the observation, not store it.
        assert engine.enforce_observation(observation) is None


class TestCachingEngineFailClosed:
    def test_fail_closed_is_never_cached(self):
        engine = make_engine(CachingEnforcementEngine)
        injector = outage_injector(engine.store)
        for _ in range(3):
            assert not engine.decide(sharing_request()).allowed
        assert engine.hits == 0
        assert engine.misses == 0
        assert engine.cache_size == 0
        injector.uninstall()
        # The outage left no poisoned entries behind.
        assert engine.decide(sharing_request()).allowed
        assert engine.misses == 1

    def test_faulted_cacheability_probe_means_uncacheable(self):
        engine = make_engine(CachingEnforcementEngine)
        injector = outage_injector(
            engine.store, FaultSpec(kind=FaultKind.POLICY_FETCH_FAIL, every=2)
        )
        # Step 0 (match) faults: fail-closed.
        assert not engine.decide(sharing_request()).allowed
        # Step 1 (match) is clean, step 2 (the cacheability re-fetch)
        # faults: the decision stands but is not cached.
        decision = engine.decide(sharing_request())
        assert decision.allowed
        assert engine.uncacheable == 1
        assert engine.cache_size == 0
        assert injector.trace.counts()["policy_fetch_fail"] == 2

    def test_prior_cache_entries_survive_an_outage(self):
        engine = make_engine(CachingEnforcementEngine)
        assert engine.decide(sharing_request()).allowed  # primes the cache
        assert engine.cache_size == 1
        outage_injector(engine.store)
        # An exact repeat is served from the cache without fetching, so
        # the outage does not regress already-proven decisions...
        assert engine.decide(sharing_request(timestamp=200.0)).allowed
        assert engine.hits == 1
        # ...but an uncached request still fails closed.
        assert not engine.decide(sharing_request(subject_id="bob")).allowed


class TestRequestManagerDegradation:
    def test_locate_user_degrades_on_storage_fault(self, tippers, monkeypatch):
        def broken_locate(subject_id, now):
            raise StorageError("index shard offline")

        monkeypatch.setattr(
            tippers.request_manager._inference, "locate", broken_locate
        )
        before = tippers.request_manager.metrics.total(
            "tippers_degraded_total", {"method": "locate_user"}
        )
        response = tippers.locate_user(
            "concierge", RequesterKind.BUILDING_SERVICE, "mary", 100.0
        )
        assert not response.allowed
        assert "fail-closed deny" in response.reasons
        assert any("degraded:" in reason for reason in response.reasons)
        after = tippers.request_manager.metrics.total(
            "tippers_degraded_total", {"method": "locate_user"}
        )
        assert after == before + 1

    def test_fetch_fault_propagates_to_service_queries(self, tippers):
        injector = FaultInjector(
            single_spec_plan(FaultSpec(kind=FaultKind.POLICY_FETCH_FAIL))
        )
        injector.install_policy_store(tippers.store)
        response = tippers.locate_user(
            "concierge", RequesterKind.BUILDING_SERVICE, "mary", 100.0
        )
        injector.uninstall()
        assert not response.allowed
        assert "fail-closed deny" in response.reasons
