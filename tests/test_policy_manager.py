"""Unit tests for the building policy manager."""

import pytest

from repro.core.enforcement.engine import EnforcementEngine
from repro.core.language.document import ResourcePolicyDocument
from repro.core.language.duration import Duration
from repro.core.language.vocabulary import DataCategory, Purpose
from repro.core.policy import catalog
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.conditions import EvaluationContext
from repro.core.reasoner.index import PolicyIndex
from repro.errors import PolicyError
from repro.sensors.ontology import default_ontology
from repro.spatial.model import build_simple_building
from repro.tippers.datastore import Datastore
from repro.tippers.policy_manager import PolicyManager
from repro.tippers.sensor_manager import SensorManager


@pytest.fixture
def manager():
    spatial = build_simple_building("b", 2, 4)
    return PolicyManager(
        PolicyIndex(), spatial, default_ontology(), "b", owner_name="UCI"
    )


class TestLifecycle:
    def test_define_and_get(self, manager):
        policy = manager.define(catalog.policy_2_emergency_location("b"))
        assert manager.get(policy.policy_id) is policy
        assert len(manager) == 1

    def test_duplicate_rejected(self, manager):
        manager.define(catalog.policy_2_emergency_location("b"))
        with pytest.raises(PolicyError):
            manager.define(catalog.policy_2_emergency_location("b"))

    def test_unknown_space_rejected(self, manager):
        with pytest.raises(PolicyError):
            manager.define(catalog.policy_2_emergency_location("atlantis"))

    def test_unknown_sensor_type_rejected(self, manager):
        bad = BuildingPolicy(
            policy_id="x", name="x", description="d", sensor_types=("sonar",)
        )
        with pytest.raises(PolicyError):
            manager.define(bad)

    def test_retire(self, manager):
        manager.define(catalog.policy_2_emergency_location("b"))
        manager.retire("policy-2-emergency")
        assert len(manager) == 0
        with pytest.raises(PolicyError):
            manager.retire("policy-2-emergency")

    def test_policies_sorted(self, manager):
        manager.define(catalog.policy_service_sharing("b"))
        manager.define(catalog.policy_2_emergency_location("b"))
        ids = [p.policy_id for p in manager.policies()]
        assert ids == sorted(ids)


class TestRetentionSchedule:
    def test_strictest_retention_wins(self, manager):
        manager.define(catalog.policy_2_emergency_location("b"))  # wifi P6M
        manager.define(
            BuildingPolicy(
                policy_id="short",
                name="short",
                description="d",
                sensor_types=("wifi_access_point",),
                retention=Duration.parse("P7D"),
            )
        )
        schedule = manager.retention_by_sensor_type()
        assert schedule["wifi_access_point"] == 7 * 86400

    def test_policy_without_retention_ignored(self, manager):
        manager.define(catalog.policy_service_sharing("b"))
        assert manager.retention_by_sensor_type() == {}


class TestDocumentCompilation:
    def test_compiled_document_validates(self, manager):
        manager.define(catalog.policy_2_emergency_location("b"))
        manager.define(catalog.policy_1_comfort(["b-1001"]))
        document = manager.compile_policy_document()
        # to_dict validates against the Figure-2 schema internally.
        data = document.to_dict()
        assert ResourcePolicyDocument.from_dict(data) == document

    def test_document_carries_retention_and_owner(self, manager):
        manager.define(catalog.policy_2_emergency_location("b"))
        resource = manager.compile_policy_document().resources[0]
        assert resource.retention.isoformat() == "P6M"
        assert resource.owner_name == "UCI"
        assert resource.sensor_type == "wifi_access_point"

    def test_one_resource_per_policy_sensor_pair(self, manager):
        manager.define(catalog.policy_1_comfort(["b-1001"]))  # 2 sensor types
        document = manager.compile_policy_document()
        assert len(document.resources) == 2

    def test_empty_manager_cannot_compile(self, manager):
        with pytest.raises(PolicyError):
            manager.compile_policy_document()


class TestActuation:
    @pytest.fixture
    def sensor_manager(self, manager):
        engine = EnforcementEngine(context=EvaluationContext())
        sm = SensorManager(engine, Datastore(), enforce_capture=False)
        sm.deploy("hvac_unit", "hvac-1", "b-1001")
        sm.deploy("hvac_unit", "hvac-2", "b-1002")
        return sm

    def test_policy1_pipeline(self, manager, sensor_manager):
        manager.define(catalog.policy_1_comfort(["b-1001", "b-1002"], setpoint_f=68.0))
        occupied = {"b-1001": True, "b-1002": False}
        actuated = manager.run_actuations(
            sensor_manager, triggers={"occupied": lambda s: occupied[s]}
        )
        assert actuated == 1
        assert sensor_manager.sensor("hvac-1").settings.get("setpoint_f") == 68.0
        # The unoccupied room's unit keeps its default setpoint.
        assert sensor_manager.sensor("hvac-2").settings.get("setpoint_f") == 70.0

    def test_missing_trigger_raises(self, manager, sensor_manager):
        manager.define(catalog.policy_1_comfort(["b-1001"]))
        with pytest.raises(PolicyError):
            manager.run_actuations(sensor_manager, triggers={})

    def test_always_trigger(self, manager, sensor_manager):
        manager.define(catalog.policy_3_meeting_room_access(["b-1001"]))
        sm = sensor_manager
        sm.deploy("id_card_reader", "rd-1", "b-1001")
        actuated = manager.run_actuations(sm, triggers={})
        assert actuated == 1

    def test_actuation_descends_hierarchy(self, manager, sensor_manager):
        # Policy scoped to the whole building finds room-level sensors.
        manager.define(
            BuildingPolicy(
                policy_id="building-wide",
                name="n",
                description="d",
                space_ids=("b",),
                actuations=(
                    catalog.policy_3_meeting_room_access(["b-1001"]).actuations[0],
                ),
                sensor_types=("id_card_reader",),
            )
        )
        sensor_manager.deploy("id_card_reader", "rd-9", "b-2003")
        actuated = manager.run_actuations(sensor_manager, triggers={})
        assert actuated == 1


class TestEvents:
    def test_roster_lifecycle(self, manager):
        manager.register_event("icdcs", "b-1004")
        manager.register_participant("icdcs", "mary")
        assert manager.event_roster("icdcs") == {"mary"}
        assert manager.event_space("icdcs") == "b-1004"

    def test_unknown_event(self, manager):
        with pytest.raises(PolicyError):
            manager.register_participant("ghost", "mary")
        with pytest.raises(PolicyError):
            manager.event_roster("ghost")
        with pytest.raises(PolicyError):
            manager.event_space("ghost")

    def test_event_space_must_exist(self, manager):
        with pytest.raises(PolicyError):
            manager.register_event("x", "atlantis")
