"""Unit tests for the audit log."""

import pytest

from repro.core.enforcement.audit import AuditLog, AuditRecord
from repro.core.language.vocabulary import GranularityLevel
from repro.core.policy.base import DecisionPhase, Effect


def record(
    subject="mary",
    requester="svc",
    effect=Effect.ALLOW,
    granularity=GranularityLevel.PRECISE,
    notify=False,
    phase=DecisionPhase.SHARING,
    timestamp=0.0,
):
    return AuditRecord(
        timestamp=timestamp,
        requester_id=requester,
        phase=phase,
        category="location",
        subject_id=subject,
        space_id="r1",
        effect=effect,
        granularity=granularity,
        reasons=("r",),
        notify_user=notify,
    )


class TestAppend:
    def test_append_and_len(self):
        log = AuditLog()
        log.append(record())
        assert len(log) == 1

    def test_capacity_eviction(self):
        log = AuditLog(capacity=10)
        for i in range(15):
            log.append(record(timestamp=float(i)))
        assert len(log) <= 10
        assert log.dropped > 0
        # Newest records survive.
        assert list(log)[-1].timestamp == 14.0

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            AuditLog(capacity=1)


class TestQueries:
    @pytest.fixture
    def log(self):
        log = AuditLog()
        log.append(record(subject="mary", effect=Effect.ALLOW))
        log.append(record(subject="mary", effect=Effect.DENY))
        log.append(record(subject="bob", effect=Effect.ALLOW, notify=True))
        log.append(record(subject="bob", requester="other", phase=DecisionPhase.CAPTURE))
        return log

    def test_filter_by_subject(self, log):
        assert len(log.records(subject_id="mary")) == 2

    def test_filter_by_requester(self, log):
        assert len(log.records(requester_id="other")) == 1

    def test_filter_by_phase(self, log):
        assert len(log.records(phase=DecisionPhase.CAPTURE)) == 1

    def test_combined_filters(self, log):
        assert len(log.records(subject_id="bob", requester_id="svc")) == 1

    def test_denials(self, log):
        denials = log.denials()
        assert len(denials) == 1
        assert denials[0].subject_id == "mary"

    def test_notifications_pending(self, log):
        assert len(log.notifications_pending("bob")) == 1
        assert log.notifications_pending("mary") == []

    def test_predicate(self, log):
        matches = log.records(predicate=lambda r: r.phase is DecisionPhase.SHARING)
        assert len(matches) == 3


class TestSummary:
    def test_counts(self):
        log = AuditLog()
        log.append(record(effect=Effect.ALLOW))
        log.append(record(effect=Effect.ALLOW, granularity=GranularityLevel.COARSE))
        log.append(record(effect=Effect.DENY, granularity=GranularityLevel.NONE))
        log.append(record(notify=True))
        summary = log.summary()
        assert summary["total"] == 4
        assert summary["allow"] == 3
        assert summary["deny"] == 1
        assert summary["degraded"] == 1
        assert summary["notify"] == 1
