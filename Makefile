# Common developer entry points.  Everything runs on the stdlib-only
# package in src/; no install step is needed.

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-fast diff-test bench-smoke bench soak lint lint-flow obs chaos recover overload federate rebalance

# Full tier-1 suite: unit + integration + property tests.
test:
	$(PYTEST) -x -q

# Skip tests marked slow (multi-day simulation runs).
test-fast:
	$(PYTEST) -x -q -m "not slow"

# Differential proof of the compiled enforcement tables: the ci
# Hypothesis profile generates 250 examples per property (>= 1000
# decisions checked against the reference interpreter per run).
diff-test:
	REPRO_DIFF_PROFILE=diff-ci $(PYTEST) tests/differential -q

# Sanity-pass the benchmark harness without timing loops: runs each
# figure/scale benchmark once and prints the metric baseline.
bench-smoke:
	$(PYTEST) benchmarks/test_fig1_interaction.py \
	          benchmarks/test_scale_enforcement.py \
	          benchmarks/test_ablation_cache.py \
	          --benchmark-disable -q -s

# Perf trajectory: the bench test suite, then a fresh ci-scale run
# written to BENCH_PR.json (the CI artifact; never a baseline) and
# gated against the last committed BENCH_<n>.json record.
bench:
	$(PYTEST) -x -q tests/test_bench_schema.py tests/test_bench_cli.py
	PYTHONPATH=src $(PYTHON) -m repro bench run --scale ci --out BENCH_PR.json
	PYTHONPATH=src $(PYTHON) -m repro bench compare --candidate BENCH_PR.json

# Capacity soak: the soak test suite, then two same-seed stepped-
# population runs whose deterministic reports must be byte-identical.
soak:
	$(PYTEST) -x -q tests/test_capacity_soak.py \
	          tests/property/test_prop_admission.py
	PYTHONPATH=src $(PYTHON) -m repro soak --report-out /tmp/repro-soak-a.txt
	PYTHONPATH=src $(PYTHON) -m repro soak --report-out /tmp/repro-soak-b.txt
	diff /tmp/repro-soak-a.txt /tmp/repro-soak-b.txt

# Static analysis: audit the DBH policy set, code-lint the tree, then
# prove the privacy-flow invariant over the call graph.
lint: lint-flow
	PYTHONPATH=src $(PYTHON) -m repro lint
	PYTHONPATH=src $(PYTHON) -m repro lint src tests benchmarks

# Interprocedural privacy-flow analysis (rules F001-F006) against the
# committed flow_baseline.json.
lint-flow:
	PYTHONPATH=src $(PYTHON) -m repro lint --flow src

# Run the Figure-1 scenario and print the observability snapshot.
obs:
	PYTHONPATH=src $(PYTHON) -m repro obs

# Chaos sweep: the fault-injection/resilience test suite, then one
# pinned chaos run (fixed plan + seed) so regressions show in CI logs.
chaos:
	$(PYTEST) -x -q tests/test_faults_plan.py tests/test_faults_injector.py \
	          tests/test_resilience_retry.py tests/test_resilience_breaker.py \
	          tests/test_enforcement_failclosed.py tests/test_chaos_scenario.py \
	          tests/test_integration_failures.py tests/property/test_prop_retry.py
	PYTHONPATH=src $(PYTHON) -m repro chaos --plan monkey --seed 11 --trace

# Durability sweep: the storage test suite, then two same-seed
# crash+recover runs whose deterministic reports must be byte-identical.
recover:
	$(PYTEST) -x -q tests/test_storage_wal.py tests/test_storage_snapshot.py \
	          tests/test_storage_recovery.py tests/test_storage_durable.py \
	          tests/property/test_prop_wal.py
	PYTHONPATH=src $(PYTHON) -m repro chaos --recover --plan torn-storage \
	          --seed 11 --report-out /tmp/repro-recover-a.txt
	PYTHONPATH=src $(PYTHON) -m repro chaos --recover --plan torn-storage \
	          --seed 11 --report-out /tmp/repro-recover-b.txt
	diff /tmp/repro-recover-a.txt /tmp/repro-recover-b.txt
	PYTHONPATH=src $(PYTHON) -m repro chaos --recover --plan crashy-storage --seed 11

# Overload sweep: the admission/brownout test suite, then two
# same-seed rush-hour runs whose deterministic reports must be
# byte-identical, plus the no-admission ablation baseline.
overload:
	$(PYTEST) -x -q tests/test_admission.py tests/test_sensor_supervisor.py \
	          tests/test_resilience_edges.py tests/test_overload_scenario.py
	PYTHONPATH=src $(PYTHON) -m repro overload --plan rush-hour \
	          --seed 11 --report-out /tmp/repro-overload-a.txt
	PYTHONPATH=src $(PYTHON) -m repro overload --plan rush-hour \
	          --seed 11 --report-out /tmp/repro-overload-b.txt
	diff /tmp/repro-overload-a.txt /tmp/repro-overload-b.txt
	PYTHONPATH=src $(PYTHON) -m repro overload --no-admission --seed 11

# Federation sweep: the sharded-campus test suite, then two same-seed
# campus-storm runs whose deterministic reports must be byte-identical.
federate:
	$(PYTEST) -x -q tests/test_federation.py tests/test_federate_scenario.py
	PYTHONPATH=src $(PYTHON) -m repro federate --plan campus-storm \
	          --seed 17 --report-out /tmp/repro-federate-a.txt
	PYTHONPATH=src $(PYTHON) -m repro federate --plan campus-storm \
	          --seed 17 --report-out /tmp/repro-federate-b.txt
	diff /tmp/repro-federate-a.txt /tmp/repro-federate-b.txt

rebalance:
	$(PYTEST) -x -q tests/test_ring_changes.py tests/test_rebalance.py \
	          tests/test_rebalance_scenario.py
	PYTHONPATH=src $(PYTHON) -m repro rebalance --plan ring-change \
	          --seed 23 --report-out /tmp/repro-rebalance-a.txt
	PYTHONPATH=src $(PYTHON) -m repro rebalance --plan ring-change \
	          --seed 23 --report-out /tmp/repro-rebalance-b.txt
	diff /tmp/repro-rebalance-a.txt /tmp/repro-rebalance-b.txt
