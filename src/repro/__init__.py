"""Privacy-aware smart buildings (ICDCS 2017 reproduction).

This package reproduces the framework described in "Towards
Privacy-Aware Smart Buildings: Capturing, Communicating, and Enforcing
Privacy Policies and Preferences" (Pappachan et al., ICDCS 2017).

The three pillars of the paper map to three subpackages:

- :mod:`repro.irr` -- IoT Resource Registries, which advertise
  machine-readable data-collection policies for nearby resources.
- :mod:`repro.iota` -- IoT Assistants, personal agents that discover
  registries, notify users about relevant practices, and configure
  privacy settings on their behalf.
- :mod:`repro.tippers` -- the privacy-aware building management system
  (TIPPERS), which captures sensor data and enforces building policies
  and user preferences when storing data or serving it to services.

Supporting substrates live in :mod:`repro.spatial` (hierarchical space
model), :mod:`repro.sensors` (sensor ontology and simulated drivers),
:mod:`repro.net` (message bus), :mod:`repro.services` (building
services), and :mod:`repro.simulation` (the synthetic Donald Bren Hall
testbed).  The paper's machine-readable policy language and the
reasoning/enforcement machinery are in :mod:`repro.core`.
"""

__version__ = "1.0.0"

from repro.errors import (
    ConflictError,
    EnforcementError,
    PolicyError,
    ReproError,
    SchemaError,
    SpatialError,
)

__all__ = [
    "ReproError",
    "PolicyError",
    "SchemaError",
    "SpatialError",
    "ConflictError",
    "EnforcementError",
    "__version__",
]
