"""Gate a candidate bench record against a committed baseline.

The comparison is per-metric with direction-aware tolerances:

- **Latency** (p50/p99 decision latency) may grow by at most
  ``latency_factor``; a floor (``latency_floor_us``) keeps sub-
  microsecond jitter from failing builds on noisy CI machines.
- **Throughput** may shrink by at most ``throughput_factor``.
- **Rates** (shed/brownout) are deterministic per seed, so they get an
  absolute slack, not a factor.
- **WAL bytes** may grow by at most ``wal_factor`` (plus a fixed slack
  for segment-boundary wobble), and must not silently drop to zero.
- **Peak RSS** may grow by at most ``rss_factor``.

``compare_records`` never raises on a regression -- it returns a report
whose ``ok`` drives the CLI exit code (0 pass, 1 regression), keeping
the CI gate's contract explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.bench.schema import BenchRecord

#: Below this many microseconds, latency differences are noise.
DEFAULT_LATENCY_FLOOR_US = 100.0


@dataclass(frozen=True)
class Tolerances:
    """Per-metric regression tolerances (see module docstring)."""

    latency_factor: float = 3.0
    throughput_factor: float = 3.0
    rate_slack: float = 0.10
    wal_factor: float = 1.5
    wal_slack_bytes: int = 65536
    rss_factor: float = 3.0
    latency_floor_us: float = DEFAULT_LATENCY_FLOOR_US
    #: Candidates that measure compiled enforcement must keep the
    #: compiled-vs-interpreter speedup at least this high.  The PR that
    #: introduced the tables landed >= 10x (see docs/BENCHMARKS.md);
    #: the floor sits below that so scheduler noise on shared CI boxes
    #: cannot fail a build that did not regress the engine.
    compiled_speedup_floor: float = 8.0


@dataclass(frozen=True)
class MetricVerdict:
    """One metric's pass/fail against the baseline."""

    benchmark: str
    metric: str
    baseline: float
    candidate: float
    limit: float
    ok: bool
    detail: str = ""

    def line(self) -> str:
        status = "ok        " if self.ok else "REGRESSED "
        return "%s %-24s %-28s baseline=%-12.6g candidate=%-12.6g limit=%.6g%s" % (
            status,
            self.benchmark,
            self.metric,
            self.baseline,
            self.candidate,
            self.limit,
            (" (%s)" % self.detail) if self.detail else "",
        )


@dataclass
class ComparisonReport:
    """Every verdict of one baseline-vs-candidate comparison."""

    baseline_id: int
    candidate_label: str
    verdicts: List[MetricVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts if not v.ok]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def lines(self) -> List[str]:
        lines = [
            "bench compare: baseline=BENCH_%04d candidate=%s"
            % (self.baseline_id, self.candidate_label or "<fresh run>"),
        ]
        lines.extend(v.line() for v in self.verdicts)
        lines.append(
            "result: %s (%d metrics, %d regressed)"
            % ("OK" if self.ok else "REGRESSED", len(self.verdicts),
               len(self.regressions))
        )
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline_id": self.baseline_id,
            "candidate_label": self.candidate_label,
            "ok": self.ok,
            "verdicts": [
                {
                    "benchmark": v.benchmark,
                    "metric": v.metric,
                    "baseline": v.baseline,
                    "candidate": v.candidate,
                    "limit": v.limit,
                    "ok": v.ok,
                    "detail": v.detail,
                }
                for v in self.verdicts
            ],
        }


def _upper_bound(
    report: ComparisonReport,
    benchmark: str,
    metric: str,
    baseline: float,
    candidate: float,
    limit: float,
    detail: str = "",
) -> None:
    report.verdicts.append(
        MetricVerdict(
            benchmark=benchmark,
            metric=metric,
            baseline=baseline,
            candidate=candidate,
            limit=limit,
            ok=candidate <= limit,
            detail=detail,
        )
    )


def _lower_bound(
    report: ComparisonReport,
    benchmark: str,
    metric: str,
    baseline: float,
    candidate: float,
    limit: float,
    detail: str = "",
) -> None:
    report.verdicts.append(
        MetricVerdict(
            benchmark=benchmark,
            metric=metric,
            baseline=baseline,
            candidate=candidate,
            limit=limit,
            ok=candidate >= limit,
            detail=detail,
        )
    )


def compare_records(
    baseline: BenchRecord,
    candidate: BenchRecord,
    tolerances: Tolerances = Tolerances(),
) -> ComparisonReport:
    """Every baseline metric checked against ``candidate``."""
    report = ComparisonReport(
        baseline_id=baseline.record_id,
        candidate_label=candidate.label or ("record %d" % candidate.record_id),
    )
    for name, base in sorted(baseline.benchmarks.items()):
        cand = candidate.benchmarks.get(name)
        if cand is None:
            report.verdicts.append(
                MetricVerdict(
                    benchmark=name,
                    metric="present",
                    baseline=1.0,
                    candidate=0.0,
                    limit=1.0,
                    ok=False,
                    detail="benchmark missing from candidate",
                )
            )
            continue
        for which in ("p50_us", "p99_us"):
            base_value = getattr(base.decision_latency, which)
            cand_value = getattr(cand.decision_latency, which)
            limit = max(
                base_value * tolerances.latency_factor,
                tolerances.latency_floor_us,
            )
            _upper_bound(
                report, name, "decision_latency.%s" % which,
                base_value, cand_value, limit,
                detail="factor %g, floor %gus"
                % (tolerances.latency_factor, tolerances.latency_floor_us),
            )
        _lower_bound(
            report, name, "ingest_throughput_per_s",
            base.ingest_throughput_per_s,
            cand.ingest_throughput_per_s,
            base.ingest_throughput_per_s / tolerances.throughput_factor,
            detail="factor %g" % tolerances.throughput_factor,
        )
        for rate_name in ("shed_rate", "brownout_rate"):
            base_rate = getattr(base, rate_name)
            cand_rate = getattr(cand, rate_name)
            _upper_bound(
                report, name, "%s.delta" % rate_name,
                base_rate, cand_rate,
                base_rate + tolerances.rate_slack,
                detail="abs slack %g" % tolerances.rate_slack,
            )
        cand_speedup = cand.extra.get("compiled_speedup")
        if cand_speedup is not None:
            # Fires only when the candidate measured the compiled path
            # (older baselines predate the metric, so absence there
            # falls back to the absolute floor).
            base_speedup = base.extra.get("compiled_speedup", 0.0)
            floor = tolerances.compiled_speedup_floor
            if base_speedup:
                floor = max(
                    floor, base_speedup / tolerances.throughput_factor
                )
            _lower_bound(
                report, name, "extra.compiled_speedup",
                base_speedup, cand_speedup, floor,
                detail="floor %gx" % tolerances.compiled_speedup_floor,
            )
        if base.wal_bytes:
            _upper_bound(
                report, name, "wal_bytes",
                float(base.wal_bytes), float(cand.wal_bytes),
                base.wal_bytes * tolerances.wal_factor
                + tolerances.wal_slack_bytes,
                detail="factor %g" % tolerances.wal_factor,
            )
            _lower_bound(
                report, name, "wal_bytes.nonzero",
                float(base.wal_bytes), float(cand.wal_bytes), 1.0,
                detail="durability must not silently vanish",
            )
    if baseline.peak_rss_kb:
        _upper_bound(
            report, "<record>", "peak_rss_kb",
            float(baseline.peak_rss_kb), float(candidate.peak_rss_kb),
            baseline.peak_rss_kb * tolerances.rss_factor,
            detail="factor %g" % tolerances.rss_factor,
        )
    return report
