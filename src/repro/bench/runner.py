"""Run the bench suite and manage the ``BENCH_<n>.json`` trajectory.

The trajectory is a directory (normally the repo root) holding
``BENCH_0001.json``, ``BENCH_0002.json``, ...  ``record`` appends the
next record atomically (tmp file + ``os.replace``), ``latest_record``
finds the baseline ``compare`` gates against.  Only exact
``BENCH_<4 digits>.json`` names participate -- scratch outputs like
``BENCH_PR.json`` (the CI artifact) never become baselines.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Tuple

from repro.bench.schema import BenchRecord, BENCH_SCHEMA_VERSION
from repro.bench.workloads import WORKLOADS, resolve_scale
from repro.errors import BenchError

#: The trajectory filename shape; the 4-digit group is the record id.
RECORD_NAME_RE = re.compile(r"^BENCH_(\d{4})\.json$")


def peak_rss_kb() -> int:
    """The process's peak resident set size, in KiB (0 where unknown).

    ``ru_maxrss`` is KiB on Linux; on macOS it is bytes, normalized
    here so records stay comparable across dev machines.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        maxrss //= 1024
    return int(maxrss)


def run_suite(
    scale: str = "ci",
    label: str = "",
    record_id: int = 0,
    progress=None,
) -> BenchRecord:
    """Run every workload at ``scale`` and assemble a validated record.

    ``progress`` (optional) is called with each benchmark name before
    it runs, so the CLI can narrate long suites.
    """
    preset = resolve_scale(scale)
    benchmarks = {}
    for name, workload in WORKLOADS:
        if progress is not None:
            progress(name)
        benchmarks[name] = workload(preset)
    record = BenchRecord(
        version=BENCH_SCHEMA_VERSION,
        record_id=record_id,
        scale=preset.name,
        label=label,
        peak_rss_kb=peak_rss_kb(),
        benchmarks=benchmarks,
    )
    record.validate()
    return record


# ----------------------------------------------------------------------
# Trajectory directory operations
# ----------------------------------------------------------------------
def record_path(directory: str, record_id: int) -> str:
    return os.path.join(directory, "BENCH_%04d.json" % record_id)


def list_records(directory: str) -> List[Tuple[int, str]]:
    """``(record_id, path)`` for every trajectory record, ascending."""
    try:
        names = os.listdir(directory)
    except OSError as error:
        raise BenchError("cannot list trajectory directory: %s" % error)
    found = []
    for name in names:
        match = RECORD_NAME_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found)


def latest_record(directory: str) -> Optional[BenchRecord]:
    """The highest-numbered committed record, loaded and validated."""
    records = list_records(directory)
    if not records:
        return None
    return load_record(records[-1][1])


def load_record(path: str) -> BenchRecord:
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as error:
        raise BenchError("cannot read bench record: %s" % error)
    return BenchRecord.loads(text)


def write_record(record: BenchRecord, path: str) -> None:
    """Write ``record`` atomically (tmp file + ``os.replace``)."""
    payload = record.dumps()
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "w") as handle:
            handle.write(payload)
        os.replace(tmp_path, path)
    except OSError as error:
        raise BenchError("cannot write bench record %s: %s" % (path, error))


def append_record(record: BenchRecord, directory: str) -> Tuple[BenchRecord, str]:
    """Append ``record`` as the next numbered point on the trajectory.

    Returns the renumbered record and the path it was written to.
    """
    records = list_records(directory)
    next_id = records[-1][0] + 1 if records else 1
    numbered = BenchRecord(
        version=record.version,
        record_id=next_id,
        scale=record.scale,
        label=record.label,
        peak_rss_kb=record.peak_rss_kb,
        benchmarks=dict(record.benchmarks),
    )
    path = record_path(directory, next_id)
    write_record(numbered, path)
    return numbered, path
