"""The versioned ``BENCH_<n>.json`` record schema.

One record is one run of the scale-benchmark suite (the library twins
of ``benchmarks/test_scale_*``): per-benchmark p50/p99 decision latency
and ingest throughput, the overload shed/brownout rates, WAL bytes, and
the process peak RSS.  Records are committed to the repo as
``BENCH_0001.json``, ``BENCH_0002.json``, ... -- the recorded perf
trajectory future PRs must not regress (see ``docs/BENCHMARKS.md``).

Design constraints:

- **Versioned and validated.**  ``BENCH_SCHEMA_VERSION`` is checked
  before anything else; a record from a newer build is rejected, never
  misread.  Every numeric field is validated on load *and* dump --
  NaN, infinities, and negative latencies cannot enter the trajectory.
- **Deterministic serialization.**  ``dumps`` is sorted-key indented
  JSON with a trailing newline, so records diff cleanly in review.
- **Stdlib only**, like the rest of the tree.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.errors import BenchError

#: Bump when the record shape changes; ``from_dict`` rejects others.
BENCH_SCHEMA_VERSION = 1

#: Every record must carry at least these benchmarks -- the library
#: twins of the ``benchmarks/test_scale_*`` suite, in SCALE order.
REQUIRED_BENCHMARK_NAMES: Tuple[str, ...] = (
    "scale_enforcement",
    "scale_ingest",
    "scale_notifications",
    "scale_week",
    "scale_overload",
)

#: Benchmarks that joined the suite after records were already
#: committed.  They are validated and compared like any other entry
#: when present, but records that predate them stay loadable -- the
#: trajectory is append-only, so the schema cannot retroactively
#: require what BENCH_0001 could not have measured.
OPTIONAL_BENCHMARK_NAMES: Tuple[str, ...] = (
    "scale_federate",
    "scale_rebalance",
)

#: Every benchmark name this build understands, in SCALE order.
BENCHMARK_NAMES: Tuple[str, ...] = (
    REQUIRED_BENCHMARK_NAMES + OPTIONAL_BENCHMARK_NAMES
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchError(message)


def _finite(value: Any, name: str, minimum: float = 0.0) -> float:
    """``value`` as a float, rejecting NaN/inf/below-minimum."""
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        "%s must be a number, got %r" % (name, value),
    )
    number = float(value)
    _require(math.isfinite(number), "%s must be finite, got %r" % (name, value))
    _require(number >= minimum, "%s must be >= %g, got %g" % (name, minimum, number))
    return number


def _non_negative_int(value: Any, name: str) -> int:
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        "%s must be an integer, got %r" % (name, value),
    )
    _require(value >= 0, "%s must be >= 0, got %d" % (name, value))
    return value


@dataclass(frozen=True)
class LatencySummary:
    """p50/p99 (plus mean/max) of one latency distribution, microseconds."""

    p50_us: float
    p99_us: float
    mean_us: float
    max_us: float
    count: int

    def validate(self, context: str) -> None:
        for name in ("p50_us", "p99_us", "mean_us", "max_us"):
            _finite(getattr(self, name), "%s.%s" % (context, name))
        _non_negative_int(self.count, "%s.count" % context)
        _require(self.count >= 1, "%s.count must be >= 1" % context)
        _require(
            self.p50_us <= self.p99_us,
            "%s: p50 (%g) exceeds p99 (%g)" % (context, self.p50_us, self.p99_us),
        )
        _require(
            self.p99_us <= self.max_us,
            "%s: p99 (%g) exceeds max (%g)" % (context, self.p99_us, self.max_us),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "mean_us": self.mean_us,
            "max_us": self.max_us,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], context: str) -> "LatencySummary":
        _require(isinstance(data, Mapping), "%s must be an object" % context)
        for key in ("p50_us", "p99_us", "mean_us", "max_us", "count"):
            _require(key in data, "%s is missing %r" % (context, key))
        summary = cls(
            p50_us=_finite(data["p50_us"], "%s.p50_us" % context),
            p99_us=_finite(data["p99_us"], "%s.p99_us" % context),
            mean_us=_finite(data["mean_us"], "%s.mean_us" % context),
            max_us=_finite(data["max_us"], "%s.max_us" % context),
            count=_non_negative_int(data["count"], "%s.count" % context),
        )
        summary.validate(context)
        return summary


@dataclass(frozen=True)
class BenchmarkEntry:
    """One benchmark's metrics inside a record."""

    name: str
    decision_latency: LatencySummary
    ingest_throughput_per_s: float
    shed_rate: float = 0.0
    brownout_rate: float = 0.0
    wal_bytes: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def validate(self) -> None:
        context = "benchmarks[%s]" % self.name
        _require(bool(self.name), "benchmark name must be non-empty")
        self.decision_latency.validate("%s.decision_latency" % context)
        throughput = _finite(
            self.ingest_throughput_per_s, "%s.ingest_throughput_per_s" % context
        )
        _require(
            throughput > 0.0,
            "%s.ingest_throughput_per_s must be > 0" % context,
        )
        for rate_name in ("shed_rate", "brownout_rate"):
            rate = _finite(getattr(self, rate_name), "%s.%s" % (context, rate_name))
            _require(
                rate <= 1.0, "%s.%s must be <= 1, got %g" % (context, rate_name, rate)
            )
        _non_negative_int(self.wal_bytes, "%s.wal_bytes" % context)
        for key, value in self.extra.items():
            _require(
                isinstance(key, str) and bool(key),
                "%s.extra keys must be non-empty strings" % context,
            )
            _finite(value, "%s.extra[%s]" % (context, key), minimum=-math.inf)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "decision_latency": self.decision_latency.to_dict(),
            "ingest_throughput_per_s": self.ingest_throughput_per_s,
            "shed_rate": self.shed_rate,
            "brownout_rate": self.brownout_rate,
            "wal_bytes": self.wal_bytes,
            "extra": dict(sorted(self.extra.items())),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], name: str) -> "BenchmarkEntry":
        context = "benchmarks[%s]" % name
        _require(isinstance(data, Mapping), "%s must be an object" % context)
        _require(
            data.get("name") == name,
            "%s: entry name %r disagrees with its key" % (context, data.get("name")),
        )
        for key in ("decision_latency", "ingest_throughput_per_s"):
            _require(key in data, "%s is missing %r" % (context, key))
        extra_raw = data.get("extra", {})
        _require(
            isinstance(extra_raw, Mapping), "%s.extra must be an object" % context
        )
        entry = cls(
            name=name,
            decision_latency=LatencySummary.from_dict(
                data["decision_latency"], "%s.decision_latency" % context
            ),
            ingest_throughput_per_s=_finite(
                data["ingest_throughput_per_s"],
                "%s.ingest_throughput_per_s" % context,
            ),
            shed_rate=_finite(data.get("shed_rate", 0.0), "%s.shed_rate" % context),
            brownout_rate=_finite(
                data.get("brownout_rate", 0.0), "%s.brownout_rate" % context
            ),
            wal_bytes=_non_negative_int(
                data.get("wal_bytes", 0), "%s.wal_bytes" % context
            ),
            extra={str(k): float(v) for k, v in extra_raw.items()},
        )
        entry.validate()
        return entry


@dataclass(frozen=True)
class BenchRecord:
    """One point on the perf trajectory: a full suite run."""

    version: int
    record_id: int
    scale: str
    label: str
    peak_rss_kb: int
    benchmarks: Dict[str, BenchmarkEntry]

    def validate(self) -> None:
        _require(
            self.version == BENCH_SCHEMA_VERSION,
            "unknown bench record version %r (this build understands %d)"
            % (self.version, BENCH_SCHEMA_VERSION),
        )
        _non_negative_int(self.record_id, "record_id")
        _require(bool(self.scale), "scale must be a non-empty string")
        _require(isinstance(self.label, str), "label must be a string")
        _non_negative_int(self.peak_rss_kb, "peak_rss_kb")
        missing = [n for n in REQUIRED_BENCHMARK_NAMES if n not in self.benchmarks]
        _require(not missing, "record is missing benchmarks: %s" % ", ".join(missing))
        unknown = [n for n in self.benchmarks if n not in BENCHMARK_NAMES]
        _require(not unknown, "record has unknown benchmarks: %s" % ", ".join(unknown))
        for name, entry in self.benchmarks.items():
            _require(
                entry.name == name,
                "benchmarks[%s] entry is named %r" % (name, entry.name),
            )
            entry.validate()

    def to_dict(self) -> Dict[str, Any]:
        self.validate()
        return {
            "version": self.version,
            "record_id": self.record_id,
            "scale": self.scale,
            "label": self.label,
            "peak_rss_kb": self.peak_rss_kb,
            "benchmarks": {
                name: self.benchmarks[name].to_dict()
                for name in BENCHMARK_NAMES
                if name in self.benchmarks
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchRecord":
        _require(isinstance(data, Mapping), "bench record must be a JSON object")
        # Version gate first: nothing else is interpreted before it.
        _require("version" in data, "bench record is missing 'version'")
        version = data["version"]
        _require(
            version == BENCH_SCHEMA_VERSION,
            "unknown bench record version %r (this build understands %d)"
            % (version, BENCH_SCHEMA_VERSION),
        )
        for key in ("record_id", "scale", "benchmarks"):
            _require(key in data, "bench record is missing %r" % key)
        benchmarks_raw = data["benchmarks"]
        _require(
            isinstance(benchmarks_raw, Mapping),
            "bench record 'benchmarks' must be an object",
        )
        record = cls(
            version=version,
            record_id=_non_negative_int(data["record_id"], "record_id"),
            scale=str(data["scale"]),
            label=str(data.get("label", "")),
            peak_rss_kb=_non_negative_int(
                data.get("peak_rss_kb", 0), "peak_rss_kb"
            ),
            benchmarks={
                str(name): BenchmarkEntry.from_dict(entry, str(name))
                for name, entry in benchmarks_raw.items()
            },
        )
        record.validate()
        return record

    def dumps(self) -> str:
        """Deterministic sorted-key JSON, trailing newline included."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def loads(cls, text: str) -> "BenchRecord":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise BenchError("bench record is not valid JSON: %s" % error)
        return cls.from_dict(data)
