"""Recorded perf trajectory: run, record, and compare bench records.

Quick start::

    from repro import bench

    record = bench.run_suite(scale="ci")          # run the workloads
    numbered, path = bench.append_record(record, ".")  # BENCH_000N.json
    report = bench.compare_records(bench.latest_record("."), record)
    assert report.ok, report.lines()

See ``docs/BENCHMARKS.md`` for the trajectory workflow and tolerance
policy, and ``python -m repro bench --help`` for the CLI.
"""

from repro.bench.compare import (
    ComparisonReport,
    MetricVerdict,
    Tolerances,
    compare_records,
)
from repro.bench.runner import (
    append_record,
    latest_record,
    list_records,
    load_record,
    peak_rss_kb,
    record_path,
    run_suite,
    write_record,
)
from repro.bench.schema import (
    BENCH_SCHEMA_VERSION,
    BENCHMARK_NAMES,
    OPTIONAL_BENCHMARK_NAMES,
    REQUIRED_BENCHMARK_NAMES,
    BenchmarkEntry,
    BenchRecord,
    LatencySummary,
)
from repro.bench.workloads import SCALES, ScalePreset, resolve_scale

__all__ = [
    "BENCHMARK_NAMES",
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "BenchmarkEntry",
    "ComparisonReport",
    "LatencySummary",
    "MetricVerdict",
    "OPTIONAL_BENCHMARK_NAMES",
    "REQUIRED_BENCHMARK_NAMES",
    "SCALES",
    "ScalePreset",
    "Tolerances",
    "append_record",
    "compare_records",
    "latest_record",
    "list_records",
    "load_record",
    "peak_rss_kb",
    "record_path",
    "resolve_scale",
    "run_suite",
    "write_record",
]
