"""The measured workloads behind the bench trajectory.

Each workload is the library twin of one ``benchmarks/test_scale_*``
benchmark: same construction, same traffic shape, but driven directly
(no pytest) under a fresh :class:`~repro.obs.MetricsRegistry` so its
latency histograms can be exported per benchmark instead of smeared
into one session-wide ``REPRO_METRICS_OUT`` snapshot.  Decision latency
comes from the obs layer's ``enforcement_decide_seconds`` histogram
wherever the workload drives the enforcement engine; the notification
sweep times its accept/ignore decision directly (it is the decision on
that path).

Wall-clock numbers here are intentionally *not* deterministic -- that
is what the per-metric tolerances in :mod:`repro.bench.compare` are
for.  The deterministic counterpart is the capacity soak harness in
:mod:`repro.simulation.longrun`.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro import obs
from repro.bench.schema import BenchmarkEntry, LatencySummary
from repro.errors import BenchError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import NullTracer


@dataclass(frozen=True)
class ScalePreset:
    """Iteration counts for one suite scale (smoke < ci < full)."""

    name: str
    enforcement_users: int
    enforcement_requests: int
    linear_users: int
    linear_requests: int
    ingest_population: int
    ingest_ticks: int
    notification_repeats: int
    week_days: int
    week_population: int
    week_ticks_per_day: int
    overload_population: int
    overload_ticks: int
    federate_population: int
    federate_ticks: int
    rebalance_population: int
    rebalance_ticks: int


#: ``smoke`` keeps the unit-test suite fast, ``ci`` is what the bench
#: CI job records, ``full`` mirrors the pytest benchmark parameters.
SCALES: Dict[str, ScalePreset] = {
    preset.name: preset
    for preset in (
        ScalePreset(
            name="smoke",
            enforcement_users=50, enforcement_requests=400,
            linear_users=50, linear_requests=100,
            ingest_population=6, ingest_ticks=2,
            notification_repeats=3,
            week_days=1, week_population=6, week_ticks_per_day=4,
            overload_population=4, overload_ticks=6,
            federate_population=12, federate_ticks=16,
            rebalance_population=24, rebalance_ticks=12,
        ),
        ScalePreset(
            name="ci",
            enforcement_users=300, enforcement_requests=2000,
            linear_users=200, linear_requests=300,
            ingest_population=20, ingest_ticks=4,
            notification_repeats=20,
            week_days=2, week_population=10, week_ticks_per_day=8,
            overload_population=8, overload_ticks=12,
            federate_population=12, federate_ticks=16,
            rebalance_population=24, rebalance_ticks=12,
        ),
        ScalePreset(
            name="full",
            enforcement_users=1000, enforcement_requests=10000,
            linear_users=1000, linear_requests=300,
            ingest_population=40, ingest_ticks=12,
            notification_repeats=50,
            week_days=8, week_population=24, week_ticks_per_day=16,
            overload_population=12, overload_ticks=16,
            federate_population=16, federate_ticks=24,
            rebalance_population=32, rebalance_ticks=16,
        ),
    )
}


def resolve_scale(name: str) -> ScalePreset:
    preset = SCALES.get(name)
    if preset is None:
        raise BenchError(
            "unknown bench scale %r (choose from %s)"
            % (name, ", ".join(sorted(SCALES)))
        )
    return preset


@contextmanager
def _scoped_registry() -> Iterator[MetricsRegistry]:
    """A fresh default registry (and a null tracer) for one workload."""
    registry = MetricsRegistry()
    previous_registry = obs.set_registry(registry)
    previous_tracer = obs.set_tracer(NullTracer())
    try:
        yield registry
    finally:
        obs.set_registry(previous_registry)
        obs.set_tracer(previous_tracer)


def _latency_summary(histogram: Optional[Histogram], context: str) -> LatencySummary:
    """``histogram`` (seconds) exported as a microsecond summary."""
    if histogram is None or histogram.count == 0:
        raise BenchError("workload %s produced no latency samples" % context)
    summary = histogram.summary(percentiles=(50.0, 99.0))
    return LatencySummary(
        p50_us=float(summary["p50"]) * 1e6,  # type: ignore[arg-type]
        p99_us=float(summary["p99"]) * 1e6,  # type: ignore[arg-type]
        mean_us=float(summary["mean"]) * 1e6,  # type: ignore[arg-type]
        max_us=float(summary["max"]) * 1e6,  # type: ignore[arg-type]
        count=histogram.count,
    )


def _throughput(operations: int, elapsed_s: float) -> float:
    return operations / max(elapsed_s, 1e-9)


# ----------------------------------------------------------------------
# SCALE-1: enforcement decision latency (indexed vs linear)
# ----------------------------------------------------------------------
def run_scale_enforcement(scale: ScalePreset) -> BenchmarkEntry:
    from repro.core.enforcement.engine import EnforcementEngine
    from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
    from repro.core.policy import catalog
    from repro.core.policy.base import (
        DataRequest, DecisionPhase, Effect, RequesterKind,
    )
    from repro.core.policy.conditions import EvaluationContext
    from repro.core.policy.preference import UserPreference
    from repro.core.reasoner.index import LinearRuleStore, PolicyIndex
    from repro.spatial.model import build_simple_building

    categories = (
        DataCategory.LOCATION,
        DataCategory.PRESENCE,
        DataCategory.OCCUPANCY,
        DataCategory.ENERGY_USE,
        DataCategory.MEETING_DETAILS,
    )

    def build_engine(
        store_cls, users: int, registry: MetricsRegistry, compiled: bool = False
    ):
        store = store_cls()
        rng = random.Random(0)
        store.add_policy(catalog.policy_2_emergency_location("b"))
        store.add_policy(catalog.policy_service_sharing("b"))
        store.add_policy(catalog.policy_1_comfort(["b-1001", "b-1002"]))
        rules = 3
        for index in range(users):
            user_id = "user-%05d" % index
            for pref_no in range(3):
                store.add_preference(
                    UserPreference(
                        preference_id="%s-p%d" % (user_id, pref_no),
                        user_id=user_id,
                        description="generated",
                        effect=rng.choice([Effect.ALLOW, Effect.DENY]),
                        categories=(rng.choice(categories),),
                        phases=(DecisionPhase.SHARING,),
                        granularity_cap=rng.choice(list(GranularityLevel)),
                    )
                )
                rules += 1
        spatial = build_simple_building("b", 2, 4)
        engine = EnforcementEngine(
            store=store,
            context=EvaluationContext(spatial=spatial),
            metrics=registry,
            compiled=compiled,
        )
        return engine, rules

    def make_requests(users: int, count: int, seed: int):
        rng = random.Random(seed)
        return [
            DataRequest(
                requester_id="svc",
                requester_kind=RequesterKind.BUILDING_SERVICE,
                phase=DecisionPhase.SHARING,
                category=rng.choice(categories),
                subject_id="user-%05d" % rng.randrange(users),
                space_id="b-1001",
                timestamp=float(rng.randrange(86400)),
                purpose=Purpose.PROVIDING_SERVICE,
            )
            for _ in range(count)
        ]

    def batched_p50_us(target, reqs, batch: int = 25, passes: int = 5) -> float:
        """Per-decide p50 microseconds, timed in sequential batches.

        Per-call ``perf_counter`` overhead is comparable to a compiled
        table hit, so single-call timing would flatter neither engine
        fairly; timing batches amortizes it.  All of one engine's
        passes run back-to-back -- interleaving the two engines (at any
        granularity) evicts the fast engine's warm cache lines and
        systematically under-reports it.  Noise is additive, so the
        minimum of the per-pass medians is the best point estimate.
        """
        import statistics
        from collections import deque

        drain = deque(maxlen=0)
        decide = target.decide
        best = float("inf")
        for _ in range(passes):
            samples = []
            for index in range(0, len(reqs), batch):
                chunk = reqs[index : index + batch]
                begin = time.perf_counter()
                # C-driven loop: interpreter loop overhead would be a
                # measurable fraction of a compiled table hit.
                drain.extend(map(decide, chunk))
                samples.append((time.perf_counter() - begin) / len(chunk))
            best = min(best, statistics.median(samples))
        return best * 1e6

    indexed_registry = MetricsRegistry()
    engine, rules = build_engine(PolicyIndex, scale.enforcement_users, indexed_registry)
    requests = make_requests(scale.enforcement_users, scale.enforcement_requests, 2)
    start = time.perf_counter()
    for request in requests:
        engine.decide(request)
    elapsed = time.perf_counter() - start

    compiled_registry = MetricsRegistry()
    compiled_engine, _ = build_engine(
        PolicyIndex, scale.enforcement_users, compiled_registry, compiled=True
    )
    for request in requests:  # warm: compile every distinct row once
        compiled_engine.decide(request)
    # Whole-pair attempts ride out multi-second scheduling-noise
    # windows; per-engine minimum across attempts, like the per-pass
    # minimum, is the additive-noise point estimate.
    indexed_p50_us = compiled_p50_us = float("inf")
    for _ in range(3):
        indexed_p50_us = min(indexed_p50_us, batched_p50_us(engine, requests))
        compiled_p50_us = min(
            compiled_p50_us, batched_p50_us(compiled_engine, requests)
        )

    linear_registry = MetricsRegistry()
    linear_engine, _ = build_engine(
        LinearRuleStore, scale.linear_users, linear_registry
    )
    linear_requests = make_requests(scale.linear_users, scale.linear_requests, 2)
    linear_start = time.perf_counter()
    for request in linear_requests:
        linear_engine.decide(request)
    linear_elapsed = time.perf_counter() - linear_start

    indexed_us = elapsed / len(requests) * 1e6
    linear_us = linear_elapsed / len(linear_requests) * 1e6
    return BenchmarkEntry(
        name="scale_enforcement",
        decision_latency=_latency_summary(
            indexed_registry.merged_histogram("enforcement_decide_seconds"),
            "scale_enforcement",
        ),
        ingest_throughput_per_s=_throughput(len(requests), elapsed),
        extra={
            "users": float(scale.enforcement_users),
            "rules": float(rules),
            "indexed_us_per_op": indexed_us,
            "linear_us_per_op": linear_us,
            "linear_speedup": linear_us / max(indexed_us, 1e-9),
            "compiled_us_per_op": compiled_p50_us,
            "compiled_indexed_us_per_op": indexed_p50_us,
            "compiled_speedup": indexed_p50_us / max(compiled_p50_us, 1e-9),
        },
    )


# ----------------------------------------------------------------------
# SCALE-2: full-inventory enforced ingest, WAL on
# ----------------------------------------------------------------------
def run_scale_ingest(scale: ScalePreset) -> BenchmarkEntry:
    import tempfile

    from repro.core.policy import catalog
    from repro.simulation.dbh import BUILDING_ID, make_dbh_tippers
    from repro.simulation.inhabitants import generate_inhabitants
    from repro.simulation.mobility import BuildingWorld
    from repro.spatial.model import SpaceType
    from repro.storage.durable import StorageEngine

    noon = 12 * 3600.0
    tick_spacing = 120.0
    with _scoped_registry() as registry:
        with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as tmpdir:
            engine = StorageEngine(tmpdir, metrics=registry)
            tippers = make_dbh_tippers(enforce_capture=True, storage=engine)
            rooms = [
                s.space_id for s in tippers.spatial.spaces_of_type(SpaceType.ROOM)
            ]
            tippers.define_policy(catalog.policy_1_comfort(rooms))
            tippers.define_policy(catalog.policy_2_emergency_location(BUILDING_ID))
            tippers.define_policy(catalog.policy_service_sharing(BUILDING_ID))
            inhabitants = generate_inhabitants(
                tippers.spatial, scale.ingest_population, seed=5
            )
            for person in inhabitants:
                tippers.add_user(person.profile)
            world = BuildingWorld(tippers.spatial, inhabitants, seed=5)

            start = time.perf_counter()
            for tick in range(scale.ingest_ticks):
                now = noon + tick * tick_spacing
                world.step(now)
                tippers.tick(now, world)
            elapsed = time.perf_counter() - start
            stats = tippers.sensor_manager.stats
            wal_bytes = int(registry.total("storage_wal_bytes_total"))
            engine.close()

    return BenchmarkEntry(
        name="scale_ingest",
        decision_latency=_latency_summary(
            registry.merged_histogram("enforcement_decide_seconds"), "scale_ingest"
        ),
        ingest_throughput_per_s=_throughput(stats.sampled, elapsed),
        wal_bytes=wal_bytes,
        extra={
            "sampled": float(stats.sampled),
            "stored": float(stats.stored),
            "dropped": float(stats.dropped_capture + stats.dropped_storage),
            "sensors": float(tippers.sensor_manager.count()),
        },
    )


# ----------------------------------------------------------------------
# SCALE-3: notification relevance sweep
# ----------------------------------------------------------------------
def run_scale_notifications(scale: ScalePreset) -> BenchmarkEntry:
    from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
    from repro.iota.notifications import NotificationManager
    from repro.iota.personas import PERSONAS, generate_decisions
    from repro.iota.preference_model import DataPractice, PreferenceModel

    thresholds = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
    advertised = [
        DataPractice(DataCategory.LOCATION, Purpose.EMERGENCY_RESPONSE, retention_days=180),
        DataPractice(DataCategory.LOCATION, Purpose.PROVIDING_SERVICE),
        DataPractice(DataCategory.PRESENCE, Purpose.SECURITY, retention_days=30),
        DataPractice(DataCategory.PRESENCE, Purpose.PROVIDING_SERVICE, granularity=GranularityLevel.COARSE),
        DataPractice(DataCategory.OCCUPANCY, Purpose.COMFORT, retention_days=7),
        DataPractice(DataCategory.OCCUPANCY, Purpose.ENERGY_MANAGEMENT, granularity=GranularityLevel.AGGREGATE),
        DataPractice(DataCategory.ENERGY_USE, Purpose.ENERGY_MANAGEMENT, retention_days=365),
        DataPractice(DataCategory.TEMPERATURE, Purpose.COMFORT, granularity=GranularityLevel.AGGREGATE),
        DataPractice(DataCategory.IDENTITY, Purpose.ACCESS_CONTROL, retention_days=365),
        DataPractice(DataCategory.MEETING_DETAILS, Purpose.PROVIDING_SERVICE),
        DataPractice(DataCategory.LOCATION, Purpose.RESEARCH, retention_days=365),
        DataPractice(DataCategory.LOCATION, Purpose.PROVIDING_SERVICE, third_party=True),
        DataPractice(DataCategory.IDENTITY, Purpose.MARKETING, third_party=True),
        DataPractice(DataCategory.ACTIVITY, Purpose.SECURITY),
    ]
    models = {
        name: PreferenceModel().fit(generate_decisions(persona, 200, seed=1, noise=0.0))
        for name, persona in PERSONAS.items()
    }

    # The offer decision (notify or stay silent) is the decision on
    # this path; time it directly into a latency histogram.
    offer_latency = Histogram("notification_offer_seconds")
    shown: Dict[str, int] = {}
    offers = 0
    start = time.perf_counter()
    for _ in range(scale.notification_repeats):
        for persona_name, model in sorted(models.items()):
            for threshold in thresholds:
                manager = NotificationManager(
                    model, relevance_threshold=threshold, daily_budget=100
                )
                for index, practice in enumerate(advertised):
                    offer_start = time.perf_counter()
                    sent = manager.offer(
                        float(index), practice, "practice-%d" % index
                    )
                    offer_latency.observe(time.perf_counter() - offer_start)
                    offers += 1
                    if sent and threshold == 0.4:
                        shown[persona_name] = shown.get(persona_name, 0) + 1
    elapsed = time.perf_counter() - start

    extra = {
        "advertised_practices": float(len(advertised)),
        "offers": float(offers),
    }
    for persona_name, count in sorted(shown.items()):
        extra["shown_at_0.4_%s" % persona_name] = count / float(
            scale.notification_repeats
        )
    return BenchmarkEntry(
        name="scale_notifications",
        decision_latency=_latency_summary(offer_latency, "scale_notifications"),
        ingest_throughput_per_s=_throughput(offers, elapsed),
        extra=extra,
    )


# ----------------------------------------------------------------------
# SCALE-4: week-in-the-life soak
# ----------------------------------------------------------------------
def run_scale_week(scale: ScalePreset) -> BenchmarkEntry:
    from repro.simulation.longrun import run_week

    with _scoped_registry() as registry:
        start = time.perf_counter()
        result = run_week(
            days=scale.week_days,
            population=scale.week_population,
            ticks_per_day=scale.week_ticks_per_day,
            seed=9,
        )
        elapsed = time.perf_counter() - start

    return BenchmarkEntry(
        name="scale_week",
        decision_latency=_latency_summary(
            registry.merged_histogram("enforcement_decide_seconds"), "scale_week"
        ),
        ingest_throughput_per_s=_throughput(result.observations_sampled, elapsed),
        extra={
            "days": float(scale.week_days),
            "population": float(scale.week_population),
            "sampled": float(result.observations_sampled),
            "stored": float(result.observations_stored),
            "purged": float(result.observations_purged),
            "queries_total": float(result.queries_total),
            "denial_rate": round(result.denial_rate, 6),
        },
    )


# ----------------------------------------------------------------------
# SCALE-5: rush-hour overload (admission on)
# ----------------------------------------------------------------------
def run_scale_overload(scale: ScalePreset) -> BenchmarkEntry:
    from repro.simulation.overload import run_overload_scenario

    registry = MetricsRegistry()
    start = time.perf_counter()
    report = run_overload_scenario(
        plan_name="rush-hour",
        seed=11,
        population=scale.overload_population,
        ticks=scale.overload_ticks,
        admission=True,
        metrics=registry,
    )
    elapsed = time.perf_counter() - start
    if not report.ok:
        raise BenchError(
            "overload workload violated its invariants: %s"
            % "; ".join(report.violations)
        )

    checked = max(report.ledger_checked, 1)
    admitted = max(report.ledger_admitted, 1)
    return BenchmarkEntry(
        name="scale_overload",
        decision_latency=_latency_summary(
            registry.merged_histogram("enforcement_decide_seconds"), "scale_overload"
        ),
        ingest_throughput_per_s=_throughput(report.ledger_checked, elapsed),
        shed_rate=round(report.ledger_shed / checked, 6),
        brownout_rate=round(report.ledger_brownouts / admitted, 6),
        extra={
            "critical_shed": float(report.critical.shed),
            "deferrable_shed_rate": round(report.deferrable.shed_rate, 6),
            "injected_arrivals": float(report.injected_arrivals),
            "stored": float(report.stored),
        },
    )


# ----------------------------------------------------------------------
# SCALE-6: sharded campus federation (roaming + crash + DSAR fan-out)
# ----------------------------------------------------------------------
def run_scale_federate(scale: ScalePreset) -> BenchmarkEntry:
    from repro.simulation.federate import run_federate_scenario

    registry = MetricsRegistry()
    start = time.perf_counter()
    report = run_federate_scenario(
        plan_name="campus-storm",
        seed=17,
        population=scale.federate_population,
        ticks=scale.federate_ticks,
        metrics=registry,
    )
    elapsed = time.perf_counter() - start
    if not report.ok:
        raise BenchError(
            "federate workload violated its invariants: %s"
            % "; ".join(report.violations)
        )

    checked = max(report.ledger_checked, 1)
    admitted = max(report.ledger_admitted, 1)
    return BenchmarkEntry(
        name="scale_federate",
        decision_latency=_latency_summary(
            registry.merged_histogram("enforcement_decide_seconds"),
            "scale_federate",
        ),
        ingest_throughput_per_s=_throughput(report.ledger_checked, elapsed),
        shed_rate=round(report.ledger_shed / checked, 6),
        brownout_rate=round(report.ledger_brownouts / admitted, 6),
        wal_bytes=int(registry.total("storage_wal_bytes_total")),
        extra={
            "buildings": float(len(report.buildings)),
            "population": float(report.population),
            "handoffs": float(report.handoffs),
            "reentries": float(report.reentries),
            "preferences_repushed": float(report.preferences_repushed),
            "roaming_marked_responses": float(report.roaming_marked_responses),
            "dsar_erased": float(report.dsar_erased),
            "recovered": 1.0 if report.recovered else 0.0,
        },
    )


# ----------------------------------------------------------------------
# SCALE-7: elastic membership (ring change + crash-tolerant rebalance)
# ----------------------------------------------------------------------
def run_scale_rebalance(scale: ScalePreset) -> BenchmarkEntry:
    from repro.simulation.rebalance import run_rebalance_scenario

    registry = MetricsRegistry()
    start = time.perf_counter()
    report = run_rebalance_scenario(
        plan_name="ring-change",
        seed=23,
        population=scale.rebalance_population,
        ticks=scale.rebalance_ticks,
        metrics=registry,
    )
    elapsed = time.perf_counter() - start
    if not report.ok:
        raise BenchError(
            "rebalance workload violated its invariants: %s"
            % "; ".join(report.violations)
        )

    checked = max(report.ledger_checked, 1)
    stats = report.migration_stats
    return BenchmarkEntry(
        name="scale_rebalance",
        decision_latency=_latency_summary(
            registry.merged_histogram("enforcement_decide_seconds"),
            "scale_rebalance",
        ),
        ingest_throughput_per_s=_throughput(report.ledger_checked, elapsed),
        shed_rate=round(report.ledger_shed / checked, 6),
        brownout_rate=0.0,
        wal_bytes=int(registry.total("storage_wal_bytes_total")),
        extra={
            "population": float(report.population),
            "migrations_planned": float(stats.get("planned", 0)),
            "migrations_completed": float(stats.get("completed", 0)),
            "resumed_committed": float(stats.get("resumed_committed", 0)),
            "observations_moved": float(report.observations_moved),
            "preferences_moved": float(report.preferences_moved),
            "forwarded_marked": float(report.marked_responses),
            "dsar_erased": float(report.dsar_erased),
            "recovered": 1.0 if report.recovered else 0.0,
        },
    )


#: Workload registry, in SCALE order; ``runner.run_suite`` walks this.
WORKLOADS: Tuple[Tuple[str, Callable[[ScalePreset], BenchmarkEntry]], ...] = (
    ("scale_enforcement", run_scale_enforcement),
    ("scale_ingest", run_scale_ingest),
    ("scale_notifications", run_scale_notifications),
    ("scale_week", run_scale_week),
    ("scale_overload", run_scale_overload),
    ("scale_federate", run_scale_federate),
    ("scale_rebalance", run_scale_rebalance),
)
