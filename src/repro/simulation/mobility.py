"""The simulated world: where everyone is, and room physics.

:class:`BuildingWorld` implements the
:class:`~repro.sensors.environment.EnvironmentView` that sensor drivers
sample.  ``step(now)`` moves each inhabitant according to their
schedule (office work, lunch trips, occasional corridor wandering) and
relaxes room temperatures toward their HVAC setpoints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.errors import ReproError
from repro.sensors.environment import EnvironmentView, PresentDevice
from repro.simulation.inhabitants import Inhabitant
from repro.spatial.model import SpaceType, SpatialModel


class BuildingWorld(EnvironmentView):
    """Ground-truth world state the sensors observe."""

    OUTSIDE_TEMP_F = 62.0
    BASE_LOAD_W = 40.0
    PER_PERSON_LOAD_W = 120.0

    def __init__(
        self,
        spatial: SpatialModel,
        inhabitants: List[Inhabitant],
        seed: int = 0,
        seconds_per_day: int = 86400,
    ) -> None:
        self._spatial = spatial
        self._inhabitants = {p.user_id: p for p in inhabitants}
        self._rng = random.Random(seed)
        self._seconds_per_day = seconds_per_day
        self._locations: Dict[str, Optional[str]] = {
            p.user_id: None for p in inhabitants
        }
        self._previous_locations: Dict[str, Optional[str]] = dict(self._locations)
        self._temperatures: Dict[str, float] = {
            s.space_id: self.OUTSIDE_TEMP_F + 6.0
            for s in spatial.spaces_of_type(SpaceType.ROOM)
        }
        self._hvac_setpoints: Dict[str, float] = {}
        self._lunch_room = self._pick_lunch_room()
        self._pending_credentials: Dict[str, str] = {}
        #: Visitors from other buildings: present in the ground truth
        #: (their devices radiate like anyone's) but never auto-placed
        #: by ``step`` -- their schedules and offices belong to their
        #: home building, so a campus controller teleports them.
        self._visitors: Set[str] = set()

    def _pick_lunch_room(self) -> str:
        rooms = sorted(
            s.space_id
            for s in self._spatial.spaces_of_type(SpaceType.ROOM)
            if s.attributes.get("coffee_machine") == "yes"
        )
        if rooms:
            return rooms[0]
        all_rooms = sorted(s.space_id for s in self._spatial.spaces_of_type(SpaceType.ROOM))
        if not all_rooms:
            raise ReproError("world needs at least one room")
        return all_rooms[0]

    # ------------------------------------------------------------------
    # Time stepping
    # ------------------------------------------------------------------
    def hour_of(self, now: float) -> float:
        return (now % self._seconds_per_day) / (self._seconds_per_day / 24.0)

    def step(self, now: float, dt_s: float = 60.0) -> None:
        """Advance the world to ``now``: move people, relax physics."""
        hour = self.hour_of(now)
        self._previous_locations = dict(self._locations)
        for inhabitant in self._inhabitants.values():
            if inhabitant.user_id in self._visitors:
                continue  # placed by the campus controller, not the schedule
            self._locations[inhabitant.user_id] = self._place(inhabitant, hour)
        self._relax_temperatures(dt_s)

    def _place(self, inhabitant: Inhabitant, hour: float) -> Optional[str]:
        schedule = inhabitant.schedule
        if not schedule.in_building(hour):
            return None
        if schedule.at_lunch(hour):
            return self._lunch_room
        office = inhabitant.profile.office_id
        if office is None:
            # Undergrads drift between rooms and corridors.
            spaces = sorted(
                s.space_id
                for s in self._spatial.spaces_of_type(SpaceType.ROOM)
            )
            return self._rng.choice(spaces)
        # Occasionally wander to the corridor outside the office.
        if self._rng.random() < 0.05:
            floor = self._spatial.ancestor_at_level(office, SpaceType.FLOOR)
            if floor is not None:
                corridors = [
                    s.space_id
                    for s in self._spatial.children(floor.space_id)
                    if s.space_type is SpaceType.CORRIDOR
                ]
                if corridors:
                    return corridors[0]
        return office

    def _relax_temperatures(self, dt_s: float) -> None:
        """First-order relaxation toward setpoint (or outside temp)."""
        rate = min(1.0, dt_s / 1800.0)
        for space_id, temp in self._temperatures.items():
            target = self._hvac_setpoints.get(space_id, self.OUTSIDE_TEMP_F + 4.0)
            self._temperatures[space_id] = temp + (target - temp) * rate

    # ------------------------------------------------------------------
    # Control inputs
    # ------------------------------------------------------------------
    def set_hvac_setpoint(self, space_id: str, setpoint_f: float) -> None:
        self._hvac_setpoints[space_id] = setpoint_f

    def present_credential(self, space_id: str, user_id: str) -> None:
        """A user swipes their card at a reader this tick."""
        self._pending_credentials[space_id] = "cred:%s" % user_id

    def teleport(self, user_id: str, space_id: Optional[str]) -> None:
        """Force a person's location (used by scenario scripts)."""
        if user_id not in self._locations:
            raise ReproError("unknown inhabitant %r" % user_id)
        self._locations[user_id] = space_id

    # ------------------------------------------------------------------
    # Cross-building visitors (federation roaming)
    # ------------------------------------------------------------------
    def add_visitor(self, inhabitant: Inhabitant) -> None:
        """Admit a visitor from another building (idempotent)."""
        if inhabitant.user_id in self._inhabitants:
            self._visitors.add(inhabitant.user_id)
            return
        self._inhabitants[inhabitant.user_id] = inhabitant
        self._locations[inhabitant.user_id] = None
        self._visitors.add(inhabitant.user_id)

    def remove_visitor(self, user_id: str) -> None:
        """The visitor left the building; forget their ground truth."""
        if user_id not in self._visitors:
            return
        self._visitors.discard(user_id)
        self._inhabitants.pop(user_id, None)
        self._locations.pop(user_id, None)
        # _previous_locations keeps its entry for one step, so motion
        # sensors see the departure like any other exit.

    # ------------------------------------------------------------------
    # Ground truth queries
    # ------------------------------------------------------------------
    def location_of(self, user_id: str) -> Optional[str]:
        return self._locations.get(user_id)

    def occupants_of(self, space_id: str) -> List[str]:
        return sorted(
            uid for uid, loc in self._locations.items() if loc == space_id
        )

    @property
    def lunch_room(self) -> str:
        return self._lunch_room

    # ------------------------------------------------------------------
    # EnvironmentView (what sensors see)
    # ------------------------------------------------------------------
    def devices_in(self, space_id: str) -> List[PresentDevice]:
        devices = []
        for user_id in self.occupants_of(space_id):
            profile = self._inhabitants[user_id].profile
            for mac in profile.device_macs:
                devices.append(
                    PresentDevice(
                        person_id=user_id, device_mac=mac, has_iota=profile.has_iota
                    )
                )
        return devices

    def temperature_of(self, space_id: str) -> float:
        return self._temperatures.get(space_id, self.OUTSIDE_TEMP_F)

    def power_draw_of(self, space_id: str) -> float:
        occupants = len(self.occupants_of(space_id))
        return self.BASE_LOAD_W + self.PER_PERSON_LOAD_W * occupants

    def motion_in(self, space_id: str) -> bool:
        if self.occupants_of(space_id):
            return True
        # Motion also triggers briefly when someone just left.
        return any(
            previous == space_id and self._locations.get(uid) != space_id
            for uid, previous in self._previous_locations.items()
        )

    def credential_presented(self, space_id: str) -> Optional[str]:
        return self._pending_credentials.pop(space_id, None)


@dataclass(frozen=True)
class RoamEvent:
    """One person crossing a building boundary this step."""

    user_id: str
    from_building: str
    to_building: str
    kind: str  # "roam" (left home) | "return" (came home)


class CampusWorld:
    """Ground truth for a campus: one BuildingWorld per building.

    Residents follow their home building's schedules; *roamers*
    additionally cross building boundaries under a seeded RNG, becoming
    visitors in the destination world (placed in its common room, where
    the sensors are) while their home world shows them absent.  The
    emitted :class:`RoamEvent` stream is what drives IoTA handoffs in
    the federation scenario -- the world decides *that* someone moved;
    the privacy machinery decides what happens next.
    """

    def __init__(
        self,
        worlds: Mapping[str, BuildingWorld],
        home_of: Mapping[str, str],
        inhabitants: Mapping[str, Inhabitant],
        roamers: Sequence[str],
        seed: int = 0,
        roam_rate: float = 0.25,
        return_rate: float = 0.35,
    ) -> None:
        if not worlds:
            raise ReproError("a campus needs at least one building world")
        for user_id, home in home_of.items():
            if home not in worlds:
                raise ReproError(
                    "inhabitant %r homes to unknown building %r" % (user_id, home)
                )
        for user_id in roamers:
            if user_id not in home_of or user_id not in inhabitants:
                raise ReproError("unknown roamer %r" % user_id)
        self._worlds = dict(worlds)
        self._home_of = dict(home_of)
        self._inhabitants = dict(inhabitants)
        self._roamers = tuple(sorted(set(roamers)))
        self._assignment: Dict[str, str] = dict(home_of)
        self._rng = random.Random(seed)
        self._roam_rate = roam_rate
        self._return_rate = return_rate

    @property
    def roamers(self) -> Sequence[str]:
        return self._roamers

    def world(self, building_id: str) -> BuildingWorld:
        try:
            return self._worlds[building_id]
        except KeyError:
            raise ReproError("unknown building %r" % building_id) from None

    def building_of(self, user_id: str) -> str:
        """The building ``user_id`` is currently assigned to."""
        try:
            return self._assignment[user_id]
        except KeyError:
            raise ReproError("unknown inhabitant %r" % user_id) from None

    def location_of(self, user_id: str) -> Optional[str]:
        """Ground-truth location in the user's current building."""
        return self.world(self.building_of(user_id)).location_of(user_id)

    def step(self, now: float, dt_s: float = 60.0) -> List[RoamEvent]:
        """Advance every building; decide and apply roaming moves.

        Roam decisions iterate the sorted roamer list against one
        seeded RNG, so two same-seed runs produce the same event
        stream.  A roamer leaves home only while their schedule has
        them in a building, and is forced home once it no longer does
        (nobody sleeps in a foreign lunch room).
        """
        events: List[RoamEvent] = []
        for user_id in self._roamers:
            home = self._home_of[user_id]
            current = self._assignment[user_id]
            schedule = self._inhabitants[user_id].schedule
            hour = self._worlds[home].hour_of(now)
            if current == home:
                if schedule.in_building(hour) and self._rng.random() < self._roam_rate:
                    choices = sorted(b for b in self._worlds if b != home)
                    if not choices:
                        continue
                    destination = self._rng.choice(choices)
                    self._assignment[user_id] = destination
                    self._worlds[destination].add_visitor(
                        self._inhabitants[user_id]
                    )
                    events.append(
                        RoamEvent(
                            user_id=user_id,
                            from_building=home,
                            to_building=destination,
                            kind="roam",
                        )
                    )
            else:
                must_return = not schedule.in_building(hour)
                if must_return or self._rng.random() < self._return_rate:
                    self._worlds[current].remove_visitor(user_id)
                    self._assignment[user_id] = home
                    events.append(
                        RoamEvent(
                            user_id=user_id,
                            from_building=current,
                            to_building=home,
                            kind="return",
                        )
                    )
        for building_id in sorted(self._worlds):
            self._worlds[building_id].step(now, dt_s)
        # Enforce the assignment: someone visiting building B is absent
        # from their home world and present in B's common room.
        for user_id, building_id in sorted(self._assignment.items()):
            home = self._home_of[user_id]
            if building_id == home:
                continue
            self._worlds[home].teleport(user_id, None)
            visited = self._worlds[building_id]
            visited.teleport(user_id, visited.lunch_room)
        return events
