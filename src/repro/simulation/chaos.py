"""The chaos scenario: the Figure-1 pipeline under a named fault plan.

A compact building (2 floors x 6 rooms, a handful of inhabitants) runs
capture ticks, IoTA discovery/settings sweeps, and service location
queries while a :class:`~repro.faults.FaultInjector` fires a shipped
fault plan at the bus, datastore, sensors, and policy store.  The run
reports delivered/undelivered/degraded counts, the full fault trace,
and a stable rendering of every enforcement decision -- two runs with
the same seed and plan are byte-identical, which the chaos regression
tests pin.

Everything is locally scoped (own metrics registry, own tracer, own
bus) so chaos runs never leak state into the process-global registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.policy import catalog
from repro.core.reasoner.resolution import ResolutionStrategy
from repro.errors import NetworkError
from repro.faults import FaultInjector, build_plan
from repro.iota.assistant import IoTAssistant
from repro.irr.registry import IoTResourceRegistry
from repro.net.bus import MessageBus
from repro.net.resilience import BreakerBoard, Deadline, RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.simulation.inhabitants import generate_inhabitants
from repro.simulation.mobility import BuildingWorld
from repro.spatial.model import SpaceType, build_simple_building
from repro.tippers.bms import TIPPERS

BUILDING_ID = "chaos"
REGISTRY_ENDPOINT = "irr-1"
TIPPERS_ENDPOINT = "tippers"


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    plan: str
    seed: int
    population: int
    ticks: int
    delivered: int = 0
    undelivered: int = 0
    degraded: int = 0
    failclosed: int = 0
    stored: int = 0
    write_failures: int = 0
    stalled: int = 0
    decisions: List[str] = field(default_factory=list)
    audit_effects: List[str] = field(default_factory=list)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    trace_text: str = ""
    bus_attempts: int = 0
    bus_logical_calls: int = 0
    bus_retries: int = 0
    bus_dropped: int = 0
    bus_faulted: int = 0
    bus_corrupted: int = 0
    bus_rejected: int = 0
    breaker_states: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "population": self.population,
            "ticks": self.ticks,
            "delivered": self.delivered,
            "undelivered": self.undelivered,
            "degraded": self.degraded,
            "failclosed": self.failclosed,
            "stored": self.stored,
            "write_failures": self.write_failures,
            "stalled": self.stalled,
            "fault_counts": dict(self.fault_counts),
            "faults_fired": sum(self.fault_counts.values()),
            "decisions": list(self.decisions),
            "bus": {
                "attempts": self.bus_attempts,
                "logical_calls": self.bus_logical_calls,
                "retries": self.bus_retries,
                "dropped": self.bus_dropped,
                "faulted": self.bus_faulted,
                "corrupted": self.bus_corrupted,
                "rejected": self.bus_rejected,
            },
            "breaker_states": dict(self.breaker_states),
        }

    def summary_lines(self) -> List[str]:
        lines = [
            "chaos run: plan=%s seed=%d population=%d ticks=%d"
            % (self.plan, self.seed, self.population, self.ticks),
            "queries: delivered=%d undelivered=%d degraded=%d fail-closed=%d"
            % (self.delivered, self.undelivered, self.degraded, self.failclosed),
            "capture: stored=%d write_failures=%d stalled_samples=%d"
            % (self.stored, self.write_failures, self.stalled),
            "bus: attempts=%d logical=%d retries=%d dropped=%d "
            "(faulted=%d corrupted=%d) breaker_rejected=%d"
            % (
                self.bus_attempts,
                self.bus_logical_calls,
                self.bus_retries,
                self.bus_dropped,
                self.bus_faulted,
                self.bus_corrupted,
                self.bus_rejected,
            ),
        ]
        fired = ", ".join(
            "%s=%d" % (kind, count)
            for kind, count in sorted(self.fault_counts.items())
        )
        lines.append("faults fired: %s" % (fired or "none"))
        if self.breaker_states:
            lines.append(
                "breakers: "
                + ", ".join(
                    "%s=%s" % (target, state)
                    for target, state in sorted(self.breaker_states.items())
                )
            )
        return lines


def run_chaos_scenario(
    plan_name: str = "monkey",
    seed: int = 11,
    population: int = 8,
    ticks: int = 6,
    strategy: ResolutionStrategy = ResolutionStrategy.NEGOTIATE,
) -> ChaosReport:
    """Run the compact pipeline under ``plan_name`` and report.

    The enforcement engine is deliberately non-caching so every decision
    exercises the (faultable) policy-fetch path.
    """
    report = ChaosReport(
        plan=plan_name, seed=seed, population=population, ticks=ticks
    )
    metrics = MetricsRegistry()
    tracer = Tracer()
    spatial = build_simple_building(BUILDING_ID, floors=2, rooms_per_floor=6)
    tippers = TIPPERS(
        spatial,
        BUILDING_ID,
        strategy=strategy,
        owner_name="Chaos Labs",
        enforce_capture=True,
        cache_decisions=False,
        metrics=metrics,
    )
    rooms = sorted(
        s.space_id for s in spatial.spaces_of_type(SpaceType.ROOM)
    )
    for index, room in enumerate(rooms):
        tippers.deploy_sensor("wifi_access_point", "ap-%02d" % (index + 1), room)
        tippers.deploy_sensor("motion_sensor", "motion-%02d" % (index + 1), room)
    tippers.define_policy(catalog.policy_service_sharing(BUILDING_ID))
    tippers.define_policy(catalog.policy_2_emergency_location(BUILDING_ID))
    tippers.define_policy(catalog.policy_1_comfort(rooms))

    inhabitants = generate_inhabitants(spatial, population, seed=seed)
    for inhabitant in inhabitants:
        tippers.add_user(inhabitant.profile)
    world = BuildingWorld(spatial, inhabitants, seed=seed)

    bus = MessageBus(metrics=metrics, tracer=tracer, breakers=BreakerBoard())
    bus.register(TIPPERS_ENDPOINT, tippers)
    registry = IoTResourceRegistry(REGISTRY_ENDPOINT, spatial)
    bus.register(REGISTRY_ENDPOINT, registry)
    registry.publish_resource(
        "chaos-building-policies",
        BUILDING_ID,
        tippers.policy_manager.compile_policy_document(),
        settings=tippers.policy_manager.settings_space.to_document(),
    )

    plan = build_plan(plan_name, seed)
    injector = FaultInjector(plan)
    injector.install_bus(bus)
    injector.install_datastore(tippers.datastore)
    injector.install_sensor_manager(tippers.sensor_manager)
    injector.install_policy_store(tippers.store)

    retry_policy = RetryPolicy(seed=seed)
    iota = IoTAssistant(
        inhabitants[0].user_id,
        bus,
        registry_endpoints=[REGISTRY_ENDPOINT],
        metrics=metrics,
        retry_policy=retry_policy,
        call_deadline_s=10.0,
    )

    noon = 12 * 3600.0
    for tick in range(ticks):
        now = noon + tick * 60.0
        world.step(now)
        tippers.tick(now, world)
        location = world.location_of(iota.user_id) or BUILDING_ID
        iota.discover(location, now)
        if tick == 0:
            try:
                iota.configure_building_settings(now + 1.0)
            except NetworkError:
                report.degraded += 1
        for inhabitant in inhabitants:
            try:
                response = bus.call(
                    TIPPERS_ENDPOINT,
                    "locate_user",
                    {
                        "requester_id": "svc-chaos",
                        "requester_kind": "building_service",
                        "subject_id": inhabitant.user_id,
                        "now": now,
                    },
                    retry_policy=retry_policy,
                    deadline=Deadline(10.0),
                )
            except NetworkError:
                report.undelivered += 1
                continue
            report.delivered += 1
            report.decisions.append(
                "tick=%d subject=%s allowed=%s reasons=%s"
                % (
                    tick,
                    inhabitant.user_id,
                    response["allowed"],
                    "|".join(response["reasons"]),
                )
            )

    injector.uninstall()

    report.failclosed = sum(
        1 for record in tippers.audit if "fail-closed deny" in record.reasons
    )
    report.degraded += int(metrics.total("tippers_degraded_total"))
    report.stored = tippers.datastore.count()
    report.write_failures = tippers.datastore.total_write_failures
    report.stalled = sum(
        subsystem.stalled_samples
        for subsystem in tippers.sensor_manager.subsystems()
    )
    report.audit_effects = [record.effect.value for record in tippers.audit]
    report.fault_counts = injector.trace.counts()
    report.trace_text = injector.trace.to_text()
    stats = bus.stats
    report.bus_attempts = stats.calls
    report.bus_logical_calls = stats.logical_calls
    report.bus_retries = stats.retries
    report.bus_dropped = stats.dropped
    report.bus_faulted = stats.faulted
    report.bus_corrupted = stats.corrupted
    report.bus_rejected = stats.rejected
    if bus.breakers is not None:
        report.breaker_states = bus.breakers.states()
    return report
