"""Multi-day "week in the life" runs and the capacity soak harness.

Two soak-shaped workloads live here:

- :func:`run_week` drives the complete stack -- capture, retention,
  comfort control, services querying, IoTAs configuring settings per
  persona -- for several simulated days and collects system-level
  metrics.  This is the soak test behind the SCALE-4 benchmark and a
  convenient workload generator for profiling.
- :func:`run_capacity_soak` steps the principal population (1k -> 10k
  -> 100k -> 1M by default) through a WAL-on, admission-on building and
  finds the **max sustainable population** under a latency/memory
  ceiling.  Reports are seeded and byte-reproducible: latency is a
  deterministic cost *model* (rules evaluated per decision + queueing
  backlog), never a wall clock, so two same-seed runs render identical
  text -- the same discipline the chaos/overload reports follow.
"""

from __future__ import annotations

import dataclasses
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policy import catalog
from repro.core.reasoner.resolution import ResolutionStrategy
from repro.errors import AdmissionShedError, NetworkError, ServiceError
from repro.iota.assistant import IoTAssistant
from repro.iota.personas import generate_decisions
from repro.iota.preference_model import PreferenceModel
from repro.irr.mud import auto_provision
from repro.irr.registry import IoTResourceRegistry
from repro.net.admission import AdmissionController, Priority
from repro.net.bus import MessageBus
from repro.obs.metrics import DEFAULT_COUNT_BUCKETS, Histogram, MetricsRegistry
from repro.sensors.base import scoped_observation_ids
from repro.services.concierge import SmartConcierge
from repro.services.food_delivery import FoodDeliveryService
from repro.services.meeting import SmartMeeting
from repro.simulation.costmodel import DEFAULT_COST_TABLE, CostTable
from repro.simulation.dbh import BUILDING_ID, make_dbh_tippers
from repro.simulation.inhabitants import generate_inhabitants
from repro.simulation.mobility import BuildingWorld
from repro.spatial.model import SpaceType, build_simple_building
from repro.tippers.bms import TIPPERS


@dataclass
class WeekReport:
    """Aggregate metrics of one multi-day run."""

    days: int
    population: int
    observations_sampled: int = 0
    observations_stored: int = 0
    observations_purged: int = 0
    queries_total: int = 0
    queries_denied: int = 0
    deliveries_attempted: int = 0
    deliveries_made: int = 0
    hvac_actuations: int = 0
    selections: Dict[str, int] = field(default_factory=dict)
    audit_summary: Dict[str, int] = field(default_factory=dict)

    @property
    def denial_rate(self) -> float:
        return self.queries_denied / self.queries_total if self.queries_total else 0.0


def run_week(
    days: int = 5,
    population: int = 30,
    ticks_per_day: int = 24,
    seed: int = 9,
    strategy: ResolutionStrategy = ResolutionStrategy.NEGOTIATE,
    cache_decisions: bool = True,
) -> WeekReport:
    """Run ``days`` simulated days and return the metric report.

    Each day: capture sweeps around the clock, comfort control at each
    sweep, a Concierge locate query and a lunch delivery run at noon,
    and a retention sweep at midnight.  On day 0 every inhabitant's
    IoTA trains on persona decisions and configures building settings.
    """
    tippers = make_dbh_tippers(strategy=strategy, cache_decisions=cache_decisions)
    rooms = [s.space_id for s in tippers.spatial.spaces_of_type(SpaceType.ROOM)]
    tippers.define_policy(catalog.policy_1_comfort(rooms))
    tippers.define_policy(catalog.policy_2_emergency_location(BUILDING_ID))
    tippers.define_policy(catalog.policy_service_sharing(BUILDING_ID))

    inhabitants = generate_inhabitants(tippers.spatial, population, seed=seed)
    for person in inhabitants:
        tippers.add_user(person.profile)
    world = BuildingWorld(tippers.spatial, inhabitants, seed=seed)

    bus = MessageBus()
    bus.register("tippers", tippers)
    registry = IoTResourceRegistry("irr-dbh", tippers.spatial)
    bus.register("irr-dbh", registry)
    auto_provision(registry, tippers)

    concierge = SmartConcierge(tippers)
    meetings = SmartMeeting(tippers)
    food = FoodDeliveryService(tippers)

    report = WeekReport(days=days, population=population)

    # A recurring morning meeting gives the meeting service (and its
    # occupancy queries) daily traffic.
    organizer = inhabitants[0].user_id
    attendee = inhabitants[1].user_id if population > 1 else organizer

    # Day 0: every inhabitant's assistant configures settings.
    for index, person in enumerate(inhabitants):
        model = PreferenceModel().fit(
            generate_decisions(person.persona, 120, seed=seed + index, noise=0.05)
        )
        assistant = IoTAssistant(
            person.user_id, bus, model=model, registry_endpoints=["irr-dbh"]
        )
        selection = assistant.configure_building_settings(now=0.0)
        choice = selection.get("location", "?")
        report.selections[choice] = report.selections.get(choice, 0) + 1
        if index % 3 == 0:
            food.subscribe(person.user_id)

    tick_spacing = 86400.0 / ticks_per_day
    for day in range(days):
        morning = day * 86400.0 + 9 * 3600.0
        try:
            meetings.book(
                organizer,
                [attendee],
                start=morning,
                end=morning + 3600.0,
                now=morning - 1800.0,
                title="standup day %d" % day,
            )
        except ServiceError:
            # Every room booked/occupied: acceptable on busy days.
            pass
        for tick in range(ticks_per_day):
            now = day * 86400.0 + tick * tick_spacing
            world.step(now, dt_s=tick_spacing)
            stats = tippers.tick(now, world)
            report.observations_sampled += stats.sampled
            report.observations_stored += stats.stored
            hour = (now % 86400.0) / 3600.0
            if 8.0 <= hour <= 18.0:
                report.hvac_actuations += tippers.run_comfort_control(now)
            if abs(hour - 12.0) < (tick_spacing / 3600.0) / 2.0:
                # Noon: services get busy.
                for person in inhabitants[: max(1, population // 5)]:
                    response = concierge.find_person(person.user_id, now)
                    report.queries_total += 1
                    if not response.allowed:
                        report.queries_denied += 1
                attempts = food.lunch_run(now)
                report.deliveries_attempted += len(attempts)
                report.deliveries_made += sum(1 for a in attempts if a.delivered)
        # Midnight retention sweep.
        report.observations_purged += tippers.run_retention((day + 1) * 86400.0)

    report.audit_summary = tippers.audit.summary()
    return report

# ======================================================================
# Capacity soak: stepped populations under a latency/memory ceiling
# ======================================================================

#: Default population steps: each an order of magnitude past the last.
SOAK_POPULATIONS: Tuple[int, ...] = (1000, 10000, 100000, 1000000)

_SOAK_BUILDING_ID = "bldg-soak"
_SOAK_TIPPERS = "tippers-soak"
_SOAK_REGISTRY = "irr-soak"


@dataclass
class SoakStepReport:
    """One population step of the capacity soak (deterministic fields).

    Every field is an exact count, a seeded-simulation product, or a
    rounded model output -- never a wall clock -- so two same-seed runs
    serialize byte-identically.
    """

    population: int
    active_principals: int
    phantom_per_call: int
    ticks: int
    checked: int = 0
    admitted: int = 0
    shed: int = 0
    brownouts: int = 0
    injected_arrivals: int = 0
    shed_by_class: Dict[str, int] = field(default_factory=dict)
    critical_shed: int = 0
    normal_attempted: int = 0
    normal_shed: int = 0
    deferrable_attempted: int = 0
    deferrable_shed: int = 0
    normal_shed_rate: float = 0.0
    deferrable_shed_rate: float = 0.0
    decisions: int = 0
    rules_p50: float = 0.0
    rules_p99: float = 0.0
    queue_depth_p99: float = 0.0
    modeled_p99_latency_us: float = 0.0
    wal_bytes: int = 0
    stored_observations: int = 0
    est_state_mb: float = 0.0
    sustainable: bool = True
    limits_exceeded: List[str] = field(default_factory=list)

    def line(self) -> str:
        status = "SUSTAINABLE" if self.sustainable else (
            "EXCEEDED[%s]" % ",".join(self.limits_exceeded)
        )
        return (
            "pop=%-8d active=%-4d phantom=%-5d shed=%d/%d "
            "normal_shed_rate=%.6f p99_latency_us=%.3f state_mb=%.3f %s"
            % (
                self.population, self.active_principals,
                self.phantom_per_call, self.shed, self.checked,
                self.normal_shed_rate, self.modeled_p99_latency_us,
                self.est_state_mb, status,
            )
        )


@dataclass
class CapacitySoakReport:
    """The full stepped-population soak: config, steps, and the answer."""

    seed: int
    ticks: int
    active_cap: int
    latency_ceiling_us: float
    memory_ceiling_mb: float
    max_normal_shed_rate: float
    queue_capacity: int
    drain_per_step: float
    populations: List[int] = field(default_factory=list)
    steps: List[SoakStepReport] = field(default_factory=list)
    max_sustainable_population: int = 0

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def summary_lines(self) -> List[str]:
        lines = [
            "capacity soak: seed=%d ticks=%d active_cap=%d"
            % (self.seed, self.ticks, self.active_cap),
            "ceilings: latency=%.3fus memory=%.3fMB normal_shed_rate<=%.6f"
            % (self.latency_ceiling_us, self.memory_ceiling_mb,
               self.max_normal_shed_rate),
            "admission: queue_capacity=%d drain_per_step=%g"
            % (self.queue_capacity, self.drain_per_step),
        ]
        lines.extend("  " + step.line() for step in self.steps)
        lines.append(
            "max sustainable population: %d" % self.max_sustainable_population
        )
        return lines

    def report_text(self) -> str:
        return "\n".join(self.summary_lines()) + "\n"


def _soak_call(bus, tally, target, method, payload, principal):
    """One admission-checked call; ``tally`` is ``[attempted, shed]``."""
    tally[0] += 1
    try:
        bus.call(target, method, payload, principal=principal)
    except AdmissionShedError:
        tally[1] += 1


def _depth_boundaries(queue_capacity: int) -> Tuple[float, ...]:
    bounds: List[float] = []
    bound = 1
    while bound < queue_capacity:
        bounds.append(float(bound))
        bound *= 2
    bounds.append(float(queue_capacity))
    return tuple(bounds)


def _run_soak_step(
    population: int,
    seed: int,
    ticks: int,
    active_cap: int,
    queue_capacity: int,
    drain_per_step: float,
) -> SoakStepReport:
    """One population step in an isolated registry/WAL/world."""
    registry = MetricsRegistry()
    active = min(population, active_cap)
    phantom = max(0, population // active - 1)
    step = SoakStepReport(
        population=population,
        active_principals=active,
        phantom_per_call=phantom,
        ticks=ticks,
    )
    depth_hist = Histogram(
        "soak_queue_depth", boundaries=_depth_boundaries(queue_capacity)
    )
    with scoped_observation_ids(), tempfile.TemporaryDirectory(
        prefix="repro-soak-"
    ) as wal_dir:
        engine = None
        try:
            from repro.storage.durable import StorageEngine

            engine = StorageEngine(wal_dir, metrics=registry)
            spatial = build_simple_building(
                _SOAK_BUILDING_ID, floors=2, rooms_per_floor=4
            )
            tippers = TIPPERS(
                spatial,
                _SOAK_BUILDING_ID,
                owner_name="Capacity Labs",
                enforce_capture=True,
                cache_decisions=False,
                metrics=registry,
                storage=engine,
            )
            rooms = sorted(
                s.space_id for s in spatial.spaces_of_type(SpaceType.ROOM)
            )
            for index, room in enumerate(rooms):
                tippers.deploy_sensor(
                    "wifi_access_point", "ap-%02d" % (index + 1), room
                )
                tippers.deploy_sensor(
                    "motion_sensor", "motion-%02d" % (index + 1), room
                )
            tippers.define_policy(
                catalog.policy_service_sharing(_SOAK_BUILDING_ID)
            )
            tippers.define_policy(
                catalog.policy_2_emergency_location(_SOAK_BUILDING_ID)
            )
            tippers.define_policy(catalog.policy_1_comfort(rooms))

            inhabitants = generate_inhabitants(spatial, active, seed=seed)
            for person in inhabitants:
                tippers.add_user(person.profile)
            world = BuildingWorld(spatial, inhabitants, seed=seed)

            controller = AdmissionController(
                seed=seed,
                queue_capacity=queue_capacity,
                high_watermark=0.5,
                shed_watermark=0.8,
                drain_per_step=drain_per_step,
                principal_capacity=64.0,
                principal_refill_per_step=8.0,
                metrics=registry,
            )
            if phantom:
                # The unsimulated cohort: every admission check on a
                # target also lands ``phantom`` phantom arrivals on its
                # queue, scaling backlog with population while the
                # active cohort stays CI-sized.
                controller.install_fault_plane(
                    lambda target, method, _n=phantom: _n
                )

            from repro.obs.tracing import NullTracer

            bus = MessageBus(
                metrics=registry, tracer=NullTracer(), admission=controller
            )
            bus.register(_SOAK_TIPPERS, tippers)
            irr = IoTResourceRegistry(_SOAK_REGISTRY, spatial)
            bus.register(_SOAK_REGISTRY, irr)
            irr.publish_resource(
                "soak-building-policies",
                _SOAK_BUILDING_ID,
                tippers.policy_manager.compile_policy_document(),
                settings=tippers.policy_manager.settings_space.to_document(),
            )

            critical = [0, 0]
            normal = [0, 0]
            deferrable = [0, 0]
            morning = 9 * 3600.0
            for tick in range(ticks):
                now = morning + tick * 60.0
                world.step(now)
                tippers.tick(now, world)
                # CRITICAL: the policy fetch a building must never drop.
                _soak_call(
                    bus, critical, _SOAK_TIPPERS, "get_policy_document",
                    {}, "iota-%s" % inhabitants[0].user_id,
                )
                depth_hist.observe(controller.queue(_SOAK_TIPPERS).depth)
                for person in inhabitants:
                    # NORMAL: one occupancy query per principal.
                    _soak_call(
                        bus, normal, _SOAK_TIPPERS, "locate_user",
                        {
                            "requester_id": "svc-occupancy",
                            "requester_kind": "building_service",
                            "subject_id": person.user_id,
                            "now": now,
                        },
                        "svc-occupancy",
                    )
                    depth_hist.observe(
                        controller.queue(_SOAK_TIPPERS).depth
                    )
                    # DEFERRABLE: one discovery sweep per principal.
                    location = (
                        world.location_of(person.user_id) or _SOAK_BUILDING_ID
                    )
                    _soak_call(
                        bus, deferrable, _SOAK_REGISTRY, "discover",
                        {"space_id": location},
                        "iota-%s" % person.user_id,
                    )
                    depth_hist.observe(
                        controller.queue(_SOAK_REGISTRY).depth
                    )

            ledger = controller.ledger
            step.checked = ledger.checked
            step.admitted = ledger.admitted
            step.shed = ledger.shed
            step.brownouts = ledger.brownouts
            step.injected_arrivals = ledger.injected_arrivals
            step.shed_by_class = dict(sorted(ledger.shed_by_class.items()))
            step.critical_shed = (
                ledger.shed_by_class.get(Priority.CRITICAL.value, 0)
                + critical[1]
            )
            step.normal_attempted, step.normal_shed = normal
            step.deferrable_attempted, step.deferrable_shed = deferrable
            step.normal_shed_rate = round(
                normal[1] / normal[0] if normal[0] else 0.0, 6
            )
            step.deferrable_shed_rate = round(
                deferrable[1] / deferrable[0] if deferrable[0] else 0.0, 6
            )

            rules = registry.merged_histogram("enforcement_rules_evaluated")
            if rules is not None and rules.count:
                step.decisions = rules.count
                step.rules_p50 = float(rules.percentile(50.0) or 0.0)
                step.rules_p99 = float(rules.percentile(99.0) or 0.0)
            if depth_hist.count:
                step.queue_depth_p99 = float(
                    depth_hist.percentile(99.0) or 0.0
                )
            step.wal_bytes = int(registry.total("storage_wal_bytes_total"))
            step.stored_observations = tippers.datastore.count()
        finally:
            if engine is not None:
                engine.close()
    return step


def run_capacity_soak(
    populations: Sequence[int] = SOAK_POPULATIONS,
    seed: int = 17,
    ticks: int = 6,
    active_cap: int = 200,
    latency_ceiling_us: float = 5000.0,
    memory_ceiling_mb: float = 2048.0,
    max_normal_shed_rate: float = 0.05,
    queue_capacity: int = 256,
    drain_per_step: float = 32.0,
    cost_table: Optional[CostTable] = None,
) -> CapacitySoakReport:
    """Step the population and find the max sustainable one.

    Each step runs a WAL-on, admission-on building: an active cohort of
    ``min(population, active_cap)`` simulated principals issues the full
    CRITICAL/NORMAL/DEFERRABLE call mix while the rest of the population
    arrives as phantom backlog through the admission controller's fault
    plane (``population // active - 1`` arrivals per check).  A step is
    *sustainable* when no CRITICAL call was shed, the NORMAL shed rate
    stays within ``max_normal_shed_rate``, and the modeled p99 latency
    and resident-state estimate stay under their ceilings.

    The latency and memory models are deterministic, priced by
    ``cost_table`` (default :data:`~repro.simulation.costmodel.
    DEFAULT_COST_TABLE`, whose per-component costs are derived from the
    committed perf trajectory): modeled p99 latency is one indexed
    decision plus marginal rule work plus queueing delay
    (``us_per_decision + rules_p99 * us_per_rule + queue_depth_p99 *
    us_per_queued_call``); the memory model charges
    ``principal_state_bytes`` per principal and extrapolates measured
    WAL/observation bytes by the phantom ratio.  Two same-seed runs
    produce byte-identical reports.
    """
    if not populations:
        raise ValueError("capacity soak needs at least one population step")
    if any(p < 1 for p in populations):
        raise ValueError("populations must be positive")
    if ticks < 1:
        raise ValueError("ticks must be >= 1")
    if active_cap < 1:
        raise ValueError("active_cap must be >= 1")
    report = CapacitySoakReport(
        seed=seed,
        ticks=ticks,
        active_cap=active_cap,
        latency_ceiling_us=latency_ceiling_us,
        memory_ceiling_mb=memory_ceiling_mb,
        max_normal_shed_rate=max_normal_shed_rate,
        queue_capacity=queue_capacity,
        drain_per_step=drain_per_step,
        populations=list(populations),
    )
    costs = cost_table if cost_table is not None else DEFAULT_COST_TABLE
    for population in populations:
        step = _run_soak_step(
            population, seed, ticks, active_cap, queue_capacity,
            drain_per_step,
        )
        step.modeled_p99_latency_us = costs.modeled_p99_latency_us(
            step.rules_p99, step.queue_depth_p99
        )
        ratio = max(1, population // step.active_principals)
        est_bytes = costs.modeled_state_bytes(
            population, step.wal_bytes, step.stored_observations, ratio
        )
        step.est_state_mb = round(est_bytes / (1024.0 * 1024.0), 3)
        limits: List[str] = []
        if step.critical_shed:
            limits.append("critical-shed")
        if step.normal_shed_rate > max_normal_shed_rate:
            limits.append("normal-shed-rate")
        if step.modeled_p99_latency_us > latency_ceiling_us:
            limits.append("latency-ceiling")
        if step.est_state_mb > memory_ceiling_mb:
            limits.append("memory-ceiling")
        step.limits_exceeded = limits
        step.sustainable = not limits
        report.steps.append(step)
        if step.sustainable and population > report.max_sustainable_population:
            report.max_sustainable_population = population
    return report
