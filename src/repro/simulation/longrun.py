"""Multi-day "week in the life" runs of the full framework.

Drives the complete stack -- capture, retention, comfort control,
services querying, IoTAs configuring settings per persona -- for
several simulated days and collects system-level metrics.  This is the
soak test behind the SCALE-4 benchmark and a convenient workload
generator for profiling.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.policy import catalog
from repro.core.reasoner.resolution import ResolutionStrategy
from repro.errors import ServiceError
from repro.iota.assistant import IoTAssistant
from repro.iota.personas import generate_decisions
from repro.iota.preference_model import PreferenceModel
from repro.irr.mud import auto_provision
from repro.irr.registry import IoTResourceRegistry
from repro.net.bus import MessageBus
from repro.services.concierge import SmartConcierge
from repro.services.food_delivery import FoodDeliveryService
from repro.services.meeting import SmartMeeting
from repro.simulation.dbh import BUILDING_ID, make_dbh_tippers
from repro.simulation.inhabitants import generate_inhabitants
from repro.simulation.mobility import BuildingWorld
from repro.spatial.model import SpaceType


@dataclass
class WeekReport:
    """Aggregate metrics of one multi-day run."""

    days: int
    population: int
    observations_sampled: int = 0
    observations_stored: int = 0
    observations_purged: int = 0
    queries_total: int = 0
    queries_denied: int = 0
    deliveries_attempted: int = 0
    deliveries_made: int = 0
    hvac_actuations: int = 0
    selections: Dict[str, int] = field(default_factory=dict)
    audit_summary: Dict[str, int] = field(default_factory=dict)

    @property
    def denial_rate(self) -> float:
        return self.queries_denied / self.queries_total if self.queries_total else 0.0


def run_week(
    days: int = 5,
    population: int = 30,
    ticks_per_day: int = 24,
    seed: int = 9,
    strategy: ResolutionStrategy = ResolutionStrategy.NEGOTIATE,
    cache_decisions: bool = True,
) -> WeekReport:
    """Run ``days`` simulated days and return the metric report.

    Each day: capture sweeps around the clock, comfort control at each
    sweep, a Concierge locate query and a lunch delivery run at noon,
    and a retention sweep at midnight.  On day 0 every inhabitant's
    IoTA trains on persona decisions and configures building settings.
    """
    tippers = make_dbh_tippers(strategy=strategy, cache_decisions=cache_decisions)
    rooms = [s.space_id for s in tippers.spatial.spaces_of_type(SpaceType.ROOM)]
    tippers.define_policy(catalog.policy_1_comfort(rooms))
    tippers.define_policy(catalog.policy_2_emergency_location(BUILDING_ID))
    tippers.define_policy(catalog.policy_service_sharing(BUILDING_ID))

    inhabitants = generate_inhabitants(tippers.spatial, population, seed=seed)
    for person in inhabitants:
        tippers.add_user(person.profile)
    world = BuildingWorld(tippers.spatial, inhabitants, seed=seed)

    bus = MessageBus()
    bus.register("tippers", tippers)
    registry = IoTResourceRegistry("irr-dbh", tippers.spatial)
    bus.register("irr-dbh", registry)
    auto_provision(registry, tippers)

    concierge = SmartConcierge(tippers)
    meetings = SmartMeeting(tippers)
    food = FoodDeliveryService(tippers)

    report = WeekReport(days=days, population=population)

    # A recurring morning meeting gives the meeting service (and its
    # occupancy queries) daily traffic.
    organizer = inhabitants[0].user_id
    attendee = inhabitants[1].user_id if population > 1 else organizer

    # Day 0: every inhabitant's assistant configures settings.
    for index, person in enumerate(inhabitants):
        model = PreferenceModel().fit(
            generate_decisions(person.persona, 120, seed=seed + index, noise=0.05)
        )
        assistant = IoTAssistant(
            person.user_id, bus, model=model, registry_endpoints=["irr-dbh"]
        )
        selection = assistant.configure_building_settings(now=0.0)
        choice = selection.get("location", "?")
        report.selections[choice] = report.selections.get(choice, 0) + 1
        if index % 3 == 0:
            food.subscribe(person.user_id)

    tick_spacing = 86400.0 / ticks_per_day
    for day in range(days):
        morning = day * 86400.0 + 9 * 3600.0
        try:
            meetings.book(
                organizer,
                [attendee],
                start=morning,
                end=morning + 3600.0,
                now=morning - 1800.0,
                title="standup day %d" % day,
            )
        except ServiceError:
            # Every room booked/occupied: acceptable on busy days.
            pass
        for tick in range(ticks_per_day):
            now = day * 86400.0 + tick * tick_spacing
            world.step(now, dt_s=tick_spacing)
            stats = tippers.tick(now, world)
            report.observations_sampled += stats.sampled
            report.observations_stored += stats.stored
            hour = (now % 86400.0) / 3600.0
            if 8.0 <= hour <= 18.0:
                report.hvac_actuations += tippers.run_comfort_control(now)
            if abs(hour - 12.0) < (tick_spacing / 3600.0) / 2.0:
                # Noon: services get busy.
                for person in inhabitants[: max(1, population // 5)]:
                    response = concierge.find_person(person.user_id, now)
                    report.queries_total += 1
                    if not response.allowed:
                        report.queries_denied += 1
                attempts = food.lunch_run(now)
                report.deliveries_attempted += len(attempts)
                report.deliveries_made += sum(1 for a in attempts if a.delivered)
        # Midnight retention sweep.
        report.observations_purged += tippers.run_retention((day + 1) * 86400.0)

    report.audit_summary = tippers.audit.summary()
    return report
