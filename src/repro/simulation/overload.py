"""The overload scenario: the pipeline under admission-controlled load.

A compact building runs capture ticks and a mixed bus workload -- the
three admission priority classes side by side -- while a fault plan
(normally ``rush-hour``) injects phantom arrival bursts into the
admission controller's topic queues and stalls one access point:

- CRITICAL: a policy fetch every tick, a mid-run preference submission,
  and a mid-run DSAR report + erasure.  These must **all** complete (or
  fail closed with an audited DENY); zero may be shed.
- NORMAL: one location query per inhabitant per tick.  Between the
  watermarks these are admitted *browned out* -- served at coarser
  granularity with an explicit degradation marker in the audit record.
- DEFERRABLE: IRR discovery sweeps.  These shed first; under the
  rush-hour plan their shed rate must be > 0.

The report carries only counts and booleans, so two runs with the same
seed and plan render byte-identical text (the ``overload`` CLI and CI
diff them), and :attr:`OverloadReport.violations` machine-checks the
acceptance invariants -- the run exits non-zero if overload protection
ever sheds a CRITICAL call or serves an unmarked degraded response.

Everything is locally scoped (own metrics registry, own bus, own
controller) so overload runs never leak state into the process-global
registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.policy import catalog
from repro.core.policy.serialization import preference_to_dict
from repro.errors import AdmissionShedError, NetworkError
from repro.faults import FaultInjector, build_plan
from repro.irr.registry import IoTResourceRegistry
from repro.net.admission import AdmissionController, Priority
from repro.net.bus import MessageBus
from repro.net.resilience import BreakerBoard, Deadline, RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.simulation.inhabitants import generate_inhabitants
from repro.simulation.mobility import BuildingWorld
from repro.spatial.model import SpaceType, build_simple_building
from repro.tippers.bms import TIPPERS
from repro.tippers.sensor_manager import SensorHealthSupervisor

BUILDING_ID = "overload"
REGISTRY_ENDPOINT = "irr-1"
TIPPERS_ENDPOINT = "tippers"

#: The degradation marker every browned-out decision carries (see
#: RequestManager.locate_user); the scenario greps responses and audit
#: records for it.
BROWNOUT_MARKER = "brownout degraded response"


@dataclass
class ClassOutcome:
    """What happened to one priority class's calls."""

    attempted: int = 0
    completed: int = 0
    shed: int = 0
    failed: int = 0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.attempted if self.attempted else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempted": self.attempted,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
        }


@dataclass
class OverloadReport:
    """Everything one overload run produced, rendered deterministically."""

    plan: str
    seed: int
    population: int
    ticks: int
    admission_enabled: bool = True
    critical: ClassOutcome = field(default_factory=ClassOutcome)
    normal: ClassOutcome = field(default_factory=ClassOutcome)
    deferrable: ClassOutcome = field(default_factory=ClassOutcome)
    browned_out_responses: int = 0
    brownout_marked_responses: int = 0
    brownout_marked_audit: int = 0
    injected_arrivals: int = 0
    ledger_checked: int = 0
    ledger_admitted: int = 0
    ledger_shed: int = 0
    ledger_shed_by_class: Dict[str, int] = field(default_factory=dict)
    ledger_brownouts: int = 0
    quarantine_events: int = 0
    quarantine_readmissions: int = 0
    quarantine_final: List[str] = field(default_factory=list)
    stored: int = 0
    stalled_samples: int = 0
    gated_samples: int = 0
    bus_attempts: int = 0
    bus_logical_calls: int = 0
    bus_retries: int = 0
    bus_shed: int = 0
    final_loads: Dict[str, str] = field(default_factory=dict)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    trace_text: str = ""
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "population": self.population,
            "ticks": self.ticks,
            "admission_enabled": self.admission_enabled,
            "classes": {
                "critical": self.critical.to_dict(),
                "normal": self.normal.to_dict(),
                "deferrable": self.deferrable.to_dict(),
            },
            "brownout": {
                "responses": self.browned_out_responses,
                "marked_responses": self.brownout_marked_responses,
                "marked_audit_records": self.brownout_marked_audit,
            },
            "ledger": {
                "checked": self.ledger_checked,
                "admitted": self.ledger_admitted,
                "shed": self.ledger_shed,
                "shed_by_class": dict(self.ledger_shed_by_class),
                "brownouts": self.ledger_brownouts,
                "injected_arrivals": self.injected_arrivals,
            },
            "quarantine": {
                "events": self.quarantine_events,
                "readmissions": self.quarantine_readmissions,
                "final": list(self.quarantine_final),
            },
            "capture": {
                "stored": self.stored,
                "stalled_samples": self.stalled_samples,
                "gated_samples": self.gated_samples,
            },
            "bus": {
                "attempts": self.bus_attempts,
                "logical_calls": self.bus_logical_calls,
                "retries": self.bus_retries,
                "shed": self.bus_shed,
            },
            "final_loads": dict(self.final_loads),
            "fault_counts": dict(self.fault_counts),
            "violations": list(self.violations),
            "ok": self.ok,
        }

    def summary_lines(self) -> List[str]:
        lines = [
            "overload run: plan=%s seed=%d population=%d ticks=%d admission=%s"
            % (self.plan, self.seed, self.population, self.ticks,
               "on" if self.admission_enabled else "off"),
            "critical:   attempted=%d completed=%d shed=%d failed=%d"
            % (self.critical.attempted, self.critical.completed,
               self.critical.shed, self.critical.failed),
            "normal:     attempted=%d completed=%d shed=%d failed=%d"
            % (self.normal.attempted, self.normal.completed,
               self.normal.shed, self.normal.failed),
            "deferrable: attempted=%d completed=%d shed=%d failed=%d "
            "(shed_rate=%.3f)"
            % (self.deferrable.attempted, self.deferrable.completed,
               self.deferrable.shed, self.deferrable.failed,
               self.deferrable.shed_rate),
            "brownout: responses=%d marked_responses=%d marked_audit=%d"
            % (self.browned_out_responses, self.brownout_marked_responses,
               self.brownout_marked_audit),
            "admission ledger: checked=%d admitted=%d shed=%d brownouts=%d "
            "injected_arrivals=%d"
            % (self.ledger_checked, self.ledger_admitted, self.ledger_shed,
               self.ledger_brownouts, self.injected_arrivals),
            "quarantine: events=%d readmissions=%d final=[%s]"
            % (self.quarantine_events, self.quarantine_readmissions,
               ", ".join(self.quarantine_final)),
            "capture: stored=%d stalled_samples=%d gated_samples=%d"
            % (self.stored, self.stalled_samples, self.gated_samples),
            "bus: attempts=%d logical=%d retries=%d shed=%d"
            % (self.bus_attempts, self.bus_logical_calls, self.bus_retries,
               self.bus_shed),
        ]
        if self.final_loads:
            lines.append(
                "final load levels: "
                + ", ".join(
                    "%s=%s" % (target, level)
                    for target, level in sorted(self.final_loads.items())
                )
            )
        fired = ", ".join(
            "%s=%d" % (kind, count)
            for kind, count in sorted(self.fault_counts.items())
        )
        lines.append("faults fired: %s" % (fired or "none"))
        for violation in self.violations:
            lines.append("VIOLATION: %s" % violation)
        lines.append("result: %s" % ("OK" if self.ok else "FAILED"))
        return lines

    @property
    def report_text(self) -> str:
        return "".join(line + "\n" for line in self.summary_lines())


def _call(
    bus: MessageBus,
    outcome: ClassOutcome,
    target: str,
    method: str,
    payload: Dict[str, Any],
    principal: str,
    retry_policy: RetryPolicy,
) -> Optional[Dict[str, Any]]:
    """One accounted workload call; None when shed or failed."""
    outcome.attempted += 1
    try:
        response = bus.call(
            target,
            method,
            payload,
            retry_policy=retry_policy,
            deadline=Deadline(10.0),
            principal=principal,
        )
    except AdmissionShedError:
        outcome.shed += 1
        return None
    except NetworkError:
        outcome.failed += 1
        return None
    outcome.completed += 1
    return response


def run_overload_scenario(
    plan_name: str = "rush-hour",
    seed: int = 11,
    population: int = 8,
    ticks: int = 12,
    admission: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> OverloadReport:
    """Run the mixed-class workload under ``plan_name`` and report.

    ``admission=False`` runs the identical workload with no admission
    controller on the bus -- the ablation the overload benchmark uses to
    show what the protection buys.  ``metrics`` lets a caller (the bench
    trajectory) keep the run's registry for latency export; by default
    the run stays locally scoped and leaks nothing.
    """
    report = OverloadReport(
        plan=plan_name,
        seed=seed,
        population=population,
        ticks=ticks,
        admission_enabled=admission,
    )
    metrics = metrics if metrics is not None else MetricsRegistry()
    tracer = Tracer()
    spatial = build_simple_building(BUILDING_ID, floors=2, rooms_per_floor=6)
    supervisor = SensorHealthSupervisor(
        miss_threshold=3, probe_rate=0.5, seed=seed, metrics=metrics
    )
    tippers = TIPPERS(
        spatial,
        BUILDING_ID,
        owner_name="Overload Labs",
        enforce_capture=True,
        cache_decisions=False,
        metrics=metrics,
        health_supervisor=supervisor,
    )
    rooms = sorted(s.space_id for s in spatial.spaces_of_type(SpaceType.ROOM))
    for index, room in enumerate(rooms):
        tippers.deploy_sensor("wifi_access_point", "ap-%02d" % (index + 1), room)
        tippers.deploy_sensor("motion_sensor", "motion-%02d" % (index + 1), room)
    tippers.define_policy(catalog.policy_service_sharing(BUILDING_ID))
    tippers.define_policy(catalog.policy_2_emergency_location(BUILDING_ID))
    tippers.define_policy(catalog.policy_1_comfort(rooms))

    inhabitants = generate_inhabitants(spatial, population, seed=seed)
    for inhabitant in inhabitants:
        tippers.add_user(inhabitant.profile)
    world = BuildingWorld(spatial, inhabitants, seed=seed)

    controller: Optional[AdmissionController] = None
    if admission:
        controller = AdmissionController(
            seed=seed,
            queue_capacity=32,
            high_watermark=0.5,
            shed_watermark=0.8,
            drain_per_step=1.0,
            principal_capacity=16.0,
            principal_refill_per_step=1.0,
            metrics=metrics,
        )
    bus = MessageBus(
        metrics=metrics,
        tracer=tracer,
        breakers=BreakerBoard(),
        admission=controller,
    )
    bus.register(TIPPERS_ENDPOINT, tippers)
    registry = IoTResourceRegistry(REGISTRY_ENDPOINT, spatial)
    bus.register(REGISTRY_ENDPOINT, registry)
    registry.publish_resource(
        "overload-building-policies",
        BUILDING_ID,
        tippers.policy_manager.compile_policy_document(),
        settings=tippers.policy_manager.settings_space.to_document(),
    )

    plan = build_plan(plan_name, seed)
    injector = FaultInjector(plan)
    injector.install_bus(bus)
    injector.install_datastore(tippers.datastore)
    injector.install_sensor_manager(tippers.sensor_manager)
    if controller is not None:
        injector.install_admission(controller)

    retry_policy = RetryPolicy(seed=seed)
    noon = 8 * 3600.0  # the morning rush
    erase_tick = max(1, ticks // 2)
    for tick in range(ticks):
        now = noon + tick * 60.0
        world.step(now)
        tippers.tick(now, world)

        # CRITICAL: the enforcement pipeline keeps fetching policy.
        _call(
            bus, report.critical, TIPPERS_ENDPOINT, "get_policy_document",
            {}, "iota-%s" % inhabitants[0].user_id, retry_policy,
        )

        # DEFERRABLE: one discovery sweep per inhabitant per tick.
        for inhabitant in inhabitants:
            location = world.location_of(inhabitant.user_id) or BUILDING_ID
            _call(
                bus, report.deferrable, REGISTRY_ENDPOINT, "discover",
                {"space_id": location},
                "iota-%s" % inhabitant.user_id, retry_policy,
            )

        # NORMAL: one location query per inhabitant.
        for inhabitant in inhabitants:
            response = _call(
                bus, report.normal, TIPPERS_ENDPOINT, "locate_user",
                {
                    "requester_id": "svc-occupancy",
                    "requester_kind": "building_service",
                    "subject_id": inhabitant.user_id,
                    "now": now,
                },
                "svc-occupancy", retry_policy,
            )
            if response is not None and any(
                BROWNOUT_MARKER in reason for reason in response["reasons"]
            ):
                report.brownout_marked_responses += 1

        # CRITICAL mid-run: a preference submission and a DSAR cycle.
        if tick == erase_tick:
            subject = inhabitants[-1]
            preference = catalog.preference_2_no_location(subject.user_id)
            _call(
                bus, report.critical, TIPPERS_ENDPOINT, "submit_preference",
                {"preference": preference_to_dict(preference)},
                "iota-%s" % subject.user_id, retry_policy,
            )
            _call(
                bus, report.critical, TIPPERS_ENDPOINT, "dsar_report",
                {"user_id": subject.user_id, "now": now},
                "iota-%s" % subject.user_id, retry_policy,
            )
            _call(
                bus, report.critical, TIPPERS_ENDPOINT, "dsar_erase",
                {"user_id": subject.user_id, "now": now},
                "iota-%s" % subject.user_id, retry_policy,
            )

    injector.uninstall()

    # ------------------------------------------------------------------
    # Harvest
    # ------------------------------------------------------------------
    report.brownout_marked_audit = sum(
        1
        for record in tippers.audit
        if any(BROWNOUT_MARKER in reason for reason in record.reasons)
    )
    report.stored = tippers.datastore.count()
    report.stalled_samples = sum(
        subsystem.stalled_samples
        for subsystem in tippers.sensor_manager.subsystems()
    )
    report.gated_samples = sum(
        subsystem.gated_samples
        for subsystem in tippers.sensor_manager.subsystems()
    )
    report.quarantine_events = int(metrics.total("quarantine_events_total"))
    report.quarantine_readmissions = int(
        metrics.total("quarantine_readmissions_total")
    )
    report.quarantine_final = supervisor.quarantined()
    report.fault_counts = injector.trace.counts()
    report.trace_text = injector.trace.to_text()
    stats = bus.stats
    report.bus_attempts = stats.calls
    report.bus_logical_calls = stats.logical_calls
    report.bus_retries = stats.retries
    report.bus_shed = stats.shed
    if controller is not None:
        ledger = controller.ledger
        report.ledger_checked = ledger.checked
        report.ledger_admitted = ledger.admitted
        report.ledger_shed = ledger.shed
        report.ledger_shed_by_class = dict(sorted(ledger.shed_by_class.items()))
        report.ledger_brownouts = ledger.brownouts
        report.injected_arrivals = ledger.injected_arrivals
        report.browned_out_responses = ledger.brownouts
        report.final_loads = controller.levels()

    _check_invariants(report, controller)
    return report


def _check_invariants(
    report: OverloadReport, controller: Optional[AdmissionController]
) -> None:
    """The acceptance invariants, machine-checked into ``violations``."""
    if report.bus_attempts != report.bus_logical_calls + report.bus_retries:
        report.violations.append(
            "bus accounting: attempts (%d) != logical (%d) + retries (%d)"
            % (report.bus_attempts, report.bus_logical_calls, report.bus_retries)
        )
    if controller is None:
        return
    critical_shed = report.ledger_shed_by_class.get(
        Priority.CRITICAL.value, 0
    )
    if critical_shed or report.critical.shed:
        report.violations.append(
            "CRITICAL calls were shed (ledger=%d observed=%d)"
            % (critical_shed, report.critical.shed)
        )
    if report.critical.completed != report.critical.attempted:
        report.violations.append(
            "CRITICAL calls failed: %d of %d did not complete"
            % (
                report.critical.attempted - report.critical.completed,
                report.critical.attempted,
            )
        )
    if report.deferrable.shed == 0:
        report.violations.append("DEFERRABLE shed rate is 0 under overload")
    if report.ledger_checked != report.ledger_admitted + report.ledger_shed:
        report.violations.append(
            "admission ledger: checked (%d) != admitted (%d) + shed (%d)"
            % (report.ledger_checked, report.ledger_admitted, report.ledger_shed)
        )
    if report.bus_shed != report.ledger_shed:
        report.violations.append(
            "bus shed counter (%d) disagrees with admission ledger (%d)"
            % (report.bus_shed, report.ledger_shed)
        )
    if report.brownout_marked_responses != report.ledger_brownouts:
        report.violations.append(
            "brownout markers: %d marked responses for %d browned-out "
            "admissions" % (
                report.brownout_marked_responses, report.ledger_brownouts
            )
        )
    if report.brownout_marked_audit < report.brownout_marked_responses:
        report.violations.append(
            "audit trail: %d marked records for %d marked responses"
            % (report.brownout_marked_audit, report.brownout_marked_responses)
        )
