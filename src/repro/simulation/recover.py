"""The crash-recovery scenario: crash mid-run, recover, check invariants.

Phase 1 runs a compact storage-backed building (capture ticks, location
queries, a preference submission, a DSAR erasure, one mid-run
compaction) under a WAL fault plan until an injected
:class:`~repro.errors.SimulatedCrash` kills the "process".  Phase 2
rebuilds a fresh TIPPERS over the same directory, recovers, and checks
the recovery invariants:

- **audit prefix** -- the recovered audit log is an exact prefix of the
  sequence of audit records submitted before the crash (a tap on the
  storage engine records them *before* each WAL write, so a torn final
  append shows up as a shorter-by-one prefix, never as divergence);
- **erasure durability** -- once a DSAR erasure was acknowledged, no
  recovered observation of the erased subject predates it;
- **retention** -- observations that expired during the downtime are
  gone before the first post-recovery query.

The scenario's :attr:`RecoveryScenarioReport.report_text` contains only
counts, LSNs, and segment names -- no paths, byte offsets, or
observation ids -- so two runs with the same seed render byte-identical
text (the ``chaos --recover`` CLI and CI diff them).
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.policy import catalog
from repro.core.policy.base import RequesterKind
from repro.errors import NetworkError, PolicyError, ServiceError, SimulatedCrash
from repro.faults import FaultInjector, build_plan
from repro.obs.metrics import MetricsRegistry
from repro.simulation.inhabitants import generate_inhabitants
from repro.simulation.mobility import BuildingWorld
from repro.spatial.model import SpaceType, build_simple_building
from repro.storage.durable import StorageEngine
from repro.storage.recovery import RecoveryReport
from repro.tippers.bms import TIPPERS
from repro.tippers.dsar import erase_subject

BUILDING_ID = "durable"

#: The building sits dark for just over a week before it is recovered,
#: so the comfort policy's P7D retention bites during recovery.
DEFAULT_DOWNTIME_S = 8 * 86400.0


def _canonical(data: Dict[str, Any]) -> str:
    return json.dumps(data, separators=(",", ":"), sort_keys=True)


@dataclass
class RecoveryScenarioReport:
    """One crash+recover cycle, rendered deterministically."""

    plan: str
    seed: int
    population: int
    ticks: int
    crashed: bool = False
    crash_step: int = -1
    crash_detail: str = ""
    ticks_completed: int = 0
    submitted_audit: int = 0
    pre_crash_stored: int = 0
    preference_submitted: bool = False
    erase_done: bool = False
    erased_user: str = ""
    recovery: Optional[RecoveryReport] = None
    audit_prefix_ok: bool = False
    erasure_ok: bool = False
    retention_ok: bool = False
    violations: List[str] = field(default_factory=list)
    fault_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "population": self.population,
            "ticks": self.ticks,
            "crashed": self.crashed,
            "crash_step": self.crash_step,
            "crash_detail": self.crash_detail,
            "ticks_completed": self.ticks_completed,
            "submitted_audit": self.submitted_audit,
            "pre_crash_stored": self.pre_crash_stored,
            "preference_submitted": self.preference_submitted,
            "erase_done": self.erase_done,
            "erased_user": self.erased_user,
            "recovery": None if self.recovery is None else self.recovery.to_dict(),
            "invariants": {
                "audit_prefix": self.audit_prefix_ok,
                "erasure": self.erasure_ok,
                "retention": self.retention_ok,
            },
            "violations": list(self.violations),
            "fault_counts": dict(self.fault_counts),
            "ok": self.ok,
        }

    def summary_lines(self) -> List[str]:
        lines = [
            "recovery scenario: plan=%s seed=%d population=%d ticks=%d"
            % (self.plan, self.seed, self.population, self.ticks),
            "crash: crashed=%s step=%d detail=%s ticks_completed=%d"
            % (self.crashed, self.crash_step, self.crash_detail or "none",
               self.ticks_completed),
            "pre-crash: stored=%d audit_submitted=%d preference=%s erase=%s"
            % (self.pre_crash_stored, self.submitted_audit,
               self.preference_submitted, self.erase_done),
        ]
        if self.recovery is not None:
            lines.extend(self.recovery.lines())
        lines.append(
            "invariants: audit_prefix=%s erasure=%s retention=%s"
            % (self.audit_prefix_ok, self.erasure_ok, self.retention_ok)
        )
        for violation in self.violations:
            lines.append("VIOLATION: %s" % violation)
        fired = ", ".join(
            "%s=%d" % (kind, count)
            for kind, count in sorted(self.fault_counts.items())
        )
        lines.append("faults fired: %s" % (fired or "none"))
        lines.append("result: %s" % ("OK" if self.ok else "FAILED"))
        return lines

    @property
    def report_text(self) -> str:
        return "".join(line + "\n" for line in self.summary_lines())


def _build_tippers(
    storage: StorageEngine, metrics: MetricsRegistry, population: int, seed: int
):
    spatial = build_simple_building(BUILDING_ID, floors=2, rooms_per_floor=6)
    tippers = TIPPERS(
        spatial,
        BUILDING_ID,
        owner_name="Durable Labs",
        enforce_capture=True,
        cache_decisions=False,
        metrics=metrics,
        storage=storage,
    )
    rooms = sorted(s.space_id for s in spatial.spaces_of_type(SpaceType.ROOM))
    for index, room in enumerate(rooms):
        tippers.deploy_sensor("wifi_access_point", "ap-%02d" % (index + 1), room)
        tippers.deploy_sensor("motion_sensor", "motion-%02d" % (index + 1), room)
    tippers.define_policy(catalog.policy_service_sharing(BUILDING_ID))
    tippers.define_policy(catalog.policy_2_emergency_location(BUILDING_ID))
    tippers.define_policy(catalog.policy_1_comfort(rooms))
    inhabitants = generate_inhabitants(spatial, population, seed=seed)
    for inhabitant in inhabitants:
        tippers.add_user(inhabitant.profile)
    return tippers, inhabitants


def run_recovery_scenario(
    plan_name: str = "torn-storage",
    seed: int = 11,
    population: int = 8,
    ticks: int = 6,
    directory: Optional[str] = None,
    segment_bytes: int = 8 * 1024,
    downtime_s: float = DEFAULT_DOWNTIME_S,
) -> RecoveryScenarioReport:
    """Crash a storage-backed run, recover it, and check the invariants.

    When ``directory`` is omitted a temporary one is created and removed
    afterwards; pass a directory to keep the files for inspection
    (``python -m repro recover --dir`` can then replay them).
    """
    report = RecoveryScenarioReport(
        plan=plan_name, seed=seed, population=population, ticks=ticks
    )
    owns_directory = directory is None
    if directory is None:
        directory = tempfile.mkdtemp(prefix="repro-recover-")
    try:
        _run_phases(report, plan_name, seed, population, ticks,
                    directory, segment_bytes, downtime_s)
    finally:
        if owns_directory:
            shutil.rmtree(directory, ignore_errors=True)
    return report


def _run_phases(
    report: RecoveryScenarioReport,
    plan_name: str,
    seed: int,
    population: int,
    ticks: int,
    directory: str,
    segment_bytes: int,
    downtime_s: float,
) -> None:
    # ------------------------------------------------------------------
    # Phase 1: run until the injected crash
    # ------------------------------------------------------------------
    metrics = MetricsRegistry()
    storage = StorageEngine(directory, segment_bytes=segment_bytes, metrics=metrics)
    tippers, inhabitants = _build_tippers(storage, metrics, population, seed)
    world = BuildingWorld(tippers.spatial, inhabitants, seed=seed)

    submitted_audit: List[str] = []

    def audit_tap(record_type: str, data: Dict[str, Any]) -> None:
        if record_type == "audit":
            submitted_audit.append(_canonical(data))

    storage.taps.append(audit_tap)

    plan = build_plan(plan_name, seed)
    injector = FaultInjector(plan)
    injector.install_datastore(tippers.datastore)
    injector.install_sensor_manager(tippers.sensor_manager)
    injector.install_policy_store(tippers.store)
    injector.install_storage_engine(storage)

    erased_user = inhabitants[1].user_id
    report.erased_user = erased_user
    noon = 12 * 3600.0
    now = noon
    erase_now = -1.0
    try:
        for tick in range(ticks):
            now = noon + tick * 60.0
            world.step(now)
            tippers.tick(now, world)
            for inhabitant in inhabitants:
                try:
                    tippers.locate_user(
                        "svc-recover", RequesterKind.BUILDING_SERVICE,
                        inhabitant.user_id, now,
                    )
                except (NetworkError, ServiceError, PolicyError):
                    pass
            if tick == 0:
                # Everything below lands before the shipped WAL fault
                # windows open (start >= 200), so the crash hits plain
                # capture later and these records must survive it.
                tippers.submit_preference(
                    catalog.preference_2_no_location(inhabitants[0].user_id)
                )
                report.preference_submitted = True
                # Fold the first tick into a snapshot so recovery
                # exercises the snapshot-then-log path, not just the log.
                storage.compact()
                # Erase *after* compaction: the erase record stays in
                # the WAL, so recovery must replay it and drop the
                # subject's snapshotted observations.
                erase_now = now + 0.5
                erase_subject(tippers, erased_user, erase_now)
                report.erase_done = True
            report.ticks_completed = tick + 1
    except SimulatedCrash as crash:
        report.crashed = True
        report.crash_step = injector.step - 1
        report.crash_detail = crash.__class__.__name__
    finally:
        injector.uninstall()
        storage.close()
    report.submitted_audit = len(submitted_audit)
    report.pre_crash_stored = tippers.datastore.count()
    report.fault_counts = injector.trace.counts()

    # ------------------------------------------------------------------
    # Phase 2: a fresh process over the same directory
    # ------------------------------------------------------------------
    from repro.tippers.persistence import audit_record_to_dict

    metrics2 = MetricsRegistry()
    storage2 = StorageEngine(directory, segment_bytes=segment_bytes, metrics=metrics2)
    recovered, _ = _build_tippers(storage2, metrics2, population, seed)
    recover_now = now + downtime_s
    recovery = recovered.recover(recover_now)
    report.recovery = recovery

    # Invariant 1: recovered audit is an exact prefix of what was
    # submitted (same records, same order, nothing extra or rewritten).
    recovered_lines = [
        _canonical(audit_record_to_dict(record)) for record in recovered.audit
    ]
    report.audit_prefix_ok = (
        len(recovered_lines) <= len(submitted_audit)
        and recovered_lines == submitted_audit[: len(recovered_lines)]
    )
    if not report.audit_prefix_ok:
        report.violations.append(
            "recovered audit (%d records) is not a prefix of the submitted "
            "sequence (%d records)" % (len(recovered_lines), len(submitted_audit))
        )

    # Invariant 2: an acknowledged erasure survives the crash -- no
    # recovered observation of the erased subject predates it.
    # (Observations captured after the erasure are legitimately new.)
    resurrected = 0
    if report.erase_done:
        resurrected = sum(
            1
            for obs in recovered.datastore.query(subject_id=erased_user)
            if obs.timestamp <= erase_now
        )
    report.erasure_ok = resurrected == 0
    if not report.erasure_ok:
        report.violations.append(
            "recovery resurrected %d erased observation(s) of the DSAR subject"
            % resurrected
        )

    # Invariant 3: nothing older than its stream's retention survived
    # the downtime.
    stale = 0
    for sensor_type, retention in sorted(
        recovered.policy_manager.retention_by_sensor_type().items()
    ):
        cutoff = recover_now - retention
        stale += sum(
            1
            for obs in recovered.datastore.query(sensor_type=sensor_type)
            if obs.timestamp < cutoff
        )
    report.retention_ok = stale == 0
    if not report.retention_ok:
        report.violations.append(
            "%d observation(s) outlived their retention through recovery" % stale
        )
    storage2.close()
