"""Inhabitants: profiles, personas, and daily schedules.

The role mix and schedules encode the heuristics of Section II-A
("non-faculty staff arrive at 7 am and leave before 5 pm, graduate
students generally leave the building late..."), which both drives the
mobility model and makes the role-inference attack reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.iota.personas import PERSONAS, Persona
from repro.spatial.model import SpaceType, SpatialModel
from repro.users.profile import UserProfile


@dataclass(frozen=True)
class Schedule:
    """A daily rhythm: when the person is in the building."""

    arrival_hour: float
    departure_hour: float
    lunch_hour: float = 12.0
    lunch_duration_h: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 <= self.arrival_hour < self.departure_hour <= 24.0:
            raise ReproError("schedule hours must satisfy 0 <= arrival < departure <= 24")

    def in_building(self, hour: float) -> bool:
        return self.arrival_hour <= hour < self.departure_hour

    def at_lunch(self, hour: float) -> bool:
        return self.lunch_hour <= hour < self.lunch_hour + self.lunch_duration_h


@dataclass(frozen=True)
class Inhabitant:
    """A simulated person: building profile + privacy persona + rhythm."""

    profile: UserProfile
    persona: Persona
    schedule: Schedule

    @property
    def user_id(self) -> str:
        return self.profile.user_id


#: Role -> (group name, schedule sampler parameters).  Arrival/departure
#: are sampled uniformly from these windows.
_ROLE_SCHEDULES: Dict[str, Tuple[Tuple[float, float], Tuple[float, float]]] = {
    "staff": ((6.75, 7.5), (16.0, 17.0)),
    "faculty": ((8.5, 10.0), (17.0, 19.0)),
    "grad-student": ((10.0, 12.0), (19.5, 23.0)),
    "undergrad": ((9.0, 11.0), (15.0, 18.0)),
}

_ROLE_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("faculty", 0.2),
    ("staff", 0.15),
    ("grad-student", 0.4),
    ("undergrad", 0.25),
)

_PERSONA_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    # Westin's segmentation: roughly 25/55/20.
    ("unconcerned", 0.25),
    ("pragmatist", 0.55),
    ("fundamentalist", 0.20),
)


def _weighted_choice(rng: random.Random, weights: Tuple[Tuple[str, float], ...]) -> str:
    total = sum(w for _, w in weights)
    mark = rng.random() * total
    cumulative = 0.0
    for name, weight in weights:
        cumulative += weight
        if mark < cumulative:
            return name
    return weights[-1][0]


def _building_byte(building_id: str) -> int:
    """A stable per-building MAC byte, so campuses never collide."""
    import hashlib

    return hashlib.sha256(building_id.encode("utf-8")).digest()[0]


def generate_inhabitants(
    spatial: SpatialModel,
    count: int,
    seed: int = 0,
    building_id: Optional[str] = None,
    user_ids: Optional[List[str]] = None,
) -> List[Inhabitant]:
    """``count`` reproducible inhabitants with offices in the building.

    Faculty, staff, and grad students get assigned offices (distinct
    rooms, round-robin); undergrads get none.  Every inhabitant carries
    one registered device.

    ``building_id`` namespaces the generated identities: user ids are
    prefixed with the building and device MACs carry a per-building
    byte, so a multi-building campus can generate populations per shard
    without id or MAC collisions.  ``user_ids`` (length ``count``)
    overrides the generated ids entirely -- a federation assigns
    principals to home shards by hash-ring position first and generates
    each shard's residents for exactly those ids.
    """
    if count < 0:
        raise ReproError("count must be non-negative")
    if user_ids is not None and len(user_ids) != count:
        raise ReproError("user_ids must have exactly count entries")
    rng = random.Random(seed)
    rooms = sorted(s.space_id for s in spatial.spaces_of_type(SpaceType.ROOM))
    if not rooms:
        raise ReproError("spatial model has no rooms")
    inhabitants: List[Inhabitant] = []
    office_cursor = 0
    for index in range(count):
        role = _weighted_choice(rng, _ROLE_WEIGHTS)
        persona_name = _weighted_choice(rng, _PERSONA_WEIGHTS)
        arrival_window, departure_window = _ROLE_SCHEDULES[role]
        schedule = Schedule(
            arrival_hour=rng.uniform(*arrival_window),
            departure_hour=rng.uniform(*departure_window),
            lunch_hour=rng.uniform(11.5, 12.5),
        )
        office: Optional[str] = None
        if role != "undergrad":
            office = rooms[office_cursor % len(rooms)]
            office_cursor += 1
        if user_ids is not None:
            user_id = user_ids[index]
        elif building_id is not None:
            user_id = "%s-user-%04d" % (building_id, index + 1)
        else:
            user_id = "user-%04d" % (index + 1)
        mac_site = 0 if building_id is None else _building_byte(building_id)
        profile = UserProfile(
            user_id=user_id,
            name="Inhabitant %d" % (index + 1)
            if building_id is None
            else "Inhabitant %d (%s)" % (index + 1, building_id),
            groups=frozenset({role}),
            department="ics",
            affiliation="uci",
            office_id=office,
            device_macs=(
                "02:00:00:%02x:%02x:%02x"
                % (mac_site, index // 256, index % 256),
            ),
            has_iota=rng.random() < 0.9,
        )
        inhabitants.append(
            Inhabitant(
                profile=profile,
                persona=PERSONAS[persona_name],
                schedule=schedule,
            )
        )
    return inhabitants
