"""The federation scenario: a sharded campus under storm conditions.

A campus of independently-WAL'd TIPPERS shards (one per building, see
:mod:`repro.federation`) runs capture ticks and a mixed-priority bus
workload while inhabitants roam between buildings and the
``campus-storm`` fault plan injects overload bursts, a stalled access
point, and a mid-append crash that takes one shard down hard:

- **Roaming**: every boundary crossing the world emits triggers an IoTA
  handoff -- the assistant re-discovers the visited building's IRR,
  registers its user as a roaming principal (CRITICAL; never shed), and
  re-pushes the preferences the visited shard has not yet acknowledged.
  Every enforcement decision a visited shard makes about a roamer must
  carry a ``roaming:<home>`` marker in both the response and the audit
  record.
- **Crash + recovery**: the crashed shard goes dark (routed calls fail,
  nothing queues), then recovers from its own WAL -- the user directory
  re-seeded from campus metadata, observations/audit/preferences
  replayed -- and rejoins the bus; roamers present in the building are
  handed off again.
- **Campus DSAR**: mid-run, one well-travelled subject exercises the
  cross-shard data-subject pipeline -- an access report fanned out to
  every building that ever observed them, then an erasure with
  per-shard WAL-durable compaction.  At scenario end every shard's
  directory is re-opened with the *standalone* recovery reader and
  swept: no observation of the erased subject from before the erasure
  may exist anywhere on the campus.

The report carries only counts and booleans, so two runs with the same
seed render byte-identical text (the ``federate`` CLI and CI diff
them), and :attr:`FederateReport.violations` machine-checks the
acceptance invariants.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.core.policy import catalog
from repro.errors import (
    AdmissionShedError,
    NetworkError,
    SimulatedCrash,
)
from repro.faults import FaultInjector, build_plan
from repro.federation import Campus, campus_access_report, campus_erase_subject
from repro.net.admission import AdmissionController, Priority
from repro.net.bus import RpcError
from repro.net.resilience import Deadline, RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.simulation.inhabitants import Inhabitant, generate_inhabitants
from repro.simulation.mobility import BuildingWorld, CampusWorld
from repro.simulation.overload import ClassOutcome
from repro.storage.recovery import RecoveryReport, recover
from repro.users.profile import profile_to_dict

DEFAULT_BUILDINGS = ("bldg-a", "bldg-b", "bldg-c", "bldg-d")

#: The marker prefix every visited-shard decision about a roamer
#: carries (see RequestManager._roaming_notes).
ROAMING_MARKER_PREFIX = "roaming:"


@dataclass
class FederateReport:
    """Everything one campus run produced, rendered deterministically."""

    plan: str
    seed: int
    population: int
    ticks: int
    buildings: List[str] = field(default_factory=list)
    residents_by_building: Dict[str, int] = field(default_factory=dict)
    roamers: int = 0
    # Roaming handoffs
    handoffs: int = 0
    returns: int = 0
    reentries: int = 0
    handoff_failures: int = 0
    preferences_repushed: int = 0
    preferences_pending: int = 0
    # Workload classes (shared admission layer)
    critical: ClassOutcome = field(default_factory=ClassOutcome)
    normal: ClassOutcome = field(default_factory=ClassOutcome)
    deferrable: ClassOutcome = field(default_factory=ClassOutcome)
    critical_dark: int = 0
    # Roaming markers
    visited_shard_responses: int = 0
    roaming_marked_responses: int = 0
    roaming_marked_audit: int = 0
    # Crash + recovery
    crashed: bool = False
    crash_building: str = ""
    crash_step: int = -1
    crash_tick: int = -1
    recovered: bool = False
    recovery: Optional[RecoveryReport] = None
    rehandoffs: int = 0
    # Campus DSAR
    dsar_subject: str = ""
    dsar_buildings: List[str] = field(default_factory=list)
    dsar_observations: int = 0
    dsar_decisions: int = 0
    dsar_erased: int = 0
    dsar_withdrawn: int = 0
    dsar_compacted: List[str] = field(default_factory=list)
    dsar_unreachable: List[str] = field(default_factory=list)
    # End-of-run physical sweep (standalone recovery reader)
    swept_shards: int = 0
    resurrected: int = 0
    # Shared-plane accounting
    ledger_checked: int = 0
    ledger_admitted: int = 0
    ledger_shed: int = 0
    ledger_shed_by_class: Dict[str, int] = field(default_factory=dict)
    ledger_brownouts: int = 0
    quarantine_events: int = 0
    quarantine_readmissions: int = 0
    stored_by_building: Dict[str, int] = field(default_factory=dict)
    bus_attempts: int = 0
    bus_logical_calls: int = 0
    bus_retries: int = 0
    bus_shed: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "population": self.population,
            "ticks": self.ticks,
            "buildings": list(self.buildings),
            "residents_by_building": dict(self.residents_by_building),
            "roamers": self.roamers,
            "roaming": {
                "handoffs": self.handoffs,
                "returns": self.returns,
                "reentries": self.reentries,
                "failures": self.handoff_failures,
                "preferences_repushed": self.preferences_repushed,
                "preferences_pending": self.preferences_pending,
                "visited_shard_responses": self.visited_shard_responses,
                "marked_responses": self.roaming_marked_responses,
                "marked_audit_records": self.roaming_marked_audit,
            },
            "classes": {
                "critical": self.critical.to_dict(),
                "normal": self.normal.to_dict(),
                "deferrable": self.deferrable.to_dict(),
            },
            "critical_dark": self.critical_dark,
            "crash": {
                "crashed": self.crashed,
                "building": self.crash_building,
                "step": self.crash_step,
                "tick": self.crash_tick,
                "recovered": self.recovered,
                "recovery": None
                if self.recovery is None
                else self.recovery.to_dict(),
                "rehandoffs": self.rehandoffs,
            },
            "dsar": {
                "subject": self.dsar_subject,
                "buildings": list(self.dsar_buildings),
                "observations": self.dsar_observations,
                "decisions": self.dsar_decisions,
                "erased": self.dsar_erased,
                "withdrawn": self.dsar_withdrawn,
                "compacted": list(self.dsar_compacted),
                "unreachable": list(self.dsar_unreachable),
            },
            "sweep": {
                "shards": self.swept_shards,
                "resurrected": self.resurrected,
            },
            "ledger": {
                "checked": self.ledger_checked,
                "admitted": self.ledger_admitted,
                "shed": self.ledger_shed,
                "shed_by_class": dict(self.ledger_shed_by_class),
                "brownouts": self.ledger_brownouts,
            },
            "quarantine": {
                "events": self.quarantine_events,
                "readmissions": self.quarantine_readmissions,
            },
            "stored_by_building": dict(self.stored_by_building),
            "bus": {
                "attempts": self.bus_attempts,
                "logical_calls": self.bus_logical_calls,
                "retries": self.bus_retries,
                "shed": self.bus_shed,
            },
            "fault_counts": dict(self.fault_counts),
            "violations": list(self.violations),
            "ok": self.ok,
        }

    def summary_lines(self) -> List[str]:
        lines = [
            "federate run: plan=%s seed=%d population=%d ticks=%d buildings=%d"
            % (self.plan, self.seed, self.population, self.ticks,
               len(self.buildings)),
            "residents: "
            + ", ".join(
                "%s=%d" % (b, n)
                for b, n in sorted(self.residents_by_building.items())
            ),
            "roaming: roamers=%d handoffs=%d returns=%d reentries=%d "
            "failures=%d" % (self.roamers, self.handoffs, self.returns,
                             self.reentries, self.handoff_failures),
            "preferences: repushed=%d pending=%d"
            % (self.preferences_repushed, self.preferences_pending),
            "markers: visited_responses=%d marked_responses=%d marked_audit=%d"
            % (self.visited_shard_responses, self.roaming_marked_responses,
               self.roaming_marked_audit),
            "critical:   attempted=%d completed=%d shed=%d failed=%d dark=%d"
            % (self.critical.attempted, self.critical.completed,
               self.critical.shed, self.critical.failed, self.critical_dark),
            "normal:     attempted=%d completed=%d shed=%d failed=%d"
            % (self.normal.attempted, self.normal.completed,
               self.normal.shed, self.normal.failed),
            "deferrable: attempted=%d completed=%d shed=%d failed=%d "
            "(shed_rate=%.3f)"
            % (self.deferrable.attempted, self.deferrable.completed,
               self.deferrable.shed, self.deferrable.failed,
               self.deferrable.shed_rate),
            "crash: crashed=%s building=%s tick=%d recovered=%s rehandoffs=%d"
            % (self.crashed, self.crash_building or "none", self.crash_tick,
               self.recovered, self.rehandoffs),
        ]
        if self.recovery is not None:
            lines.extend(self.recovery.lines())
        lines.extend([
            "dsar: subject=%s buildings=[%s] observations=%d decisions=%d"
            % (self.dsar_subject or "none", ", ".join(self.dsar_buildings),
               self.dsar_observations, self.dsar_decisions),
            "dsar erase: erased=%d withdrawn=%d compacted=[%s] unreachable=[%s]"
            % (self.dsar_erased, self.dsar_withdrawn,
               ", ".join(self.dsar_compacted),
               ", ".join(self.dsar_unreachable)),
            "sweep: shards=%d resurrected=%d"
            % (self.swept_shards, self.resurrected),
            "admission ledger: checked=%d admitted=%d shed=%d brownouts=%d"
            % (self.ledger_checked, self.ledger_admitted, self.ledger_shed,
               self.ledger_brownouts),
            "quarantine: events=%d readmissions=%d"
            % (self.quarantine_events, self.quarantine_readmissions),
            "stored: "
            + ", ".join(
                "%s=%d" % (b, n)
                for b, n in sorted(self.stored_by_building.items())
            ),
            "bus: attempts=%d logical=%d retries=%d shed=%d"
            % (self.bus_attempts, self.bus_logical_calls, self.bus_retries,
               self.bus_shed),
        ])
        fired = ", ".join(
            "%s=%d" % (kind, count)
            for kind, count in sorted(self.fault_counts.items())
        )
        lines.append("faults fired: %s" % (fired or "none"))
        for violation in self.violations:
            lines.append("VIOLATION: %s" % violation)
        lines.append("result: %s" % ("OK" if self.ok else "FAILED"))
        return lines

    @property
    def report_text(self) -> str:
        return "".join(line + "\n" for line in self.summary_lines())


class _Run:
    """Mutable state one federate run threads through its helpers."""

    def __init__(self, campus: Campus, report: FederateReport,
                 retry_policy: RetryPolicy, injector: FaultInjector) -> None:
        self.campus = campus
        self.report = report
        self.retry_policy = retry_policy
        self.injector = injector
        self.current_tick = -1
        self.erase_now = -1.0
        self.pref_submitters: Set[str] = set()

    def call(
        self,
        outcome: ClassOutcome,
        building_id: str,
        method: str,
        payload: Dict[str, Any],
        principal: str,
        registry: bool = False,
    ) -> Optional[Dict[str, Any]]:
        """One accounted workload call routed to ``building_id``.

        Returns None when the call was shed, failed, or took the target
        shard down (a crash mid-call marks the shard dark and counts as
        a failure -- the caller got no answer).
        """
        shard = self.campus.shard(building_id)
        target = shard.registry_endpoint if registry else shard.endpoint
        dark = shard.down
        outcome.attempted += 1
        try:
            response = self.campus.bus.call(
                target,
                method,
                payload,
                retry_policy=self.retry_policy,
                deadline=Deadline(10.0),
                principal=principal,
            )
        except AdmissionShedError:
            outcome.shed += 1
            return None
        except NetworkError:
            outcome.failed += 1
            if dark and outcome is self.report.critical:
                self.report.critical_dark += 1
            return None
        except SimulatedCrash:
            self._record_crash(building_id)
            outcome.failed += 1
            if outcome is self.report.critical:
                # The crash call itself opens the dark window.
                self.report.critical_dark += 1
            return None
        outcome.completed += 1
        return response

    def _record_crash(self, building_id: str) -> None:
        if not self.report.crashed:
            self.report.crashed = True
            self.report.crash_building = building_id
            self.report.crash_tick = self.current_tick
            self.report.crash_step = self.injector.step - 1
        self.campus.mark_down(building_id)


def _partition_population(
    campus: Campus, population: int, seed: int
) -> Dict[str, List[Inhabitant]]:
    """Ring-partition a campus-global population into shard residents."""
    user_ids = ["campus-user-%04d" % index for index in range(1, population + 1)]
    by_building: Dict[str, List[str]] = {b: [] for b in campus.building_ids()}
    for user_id in user_ids:
        by_building[campus.router.home_building(user_id)].append(user_id)
    residents: Dict[str, List[Inhabitant]] = {}
    for building_id in sorted(by_building):
        ids = by_building[building_id]
        shard = campus.shard(building_id)
        residents[building_id] = generate_inhabitants(
            shard.spatial,
            len(ids),
            seed=seed,
            building_id=building_id,
            user_ids=ids,
        )
        for inhabitant in residents[building_id]:
            campus.add_resident(building_id, inhabitant.profile)
    return residents


def run_federate_scenario(
    plan_name: str = "campus-storm",
    seed: int = 17,
    population: int = 12,
    ticks: int = 16,
    buildings: Sequence[str] = DEFAULT_BUILDINGS,
    directory: Optional[str] = None,
    segment_bytes: int = 8 * 1024,
    metrics: Optional[MetricsRegistry] = None,
) -> FederateReport:
    """Run the sharded-campus scenario under ``plan_name`` and report.

    When ``directory`` is omitted a temporary storage root is created
    and removed afterwards; pass one to keep each shard's WAL directory
    for inspection.  ``metrics`` (optional) receives the run's
    instrumentation -- the bench harness reads decision latency and WAL
    bytes from it.
    """
    report = FederateReport(
        plan=plan_name,
        seed=seed,
        population=population,
        ticks=ticks,
        buildings=sorted(buildings),
    )
    owns_directory = directory is None
    if directory is None:
        directory = tempfile.mkdtemp(prefix="repro-federate-")
    try:
        _run(report, plan_name, seed, population, ticks, sorted(buildings),
             directory, segment_bytes, metrics)
    finally:
        if owns_directory:
            shutil.rmtree(directory, ignore_errors=True)
    return report


def _run(
    report: FederateReport,
    plan_name: str,
    seed: int,
    population: int,
    ticks: int,
    buildings: List[str],
    directory: str,
    segment_bytes: int,
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    from repro.iota.assistant import IoTAssistant

    if metrics is None:
        metrics = MetricsRegistry()
    # The campus spreads traffic across 2 endpoints per building, and
    # every queue drains one quantum per *global* admission check -- so
    # per-queue drain must be far below the single-building template's
    # 1.0 or no queue ever accumulates backlog.
    controller = AdmissionController(
        seed=seed,
        queue_capacity=8,
        high_watermark=0.5,
        shed_watermark=0.8,
        drain_per_step=0.25,
        principal_capacity=16.0,
        principal_refill_per_step=1.0,
        metrics=metrics,
    )
    campus = Campus(
        buildings,
        seed=seed,
        storage_root=directory,
        segment_bytes=segment_bytes,
        metrics=metrics,
        admission=controller,
    )
    residents = _partition_population(campus, population, seed)
    report.residents_by_building = {
        b: len(people) for b, people in residents.items()
    }
    inhabitants: Dict[str, Inhabitant] = {
        person.user_id: person
        for people in residents.values()
        for person in people
    }
    worlds: Dict[str, BuildingWorld] = {
        b: BuildingWorld(campus.shard(b).spatial, residents[b], seed=seed)
        for b in buildings
    }
    roamer_ids = sorted(
        user_id
        for user_id, person in inhabitants.items()
        if person.profile.has_iota
    )
    report.roamers = len(roamer_ids)
    world = CampusWorld(
        worlds,
        home_of=dict(campus.home_of),
        inhabitants=inhabitants,
        roamers=roamer_ids,
        seed=seed,
    )

    retry_policy = RetryPolicy(seed=seed)
    assistants: Dict[str, IoTAssistant] = {}
    for user_id in roamer_ids:
        home = campus.home_of[user_id]
        shard = campus.shard(home)
        assistants[user_id] = IoTAssistant(
            user_id,
            campus.bus,
            tippers_endpoint=shard.endpoint,
            registry_endpoints=[shard.registry_endpoint],
            metrics=metrics,
            retry_policy=retry_policy,
        )

    crash_building = buildings[0]
    stall_building = buildings[1 % len(buildings)]
    plan = build_plan(plan_name, seed)
    injector = FaultInjector(plan)
    injector.install_bus(campus.bus)
    injector.install_admission(controller)
    injector.install_storage_engine(campus.shard(crash_building).storage)
    injector.install_sensor_manager(
        campus.shard(stall_building).tippers.sensor_manager
    )
    run = _Run(campus, report, retry_policy, injector)
    run.pref_submitters = set(roamer_ids[:3])

    noon = 12 * 3600.0
    try:
        _run_ticks(run, world, assistants, noon, ticks)
    finally:
        injector.uninstall()
        report.fault_counts = injector.trace.counts()
        campus.close()
    end_now = noon + ticks * 60.0

    # ------------------------------------------------------------------
    # Harvest
    # ------------------------------------------------------------------
    for building_id in buildings:
        shard = campus.shard(building_id)
        report.stored_by_building[building_id] = shard.tippers.datastore.count()
        report.roaming_marked_audit += sum(
            1
            for record in shard.tippers.audit
            if any(
                reason.startswith(ROAMING_MARKER_PREFIX)
                for reason in record.reasons
            )
        )
    report.quarantine_events = int(metrics.total("quarantine_events_total"))
    report.quarantine_readmissions = int(
        metrics.total("quarantine_readmissions_total")
    )
    stats = campus.bus.stats
    report.bus_attempts = stats.calls
    report.bus_logical_calls = stats.logical_calls
    report.bus_retries = stats.retries
    report.bus_shed = stats.shed
    ledger = controller.ledger
    report.ledger_checked = ledger.checked
    report.ledger_admitted = ledger.admitted
    report.ledger_shed = ledger.shed
    report.ledger_shed_by_class = dict(sorted(ledger.shed_by_class.items()))
    report.ledger_brownouts = ledger.brownouts

    # ------------------------------------------------------------------
    # Physical-absence sweep: open every shard's directory with the
    # standalone recovery reader and look for the erased subject.
    # ------------------------------------------------------------------
    if report.dsar_subject and run.erase_now >= 0:
        for building_id in buildings:
            shard_dir = os.path.join(directory, building_id)
            state = recover(shard_dir, now=end_now)
            report.swept_shards += 1
            report.resurrected += sum(
                1
                for obs in state.datastore.query(subject_id=report.dsar_subject)
                if obs.timestamp <= run.erase_now
            )

    _check_invariants(report)


def _run_ticks(
    run: "_Run",
    world: CampusWorld,
    assistants: Dict[str, Any],
    noon: float,
    ticks: int,
) -> None:
    campus = run.campus
    report = run.report
    buildings = list(campus.building_ids())
    dsar_tick = max(1, (3 * ticks) // 4)
    for tick in range(ticks):
        run.current_tick = tick
        now = noon + tick * 60.0

        # Recover the dark shard after one full tick of darkness, then
        # hand off every roamer still inside the building again.
        if (report.crashed and not report.recovered
                and tick >= report.crash_tick + 2):
            report.recovery = campus.recover_shard(report.crash_building, now)
            report.recovered = True
            for user_id in sorted(assistants):
                if world.building_of(user_id) != report.crash_building:
                    continue
                if campus.home_of[user_id] == report.crash_building:
                    continue
                if _handoff(run, assistants[user_id], user_id,
                            report.crash_building, now) is not None:
                    report.rehandoffs += 1

        events = world.step(now)

        # Pre-roam preference submissions: a few assistants record an
        # explicit no-location preference at their home shard, so later
        # handoffs have something to re-push.
        if tick == 0:
            for user_id in sorted(run.pref_submitters):
                try:
                    assistants[user_id].submit_preference(
                        catalog.preference_2_no_location(user_id)
                    )
                except (RpcError, NetworkError):
                    pass

        # Boundary crossings -> IoTA handoffs.
        for event in events:
            if event.user_id not in assistants:
                continue
            result = _handoff(run, assistants[event.user_id], event.user_id,
                              event.to_building, now)
            if result is None:
                continue
            if event.kind == "roam":
                report.handoffs += 1
            else:
                report.returns += 1
            if result.re_entry:
                report.reentries += 1
            report.preferences_repushed += result.preferences_pushed
            report.preferences_pending += result.preferences_pending

        # Capture tick on every live shard; a mid-append crash takes
        # the shard down dark.
        for building_id in buildings:
            shard = campus.shard(building_id)
            if shard.down:
                continue
            try:
                shard.tippers.tick(now, world.world(building_id))
            except SimulatedCrash:
                run._record_crash(building_id)

        # The presence ledger: which live shards observed whom.
        for user_id in sorted(campus.home_of):
            building_id = world.building_of(user_id)
            if campus.shard(building_id).down:
                continue
            if world.world(building_id).location_of(user_id) is not None:
                campus.record_presence(user_id, building_id)

        # CRITICAL: the enforcement pipeline keeps fetching policy.
        for building_id in buildings:
            run.call(
                report.critical, building_id, "get_policy_document", {},
                "svc-policy-sync",
            )

        # DEFERRABLE: discovery sweeps against each visited registry.
        for user_id in sorted(assistants):
            building_id = world.building_of(user_id)
            run.call(
                report.deferrable, building_id, "discover",
                {"space_id": building_id},
                "iota-%s" % user_id, registry=True,
            )

        # NORMAL: locate each inhabitant at the building they are in;
        # a visited shard's answer must carry the roaming marker.
        for user_id in sorted(campus.home_of):
            building_id = world.building_of(user_id)
            visited = building_id != campus.home_of[user_id]
            dark = campus.shard(building_id).down
            response = run.call(
                report.normal, building_id, "locate_user",
                {
                    "requester_id": "svc-occupancy",
                    "requester_kind": "building_service",
                    "subject_id": user_id,
                    "now": now,
                },
                "svc-occupancy",
            )
            if response is None or dark:
                continue
            if visited:
                report.visited_shard_responses += 1
                if any(
                    reason.startswith(ROAMING_MARKER_PREFIX)
                    for reason in response["reasons"]
                ):
                    report.roaming_marked_responses += 1

        # The campus DSAR: report, then erase with per-shard compaction.
        if tick == dsar_tick:
            _run_dsar(run, now)


def _handoff(run: "_Run", assistant: Any, user_id: str,
             building_id: str, now: float) -> Optional[Any]:
    """One IoTA handoff to ``building_id``; None when it failed."""
    campus = run.campus
    shard = campus.shard(building_id)
    try:
        return assistant.roam_to(
            shard.endpoint,
            shard.registry_endpoint,
            profile_to_dict(campus.profile_of(user_id)),
            campus.home_of[user_id],
            building_id,
            now,
        )
    except SimulatedCrash:
        run._record_crash(building_id)
        run.report.handoff_failures += 1
        return None
    except (RpcError, NetworkError):
        run.report.handoff_failures += 1
        return None


def _run_dsar(run: "_Run", now: float) -> None:
    """The campus-wide DSAR cycle for one well-travelled subject."""
    campus = run.campus
    report = run.report
    # The most interesting subject: someone whose observations span at
    # least two shards.  No-location preference holders are skipped --
    # their capture was suppressed, so an erasure would be a no-op.
    candidates = [
        user_id
        for user_id in sorted(campus.home_of)
        if user_id not in run.pref_submitters
    ]
    subject = ""
    for user_id in candidates:
        if len(campus.buildings_observing(user_id)) >= 2:
            subject = user_id
            break
    if not subject:
        subject = candidates[0]
    report.dsar_subject = subject
    run.erase_now = now + 0.5
    access = campus_access_report(campus, subject, now)
    report.dsar_buildings = list(access.buildings)
    report.dsar_observations = access.observations_total
    report.dsar_decisions = access.decisions_total
    report.dsar_unreachable = list(access.unreachable)
    receipt = campus_erase_subject(
        campus, subject, now + 0.5,
        withdraw_preferences=True, compact_storage=True,
    )
    report.dsar_erased = receipt.erased_observations
    report.dsar_withdrawn = receipt.withdrawn_preferences
    report.dsar_compacted = list(receipt.compacted_buildings)
    for building in receipt.unreachable:
        if building not in report.dsar_unreachable:
            report.dsar_unreachable.append(building)


def _check_invariants(report: FederateReport) -> None:
    """The acceptance invariants, machine-checked into ``violations``."""
    if report.bus_attempts != report.bus_logical_calls + report.bus_retries:
        report.violations.append(
            "bus accounting: attempts (%d) != logical (%d) + retries (%d)"
            % (report.bus_attempts, report.bus_logical_calls,
               report.bus_retries)
        )
    critical_shed = report.ledger_shed_by_class.get(Priority.CRITICAL.value, 0)
    if critical_shed or report.critical.shed:
        report.violations.append(
            "CRITICAL calls were shed (ledger=%d observed=%d)"
            % (critical_shed, report.critical.shed)
        )
    if report.critical.completed != (
        report.critical.attempted - report.critical_dark
    ):
        report.violations.append(
            "CRITICAL calls failed outside the dark-shard window: "
            "completed=%d attempted=%d dark=%d"
            % (report.critical.completed, report.critical.attempted,
               report.critical_dark)
        )
    if report.deferrable.shed == 0:
        report.violations.append("DEFERRABLE shed rate is 0 under overload")
    if report.handoffs == 0:
        report.violations.append("no roaming handoffs occurred")
    if report.visited_shard_responses == 0:
        report.violations.append("no visited-shard decisions were served")
    if report.roaming_marked_responses != report.visited_shard_responses:
        report.violations.append(
            "roaming markers: %d of %d visited-shard responses marked"
            % (report.roaming_marked_responses, report.visited_shard_responses)
        )
    if report.roaming_marked_audit < report.roaming_marked_responses:
        report.violations.append(
            "audit trail: %d marked records for %d marked responses"
            % (report.roaming_marked_audit, report.roaming_marked_responses)
        )
    if not report.crashed:
        report.violations.append("the storm never crashed a shard")
    if report.crashed and not report.recovered:
        report.violations.append(
            "shard %s never recovered" % report.crash_building
        )
    if len(report.dsar_buildings) < 2:
        report.violations.append(
            "DSAR fan-out reached %d building(s); expected >= 2"
            % len(report.dsar_buildings)
        )
    if report.dsar_erased == 0:
        report.violations.append("DSAR erasure removed no observations")
    if report.dsar_compacted != report.dsar_buildings:
        report.violations.append(
            "DSAR compaction: compacted=[%s] but fan-out=[%s]"
            % (", ".join(report.dsar_compacted),
               ", ".join(report.dsar_buildings))
        )
    if report.resurrected:
        report.violations.append(
            "physical sweep found %d observation(s) of the erased subject"
            % report.resurrected
        )
