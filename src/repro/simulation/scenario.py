"""The end-to-end Figure-1 scenario.

Runs all ten interaction steps of the paper's Figure 1 on the synthetic
DBH and reports what happened at each step, with wall-clock timings.
This is both the library's flagship integration test and the FIG-1
benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.policy import catalog
from repro.core.policy.base import RequesterKind
from repro.core.reasoner.resolution import ResolutionStrategy
from repro.iota.assistant import IoTAssistant
from repro.iota.personas import PERSONAS, generate_decisions
from repro.iota.preference_model import PreferenceModel
from repro.irr.registry import IoTResourceRegistry
from repro.net.bus import MessageBus
from repro.services.concierge import SmartConcierge
from repro.simulation.dbh import BUILDING_ID, make_dbh_tippers
from repro.simulation.inhabitants import generate_inhabitants
from repro.simulation.mobility import BuildingWorld
from repro.spatial.model import SpaceType


@dataclass
class StepResult:
    """One numbered step of Figure 1."""

    step: int
    title: str
    elapsed_s: float
    detail: str


@dataclass
class Figure1Report:
    """Everything the scenario produced."""

    steps: List[StepResult] = field(default_factory=list)
    notifications: int = 0
    conflicts: List[str] = field(default_factory=list)
    location_allowed_before_optout: Optional[bool] = None
    location_allowed_after_optout: Optional[bool] = None
    observations_stored: int = 0
    audit_summary: Dict[str, int] = field(default_factory=dict)

    def step_titled(self, step: int) -> StepResult:
        for result in self.steps:
            if result.step == step:
                return result
        raise KeyError(step)

    def total_elapsed_s(self) -> float:
        return sum(s.elapsed_s for s in self.steps)

    def as_rows(self) -> List[Tuple[int, str, float, str]]:
        return [(s.step, s.title, s.elapsed_s, s.detail) for s in self.steps]


def run_figure1_scenario(
    population: int = 25,
    mary_persona: str = "fundamentalist",
    seed: int = 7,
    capture_ticks: int = 10,
    strategy: ResolutionStrategy = ResolutionStrategy.NEGOTIATE,
    cache_decisions: bool = False,
) -> Figure1Report:
    """Run the ten steps of Figure 1 and report per-step outcomes.

    ``mary_persona`` controls the user under study: a fundamentalist
    Mary ends up opted out of location sharing, so the step-10 query is
    rejected -- the exact outcome Section II-C walks through.
    """
    report = Figure1Report()

    def timed(step: int, title: str, fn) -> object:
        start = time.perf_counter()
        value = fn()
        report.steps.append(
            StepResult(
                step=step,
                title=title,
                elapsed_s=time.perf_counter() - start,
                detail=str(value),
            )
        )
        return value

    tippers = make_dbh_tippers(strategy=strategy, cache_decisions=cache_decisions)
    inhabitants = generate_inhabitants(tippers.spatial, population, seed=seed)
    # Make the first inhabitant our "Mary" with the requested persona.
    mary = inhabitants[0]
    mary_id = mary.user_id
    for inhabitant in inhabitants:
        tippers.add_user(inhabitant.profile)
    world = BuildingWorld(tippers.spatial, inhabitants, seed=seed)
    bus = MessageBus()
    bus.register("tippers", tippers)
    registry = IoTResourceRegistry("irr-dbh", tippers.spatial)
    bus.register("irr-dbh", registry)
    concierge = SmartConcierge(tippers)

    meeting_rooms = [
        s.space_id
        for s in tippers.spatial.spaces_of_type(SpaceType.ROOM)
        if s.attributes.get("meeting_room") == "yes"
    ]
    offices = [s.space_id for s in tippers.spatial.spaces_of_type(SpaceType.ROOM)]

    # ------------------------------------------------------------ (1)
    def step1() -> str:
        tippers.define_policy(catalog.policy_1_comfort(offices))
        tippers.define_policy(catalog.policy_2_emergency_location(BUILDING_ID))
        tippers.define_policy(catalog.policy_3_meeting_room_access(meeting_rooms))
        tippers.define_policy(catalog.policy_service_sharing(BUILDING_ID))
        return "%d policies defined" % len(tippers.policy_manager)

    timed(1, "building admin defines policies", step1)

    # ---------------------------------------------------------- (2-3)
    noon = 12 * 3600.0

    def steps2_3() -> str:
        for tick in range(capture_ticks):
            now = noon + tick * 60.0
            world.step(now)
            tippers.tick(now, world)
        report.observations_stored = tippers.datastore.count()
        return "%d observations stored" % report.observations_stored

    timed(2, "sensors actuated; data captured and stored", steps2_3)

    # ------------------------------------------------------------ (4)
    def step4() -> str:
        document = tippers.policy_manager.compile_policy_document()
        settings = tippers.policy_manager.settings_space.to_document()
        registry.publish_resource(
            "dbh-building-policies", BUILDING_ID, document, settings=settings
        )
        registry.publish_service(
            "dbh-concierge", BUILDING_ID, concierge.policy_document()
        )
        return "%d advertisements published" % len(registry)

    timed(4, "policies published through the IRR", step4)

    # ------------------------------------------------------------ (7)
    # Mary's preference model is learned before discovery so that
    # notification relevance reflects her preferences (the paper's
    # step 7 feeds step 6).
    model = PreferenceModel()

    def step7() -> str:
        decisions = generate_decisions(PERSONAS[mary_persona], 150, seed=seed)
        model.fit(decisions)
        return "model trained on %d labeled decisions (accuracy %.2f)" % (
            len(decisions),
            model.accuracy(decisions),
        )

    timed(7, "preference model learned over time", step7)

    iota = IoTAssistant(
        mary_id,
        bus,
        model=model,
        registry_endpoints=["irr-dbh"],
    )

    # ---------------------------------------------------------- (5-6)
    def steps5_6() -> str:
        now = noon + capture_ticks * 60.0
        mary_location = world.location_of(mary_id) or BUILDING_ID
        discovery = iota.discover(mary_location, now)
        report.notifications = len(discovery.notifications)
        return "%d resources, %d services discovered; %d notifications shown" % (
            len(discovery.resources),
            len(discovery.services),
            report.notifications,
        )

    timed(5, "IoTA discovers registries and fetches policies", steps5_6)

    # Contrast query: before Mary's settings reach the building, the
    # sharing policy alone governs the request.
    pre_query = bus.call(
        "tippers",
        "locate_user",
        {
            "requester_id": concierge.service_id,
            "requester_kind": "building_service",
            "subject_id": mary_id,
            "now": noon + capture_ticks * 60.0,
        },
    )
    report.location_allowed_before_optout = bool(pre_query["allowed"])

    # ------------------------------------------------------------ (8)
    def step8() -> str:
        selection = iota.configure_building_settings(noon + 1000.0)
        report.conflicts = list(iota.reported_conflicts)
        preview = iota.fetch_effect_preview(noon + 1001.0)
        location_lines = [l for l in preview if l.startswith("location/")]
        return "selection %r submitted; %d conflicts reported; effect: %s" % (
            selection,
            len(report.conflicts),
            "; ".join(location_lines),
        )

    timed(8, "IoTA configures privacy settings with TIPPERS", step8)

    # ---------------------------------------------------------- (9-10)
    def steps9_10() -> str:
        now = noon + capture_ticks * 60.0
        before = bus.call(
            "tippers",
            "locate_user",
            {
                "requester_id": concierge.service_id,
                "requester_kind": "building_service",
                "subject_id": mary_id,
                "now": now,
            },
        )
        report.location_allowed_after_optout = bool(before["allowed"])
        return "service location query allowed=%s reasons=%s" % (
            before["allowed"],
            before["reasons"],
        )

    timed(9, "service queries Mary's location; TIPPERS enforces", steps9_10)

    report.audit_summary = tippers.audit.summary()
    return report
