"""The synthetic Donald Bren Hall testbed.

Section II describes the real deployment: "DBH is equipped with more
than 40 surveillance cameras covering all the corridors and doors, 60
WiFi Access Points, 200 Bluetooth beacons, and 100 Power outlet
meters."  We cannot run in the real building, so this package builds a
synthetic DBH with the same inventory, populates it with inhabitants
following faculty/staff/student schedules, and drives the full Figure-1
interaction loop.

- :mod:`repro.simulation.dbh` -- the building and its sensor fleet.
- :mod:`repro.simulation.inhabitants` -- personas, profiles, schedules.
- :mod:`repro.simulation.mobility` -- the simulated world state
  (implements :class:`~repro.sensors.environment.EnvironmentView`).
- :mod:`repro.simulation.scenario` -- the end-to-end Figure-1 runner.
"""

from repro.simulation.dbh import build_dbh_spatial, deploy_dbh_sensors, make_dbh_tippers
from repro.simulation.inhabitants import Inhabitant, generate_inhabitants
from repro.simulation.longrun import WeekReport, run_week
from repro.simulation.mobility import BuildingWorld
from repro.simulation.scenario import Figure1Report, run_figure1_scenario

__all__ = [
    "build_dbh_spatial",
    "deploy_dbh_sensors",
    "make_dbh_tippers",
    "Inhabitant",
    "generate_inhabitants",
    "BuildingWorld",
    "run_figure1_scenario",
    "Figure1Report",
    "run_week",
    "WeekReport",
]
