"""The synthetic Donald Bren Hall: spaces and sensor fleet.

The inventory follows Section II: a 6-story building with 40
surveillance cameras (corridors and doors), 60 WiFi access points, 200
Bluetooth beacons, and 100 power-outlet meters -- plus the
motion/temperature/HVAC loop per room that Policy 1 needs and ID card
readers on meeting rooms for Policy 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.reasoner.resolution import ResolutionStrategy
from repro.spatial.model import SpaceType, SpatialModel, build_simple_building
from repro.tippers.bms import TIPPERS

if TYPE_CHECKING:
    from repro.storage.durable import StorageEngine

BUILDING_ID = "dbh"
FLOORS = 6
ROOMS_PER_FLOOR = 20

CAMERA_COUNT = 40
WIFI_AP_COUNT = 60
BEACON_COUNT = 200
POWER_METER_COUNT = 100


@dataclass
class DeploymentSummary:
    """How many sensors of each type were deployed."""

    by_type: Dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.by_type.values())


def build_dbh_spatial() -> SpatialModel:
    """The DBH spatial model: 6 floors x 20 rooms plus corridors.

    Every fourth room is tagged as a meeting room; one room per floor
    hosts a coffee machine (the Concierge example's amenity).
    """
    model = build_simple_building(
        BUILDING_ID, floors=FLOORS, rooms_per_floor=ROOMS_PER_FLOOR,
        floor_width=120.0, floor_depth=40.0,
    )
    rooms = sorted(
        model.spaces_of_type(SpaceType.ROOM), key=lambda s: s.space_id
    )
    for index, room in enumerate(rooms):
        if index % 4 == 3:
            room.attributes["meeting_room"] = "yes"
        if index % ROOMS_PER_FLOOR == 5:
            room.attributes["coffee_machine"] = "yes"
    model.validate()
    return model


def deploy_dbh_sensors(tippers: TIPPERS) -> DeploymentSummary:
    """Deploy the Section-II inventory into ``tippers``.

    Sensors are spread round-robin across their natural host spaces:
    cameras over corridors, APs and meters over rooms, beacons over
    rooms and corridors, the HVAC loop in every room, and card readers
    on meeting rooms.
    """
    spatial = tippers.spatial
    corridors = sorted(
        (s.space_id for s in spatial.spaces_of_type(SpaceType.CORRIDOR))
    )
    rooms = sorted((s.space_id for s in spatial.spaces_of_type(SpaceType.ROOM)))
    counts: Dict[str, int] = {}

    def deploy(sensor_type: str, count: int, hosts: List[str], prefix: str) -> None:
        for index in range(count):
            space_id = hosts[index % len(hosts)]
            tippers.deploy_sensor(
                sensor_type, "%s-%03d" % (prefix, index + 1), space_id
            )
        counts[sensor_type] = counts.get(sensor_type, 0) + count

    deploy("camera", CAMERA_COUNT, corridors, "cam")
    deploy("wifi_access_point", WIFI_AP_COUNT, rooms, "ap")
    deploy("bluetooth_beacon", BEACON_COUNT, rooms + corridors, "beacon")
    deploy("power_meter", POWER_METER_COUNT, rooms, "meter")

    # The comfort loop of Policy 1: motion + temperature + HVAC per room.
    for sensor_type, prefix in (
        ("motion_sensor", "motion"),
        ("temperature_sensor", "temp"),
        ("hvac_unit", "hvac"),
    ):
        for index, space_id in enumerate(rooms):
            tippers.deploy_sensor(
                sensor_type, "%s-%03d" % (prefix, index + 1), space_id
            )
        counts[sensor_type] = len(rooms)

    meeting_rooms = [
        s.space_id
        for s in spatial.spaces_of_type(SpaceType.ROOM)
        if s.attributes.get("meeting_room") == "yes"
    ]
    for index, space_id in enumerate(sorted(meeting_rooms)):
        tippers.deploy_sensor(
            "id_card_reader", "reader-%03d" % (index + 1), space_id
        )
    counts["id_card_reader"] = len(meeting_rooms)

    return DeploymentSummary(by_type=counts)


def make_dbh_tippers(
    strategy: ResolutionStrategy = ResolutionStrategy.NEGOTIATE,
    enforce_capture: bool = True,
    deploy_sensors: bool = True,
    cache_decisions: bool = False,
    storage: Optional["StorageEngine"] = None,
) -> TIPPERS:
    """A ready DBH TIPPERS instance (no policies defined yet)."""
    spatial = build_dbh_spatial()
    tippers = TIPPERS(
        spatial,
        BUILDING_ID,
        strategy=strategy,
        owner_name="UCI",
        owner_more_info="https://www.ics.uci.edu/about/bren_hall",
        enforce_capture=enforce_capture,
        cache_decisions=cache_decisions,
        storage=storage,
    )
    if deploy_sensors:
        deploy_dbh_sensors(tippers)
    return tippers
