"""The rebalance scenario: elastic campus membership under faults.

A three-building campus runs its usual workload (capture ticks,
CRITICAL policy fetches, NORMAL locates routed through the federation
router, DEFERRABLE discovery sweeps), then the topology changes twice:

1. **Join**: a fourth building comes up and joins the hash ring.  The
   ring hands back a migration delta and a
   :class:`~repro.federation.rebalance.RebalanceCoordinator` migrates
   each displaced user with the two-phase, WAL-journaled protocol --
   under the ``ring-change`` fault plan, which partitions one
   migration's finalize acknowledgement away (the user stays mid-flight,
   served fail-closed through forwarding) and crashes the destination
   shard right after another migration's import committed (recovery must
   take the journal-proved finalize-only path).
2. **Drain**: the oldest building leaves the ring, its users migrate
   out cleanly, and the emptied shard is decommissioned for good --
   endpoints off the bus with breaker eviction, unknown-building calls
   afterwards rejected and counted.

While migrations are in flight the scenario keeps probing: every
forwarded decision must carry a ``migrating:<from>:<to>`` marker in
both the response and the audit record (counted for exact equality:
zero lost, zero duplicated), every probe at a dark destination must
fail rather than answer (fail-closed), and a campus DSAR lands on a
*mid-migration* subject -- after which no shard, journal entry, or
compacted segment may ever resurrect their observations.

The report carries only counts and booleans, so two same-seed runs
render byte-identical text (the ``rebalance`` CLI and CI diff them),
and :attr:`RebalanceReport.violations` machine-checks the acceptance
invariants.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.policy import catalog
from repro.errors import (
    AdmissionShedError,
    FederationError,
    NetworkError,
    SimulatedCrash,
)
from repro.faults import FaultInjector, build_plan
from repro.federation import (
    Campus,
    RebalanceCoordinator,
    campus_access_report,
    campus_erase_subject,
)
from repro.net.admission import AdmissionController
from repro.net.bus import RpcError
from repro.net.resilience import Deadline, RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.simulation.inhabitants import Inhabitant, generate_inhabitants
from repro.simulation.mobility import BuildingWorld
from repro.simulation.overload import ClassOutcome
from repro.storage.recovery import RecoveryReport, recover

DEFAULT_BUILDINGS = ("bldg-a", "bldg-b", "bldg-c")
DEFAULT_NEW_BUILDING = "bldg-d"

#: The marker prefix every forwarded mid-migration decision carries.
MIGRATING_MARKER_PREFIX = "migrating:"


@dataclass
class RebalanceReport:
    """Everything one rebalance run produced, rendered deterministically."""

    plan: str
    seed: int
    population: int
    ticks: int
    buildings: List[str] = field(default_factory=list)
    new_building: str = ""
    drained_building: str = ""
    residents_by_building: Dict[str, int] = field(default_factory=dict)
    final_residents_by_building: Dict[str, int] = field(default_factory=dict)
    ring_version: int = 1
    # Migration waves
    wave1_planned: int = 0
    wave2_planned: int = 0
    migration_stats: Dict[str, int] = field(default_factory=dict)
    pending_remaining: int = 0
    observations_moved: int = 0
    preferences_moved: int = 0
    # Crash + journal-guided resumption
    crashed: bool = False
    crash_building: str = ""
    crash_step: int = -1
    recovered: bool = False
    recovery: Optional[RecoveryReport] = None
    journal_entries: int = 0
    # Mid-migration forwarding
    forwarded_responses: int = 0
    marked_responses: int = 0
    unmarked_responses: int = 0
    marked_audit: int = 0
    # Fail-closed probes at the dark destination
    failclosed_probes: int = 0
    failclosed_denied: int = 0
    failclosed_allows: int = 0
    # Mid-migration DSAR
    dsar_subject: str = ""
    dsar_mid_flight: bool = False
    dsar_buildings: List[str] = field(default_factory=list)
    dsar_observations: int = 0
    dsar_decisions: int = 0
    dsar_erased: int = 0
    dsar_withdrawn: int = 0
    dsar_compacted: List[str] = field(default_factory=list)
    dsar_unreachable: List[str] = field(default_factory=list)
    # Decommissioning
    decommissioned: List[str] = field(default_factory=list)
    unknown_probes: int = 0
    unknown_rejections: int = 0
    breaker_entries_left: int = 0
    # Assistant re-homing
    rehomed_assistants: int = 0
    rehome_pushed: int = 0
    rehome_pending: int = 0
    # Workload classes
    critical: ClassOutcome = field(default_factory=ClassOutcome)
    normal: ClassOutcome = field(default_factory=ClassOutcome)
    deferrable: ClassOutcome = field(default_factory=ClassOutcome)
    # Shared-plane accounting
    ledger_checked: int = 0
    ledger_admitted: int = 0
    ledger_shed: int = 0
    stored_by_building: Dict[str, int] = field(default_factory=dict)
    bus_attempts: int = 0
    bus_logical_calls: int = 0
    bus_retries: int = 0
    bus_shed: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    # End-of-run physical sweep (standalone recovery reader)
    swept_shards: int = 0
    resurrected: int = 0
    journal_snapshots_with_subject: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "population": self.population,
            "ticks": self.ticks,
            "buildings": list(self.buildings),
            "new_building": self.new_building,
            "drained_building": self.drained_building,
            "residents_by_building": dict(self.residents_by_building),
            "final_residents_by_building": dict(
                self.final_residents_by_building
            ),
            "ring_version": self.ring_version,
            "waves": {
                "wave1_planned": self.wave1_planned,
                "wave2_planned": self.wave2_planned,
                "stats": dict(self.migration_stats),
                "pending_remaining": self.pending_remaining,
                "observations_moved": self.observations_moved,
                "preferences_moved": self.preferences_moved,
            },
            "crash": {
                "crashed": self.crashed,
                "building": self.crash_building,
                "step": self.crash_step,
                "recovered": self.recovered,
                "recovery": None
                if self.recovery is None
                else self.recovery.to_dict(),
                "journal_entries": self.journal_entries,
            },
            "forwarding": {
                "responses": self.forwarded_responses,
                "marked": self.marked_responses,
                "unmarked": self.unmarked_responses,
                "marked_audit_records": self.marked_audit,
            },
            "fail_closed": {
                "probes": self.failclosed_probes,
                "denied": self.failclosed_denied,
                "allows": self.failclosed_allows,
            },
            "dsar": {
                "subject": self.dsar_subject,
                "mid_flight": self.dsar_mid_flight,
                "buildings": list(self.dsar_buildings),
                "observations": self.dsar_observations,
                "decisions": self.dsar_decisions,
                "erased": self.dsar_erased,
                "withdrawn": self.dsar_withdrawn,
                "compacted": list(self.dsar_compacted),
                "unreachable": list(self.dsar_unreachable),
            },
            "decommission": {
                "decommissioned": list(self.decommissioned),
                "unknown_probes": self.unknown_probes,
                "unknown_rejections": self.unknown_rejections,
                "breaker_entries_left": self.breaker_entries_left,
            },
            "rehome": {
                "assistants": self.rehomed_assistants,
                "pushed": self.rehome_pushed,
                "pending": self.rehome_pending,
            },
            "classes": {
                "critical": self.critical.to_dict(),
                "normal": self.normal.to_dict(),
                "deferrable": self.deferrable.to_dict(),
            },
            "ledger": {
                "checked": self.ledger_checked,
                "admitted": self.ledger_admitted,
                "shed": self.ledger_shed,
            },
            "stored_by_building": dict(self.stored_by_building),
            "bus": {
                "attempts": self.bus_attempts,
                "logical_calls": self.bus_logical_calls,
                "retries": self.bus_retries,
                "shed": self.bus_shed,
            },
            "fault_counts": dict(self.fault_counts),
            "sweep": {
                "shards": self.swept_shards,
                "resurrected": self.resurrected,
                "journal_snapshots_with_subject":
                    self.journal_snapshots_with_subject,
            },
            "violations": list(self.violations),
            "ok": self.ok,
        }

    def summary_lines(self) -> List[str]:
        stats = self.migration_stats
        lines = [
            "rebalance run: plan=%s seed=%d population=%d ticks=%d "
            "buildings=%d" % (self.plan, self.seed, self.population,
                              self.ticks, len(self.buildings)),
            "topology: joined=%s drained=%s ring_version=%d"
            % (self.new_building, self.drained_building, self.ring_version),
            "residents before: "
            + ", ".join(
                "%s=%d" % (b, n)
                for b, n in sorted(self.residents_by_building.items())
            ),
            "residents after:  "
            + ", ".join(
                "%s=%d" % (b, n)
                for b, n in sorted(self.final_residents_by_building.items())
            ),
            "waves: wave1=%d wave2=%d pending_left=%d"
            % (self.wave1_planned, self.wave2_planned,
               self.pending_remaining),
            "migrations: "
            + ", ".join(
                "%s=%d" % (key, stats[key]) for key in sorted(stats)
            ),
            "moved: observations=%d preferences=%d"
            % (self.observations_moved, self.preferences_moved),
            "crash: crashed=%s building=%s step=%d recovered=%s "
            "journal_entries=%d"
            % (self.crashed, self.crash_building or "none", self.crash_step,
               self.recovered, self.journal_entries),
        ]
        if self.recovery is not None:
            lines.extend(self.recovery.lines())
        lines.extend([
            "forwarding: responses=%d marked=%d unmarked=%d marked_audit=%d"
            % (self.forwarded_responses, self.marked_responses,
               self.unmarked_responses, self.marked_audit),
            "fail-closed: probes=%d denied=%d allows=%d"
            % (self.failclosed_probes, self.failclosed_denied,
               self.failclosed_allows),
            "dsar: subject=%s mid_flight=%s buildings=[%s] observations=%d "
            "decisions=%d"
            % (self.dsar_subject or "none", self.dsar_mid_flight,
               ", ".join(self.dsar_buildings), self.dsar_observations,
               self.dsar_decisions),
            "dsar erase: erased=%d withdrawn=%d compacted=[%s] "
            "unreachable=[%s]"
            % (self.dsar_erased, self.dsar_withdrawn,
               ", ".join(self.dsar_compacted),
               ", ".join(self.dsar_unreachable)),
            "decommission: gone=[%s] unknown_probes=%d rejections=%d "
            "breaker_entries_left=%d"
            % (", ".join(self.decommissioned), self.unknown_probes,
               self.unknown_rejections, self.breaker_entries_left),
            "rehome: assistants=%d pushed=%d pending=%d"
            % (self.rehomed_assistants, self.rehome_pushed,
               self.rehome_pending),
            "critical:   attempted=%d completed=%d shed=%d failed=%d"
            % (self.critical.attempted, self.critical.completed,
               self.critical.shed, self.critical.failed),
            "normal:     attempted=%d completed=%d shed=%d failed=%d"
            % (self.normal.attempted, self.normal.completed,
               self.normal.shed, self.normal.failed),
            "deferrable: attempted=%d completed=%d shed=%d failed=%d"
            % (self.deferrable.attempted, self.deferrable.completed,
               self.deferrable.shed, self.deferrable.failed),
            "admission ledger: checked=%d admitted=%d shed=%d"
            % (self.ledger_checked, self.ledger_admitted, self.ledger_shed),
            "stored: "
            + ", ".join(
                "%s=%d" % (b, n)
                for b, n in sorted(self.stored_by_building.items())
            ),
            "bus: attempts=%d logical=%d retries=%d shed=%d"
            % (self.bus_attempts, self.bus_logical_calls, self.bus_retries,
               self.bus_shed),
            "sweep: shards=%d resurrected=%d journal_snapshots=%d"
            % (self.swept_shards, self.resurrected,
               self.journal_snapshots_with_subject),
        ])
        fired = ", ".join(
            "%s=%d" % (kind, count)
            for kind, count in sorted(self.fault_counts.items())
        )
        lines.append("faults fired: %s" % (fired or "none"))
        for violation in self.violations:
            lines.append("VIOLATION: %s" % violation)
        lines.append("result: %s" % ("OK" if self.ok else "FAILED"))
        return lines

    @property
    def report_text(self) -> str:
        return "".join(line + "\n" for line in self.summary_lines())


class _Run:
    """Mutable state one rebalance run threads through its helpers."""

    def __init__(
        self,
        campus: Campus,
        report: RebalanceReport,
        coordinator: RebalanceCoordinator,
        retry_policy: RetryPolicy,
        injector: FaultInjector,
        worlds: Dict[str, BuildingWorld],
        building_of: Dict[str, str],
        now: float,
    ) -> None:
        self.campus = campus
        self.report = report
        self.coordinator = coordinator
        self.retry_policy = retry_policy
        self.injector = injector
        self.worlds = worlds
        #: user -> the building they are *physically* in (people do not
        #: move in this scenario; their data does).
        self.building_of = building_of
        self.now = now
        self.erase_now = -1.0
        #: user -> IoTAssistant; populated by ``_run`` before tick 0.
        self.assistants: Dict[str, Any] = {}

    def call(
        self,
        outcome: ClassOutcome,
        target: str,
        method: str,
        payload: Dict[str, Any],
        principal: str,
    ) -> Optional[Dict[str, Any]]:
        """One accounted workload call to a bus endpoint."""
        outcome.attempted += 1
        try:
            response = self.campus.bus.call(
                target,
                method,
                payload,
                retry_policy=self.retry_policy,
                deadline=Deadline(10.0),
                principal=principal,
            )
        except AdmissionShedError:
            outcome.shed += 1
            return None
        except (RpcError, NetworkError):
            outcome.failed += 1
            return None
        outcome.completed += 1
        return response

    def locate(self, user_id: str) -> Optional[Dict[str, Any]]:
        """One NORMAL locate routed through the federation router.

        A mid-migration subject's call is forwarded to the new home with
        the ``migrating:`` marker; the response's reasons are checked so
        an unmarked forwarded decision is caught, not silently passed.
        """
        report = self.report
        migration = self.campus.router.migration_of(user_id)
        report.normal.attempted += 1
        try:
            response = self.campus.router.call_home(
                user_id,
                "locate_user",
                {
                    "requester_id": "svc-occupancy",
                    "requester_kind": "building_service",
                    "subject_id": user_id,
                    "now": self.now,
                },
                principal="svc-occupancy",
            )
        except AdmissionShedError:
            report.normal.shed += 1
            return None
        except (RpcError, NetworkError, FederationError):
            report.normal.failed += 1
            return None
        report.normal.completed += 1
        if migration is not None:
            report.forwarded_responses += 1
            if any(
                reason.startswith(MIGRATING_MARKER_PREFIX)
                for reason in response["reasons"]
            ):
                report.marked_responses += 1
            else:
                report.unmarked_responses += 1
        return response

    def tick(self) -> None:
        """One deterministic workload tick; advances simulated time."""
        campus = self.campus
        report = self.report
        now = self.now
        live = {shard.building_id: shard for shard in campus.shards()}
        for building_id in sorted(self.worlds):
            self.worlds[building_id].step(now)
        for building_id in sorted(self.worlds):
            shard = live.get(building_id)
            if shard is None or shard.down:
                continue
            shard.tippers.tick(now, self.worlds[building_id])
        for user_id in sorted(self.building_of):
            building_id = self.building_of[user_id]
            shard = live.get(building_id)
            if shard is None or shard.down:
                continue
            if self.worlds[building_id].location_of(user_id) is not None:
                campus.record_presence(user_id, building_id)
        for building_id in sorted(live):
            if live[building_id].down:
                continue
            self.call(
                report.critical,
                live[building_id].endpoint,
                "get_policy_document",
                {},
                "svc-policy-sync",
            )
        for user_id in sorted(campus.home_of):
            self.locate(user_id)
        for user_id in sorted(self.assistants):
            home = campus.home_of[user_id]
            shard = live.get(home)
            if shard is None:
                continue
            self.call(
                report.deferrable,
                shard.registry_endpoint,
                "discover",
                {"space_id": home},
                "iota-%s" % user_id,
            )
        self.now += 60.0

    def dark_probes(self) -> None:
        """Probe every mid-migration principal while the destination is
        dark: any answer at all is a fail-open leak."""
        report = self.report
        for user_id in self.campus.router.migrating_principals():
            report.failclosed_probes += 1
            try:
                self.campus.router.call_home(
                    user_id,
                    "locate_user",
                    {
                        "requester_id": "svc-occupancy",
                        "requester_kind": "building_service",
                        "subject_id": user_id,
                        "now": self.now,
                    },
                    principal="svc-occupancy",
                )
            except (RpcError, NetworkError, AdmissionShedError):
                report.failclosed_denied += 1
                continue
            report.failclosed_allows += 1


def run_rebalance_scenario(
    plan_name: str = "ring-change",
    seed: int = 23,
    population: int = 24,
    ticks: int = 12,
    buildings: Sequence[str] = DEFAULT_BUILDINGS,
    new_building: str = DEFAULT_NEW_BUILDING,
    directory: Optional[str] = None,
    segment_bytes: int = 8 * 1024,
    metrics: Optional[MetricsRegistry] = None,
) -> RebalanceReport:
    """Run the elastic-membership scenario under ``plan_name``.

    When ``directory`` is omitted a temporary storage root is created
    and removed afterwards; pass one to keep each shard's WAL directory
    for inspection.  ``metrics`` (optional) receives the run's
    instrumentation -- the bench harness reads decision latency and WAL
    bytes from it.
    """
    buildings = sorted(buildings)
    report = RebalanceReport(
        plan=plan_name,
        seed=seed,
        population=population,
        ticks=ticks,
        buildings=list(buildings),
        new_building=new_building,
        drained_building=buildings[0],
    )
    owns_directory = directory is None
    if directory is None:
        directory = tempfile.mkdtemp(prefix="repro-rebalance-")
    try:
        _run(report, plan_name, seed, population, ticks, list(buildings),
             new_building, directory, segment_bytes, metrics)
    finally:
        if owns_directory:
            shutil.rmtree(directory, ignore_errors=True)
    return report


def _partition_population(
    campus: Campus, population: int, seed: int
) -> Dict[str, List[Inhabitant]]:
    """Ring-partition a campus-global population into shard residents."""
    user_ids = ["campus-user-%04d" % index for index in range(1, population + 1)]
    by_building: Dict[str, List[str]] = {b: [] for b in campus.building_ids()}
    for user_id in user_ids:
        by_building[campus.router.home_building(user_id)].append(user_id)
    residents: Dict[str, List[Inhabitant]] = {}
    for building_id in sorted(by_building):
        ids = by_building[building_id]
        shard = campus.shard(building_id)
        residents[building_id] = generate_inhabitants(
            shard.spatial,
            len(ids),
            seed=seed,
            building_id=building_id,
            user_ids=ids,
        )
        for inhabitant in residents[building_id]:
            campus.add_resident(building_id, inhabitant.profile)
    return residents


def _run(
    report: RebalanceReport,
    plan_name: str,
    seed: int,
    population: int,
    ticks: int,
    buildings: List[str],
    new_building: str,
    directory: str,
    segment_bytes: int,
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    from repro.iota.assistant import IoTAssistant

    if metrics is None:
        metrics = MetricsRegistry()
    controller = AdmissionController(
        seed=seed,
        queue_capacity=8,
        high_watermark=0.5,
        shed_watermark=0.8,
        drain_per_step=0.25,
        principal_capacity=16.0,
        principal_refill_per_step=1.0,
        metrics=metrics,
    )
    campus = Campus(
        buildings,
        seed=seed,
        storage_root=directory,
        segment_bytes=segment_bytes,
        metrics=metrics,
        admission=controller,
    )
    residents = _partition_population(campus, population, seed)
    report.residents_by_building = {
        b: len(people) for b, people in residents.items()
    }
    worlds = {
        b: BuildingWorld(campus.shard(b).spatial, residents[b], seed=seed)
        for b in buildings
    }
    building_of = {
        person.user_id: b
        for b, people in residents.items()
        for person in people
    }

    retry_policy = RetryPolicy(seed=seed)
    assistants: Dict[str, IoTAssistant] = {}
    for user_id in sorted(building_of):
        profile = campus.profile_of(user_id)
        if not profile.has_iota:
            continue
        shard = campus.shard(campus.home_of[user_id])
        assistants[user_id] = IoTAssistant(
            user_id,
            campus.bus,
            tippers_endpoint=shard.endpoint,
            registry_endpoints=[shard.registry_endpoint],
            metrics=metrics,
            retry_policy=retry_policy,
        )

    coordinator = RebalanceCoordinator(campus, retry_policy=retry_policy)
    plan = build_plan(plan_name, seed)
    # Only the migration plane is installed, so the injector's logical
    # steps count migration-step consults exactly -- that is what makes
    # the ring-change plan's windows scale-independent.
    injector = FaultInjector(plan)
    injector.install_rebalancer(coordinator)

    noon = 12 * 3600.0
    run = _Run(campus, report, coordinator, retry_policy, injector,
               worlds, building_of, noon)
    run.assistants = assistants

    try:
        _phases(run, ticks, new_building)
    finally:
        injector.uninstall()
        report.fault_counts = injector.trace.counts()
        campus.close()

    # ------------------------------------------------------------------
    # Harvest
    # ------------------------------------------------------------------
    report.ring_version = campus.router.ring_version
    report.migration_stats = dict(coordinator.stats)
    report.pending_remaining = len(coordinator.pending())
    report.final_residents_by_building = {
        shard.building_id: len(shard.residents)
        for shard in campus.shards()
    }
    for shard in campus.shards():
        report.stored_by_building[shard.building_id] = (
            shard.tippers.datastore.count()
        )
        report.marked_audit += sum(
            1
            for record in shard.tippers.audit
            if any(
                reason.startswith(MIGRATING_MARKER_PREFIX)
                for reason in record.reasons
            )
        )
    if campus.bus.breakers is not None:
        states = campus.bus.breakers.states()
        report.breaker_entries_left = sum(
            1
            for target in states
            if target.endswith("-" + report.drained_building)
            or target == "tippers-%s" % report.drained_building
            or target == "irr-%s" % report.drained_building
        )
    report.unknown_rejections = int(
        metrics.total("federation_unknown_building_total")
    )
    stats = campus.bus.stats
    report.bus_attempts = stats.calls
    report.bus_logical_calls = stats.logical_calls
    report.bus_retries = stats.retries
    report.bus_shed = stats.shed
    ledger = controller.ledger
    report.ledger_checked = ledger.checked
    report.ledger_admitted = ledger.admitted
    report.ledger_shed = ledger.shed

    # ------------------------------------------------------------------
    # Physical-absence sweep: every storage directory on disk (the
    # decommissioned building's included) is re-opened with the
    # standalone recovery reader; neither the datastore nor any
    # journaled migration snapshot may still hold the erased subject.
    # ------------------------------------------------------------------
    if report.dsar_subject and run.erase_now >= 0:
        end_now = run.now
        for name in sorted(os.listdir(directory)):
            shard_dir = os.path.join(directory, name)
            if not os.path.isdir(shard_dir):
                continue
            state = recover(shard_dir, now=end_now)
            report.swept_shards += 1
            report.resurrected += sum(
                1
                for obs in state.datastore.query(subject_id=report.dsar_subject)
                if obs.timestamp <= run.erase_now
            )
            for entry in state.migrations.values():
                snapshot = entry.get("snapshot")
                if (
                    entry.get("user_id") == report.dsar_subject
                    and isinstance(snapshot, dict)
                    and snapshot.get("observations")
                ):
                    report.journal_snapshots_with_subject += 1

    _check_invariants(report)


def _phases(run: _Run, ticks: int, new_building: str) -> None:
    """The scripted phases: warm-up, join wave, DSAR, drain, final."""
    campus = run.campus
    report = run.report
    warm_ticks = max(2, ticks // 3)
    final_ticks = max(2, ticks - warm_ticks - 4)

    # Phase 0: explicit preferences for migrations to carry.  Office
    # holders hide their office occupancy after-hours -- active policy
    # state that must survive the move byte-for-byte, without
    # suppressing the noon-time capture this scenario runs on.
    for user_id in sorted(run.assistants):
        profile = campus.profile_of(user_id)
        if profile.office_id is None:
            continue
        try:
            run.assistants[user_id].submit_preference(
                catalog.preference_1_office_after_hours(
                    user_id, profile.office_id
                )
            )
        except (RpcError, NetworkError):
            pass

    # Phase 1: warm-up.
    for _ in range(warm_ticks):
        run.tick()

    # Phase 2: the join wave, under partition and crash.
    delta = campus.add_building(new_building)
    migrations = run.coordinator.plan_for_delta(delta)
    report.wave1_planned = len(migrations)
    _drive_wave(run, migrations)

    # Phase 3: one mid-campus interlude tick on the enlarged ring.
    run.tick()

    # Phase 4: the drain wave (fault windows are long closed), then
    # decommissioning and the counted unknown-building rejection.
    drained = report.drained_building
    delta2 = campus.drain_building(drained)
    migrations2 = run.coordinator.plan_for_delta(delta2)
    report.wave2_planned = len(migrations2)
    _drive_wave(run, migrations2)
    campus.decommission_building(drained)
    report.decommissioned = list(campus.decommissioned)
    for _ in range(2):
        report.unknown_probes += 1
        try:
            campus.router.call_building(
                drained, "get_policy_document", {}, principal="svc-policy-sync"
            )
        except FederationError:
            pass

    # Phase 5: re-home the assistants of every migrated user.
    for user_id in sorted(run.assistants):
        shard = campus.shard(campus.home_of[user_id])
        assistant = run.assistants[user_id]
        if assistant.tippers_endpoint == shard.endpoint:
            continue
        try:
            pushed = assistant.rehome(
                shard.endpoint, shard.registry_endpoint
            )
        except (RpcError, NetworkError):
            continue
        report.rehomed_assistants += 1
        report.rehome_pushed += pushed["preferences_pushed"]
        report.rehome_pending += pushed["preferences_pending"]

    # Phase 6: the rebalanced campus keeps serving.
    for _ in range(final_ticks):
        run.tick()


def _drive_wave(run: _Run, migrations: List[Any]) -> None:
    """Drive one wave of migrations through faults to convergence."""
    campus = run.campus
    report = run.report
    coordinator = run.coordinator
    for migration in migrations:
        try:
            outcome = coordinator.migrate(migration)
        except SimulatedCrash:
            _handle_crash(run)
            continue
        _absorb(report, outcome)
    # Partitioned (acknowledgement-lost) migrations retry after a tick
    # of mid-flight traffic -- which is exactly when the forwarding
    # markers are exercised.
    rounds = 0
    while coordinator.pending() and rounds < 4:
        run.tick()
        for outcome in coordinator.retry_pending():
            _absorb(report, outcome)
        rounds += 1


def _handle_crash(run: _Run) -> None:
    """The crash choreography: dark probes, recovery, DSAR, resume."""
    campus = run.campus
    report = run.report
    coordinator = run.coordinator
    victim = coordinator.crashed_building
    assert victim is not None
    report.crashed = True
    report.crash_building = victim
    report.crash_step = run.injector.step - 1
    campus.mark_down(victim)
    # Fail-closed: while the destination is dark, every mid-migration
    # principal's forwarded call must fail, never answer.
    run.dark_probes()
    run.tick()
    run.dark_probes()
    # Recovery: the shard rebuilds from its WAL; its replayed migration
    # journal says how far each migration durably got.
    report.recovery = campus.recover_shard(victim, run.now)
    report.recovered = True
    journal = campus.shard(victim).tippers.recovered_migrations
    report.journal_entries = len(journal)
    # One live mid-flight tick: pending users are still marked, both
    # shards are up -- forwarded decisions flow, each carrying a marker.
    run.tick()
    # The DSAR lands on a *mid-migration* subject, then the coordinator
    # resumes from the journal; a resumed import may never re-create
    # what the erasure just removed.
    _run_dsar(run)
    for outcome in coordinator.resume_with_journal(journal):
        _absorb(report, outcome)


def _run_dsar(run: _Run) -> None:
    """The campus DSAR cycle against a mid-migration subject."""
    campus = run.campus
    report = run.report
    pending = run.coordinator.pending()
    if pending:
        subject = pending[0][0].user_id
    else:
        migrating = campus.router.migrating_principals()
        subject = migrating[0] if migrating else sorted(campus.home_of)[0]
    report.dsar_subject = subject
    report.dsar_mid_flight = campus.router.migration_of(subject) is not None
    run.erase_now = run.now + 0.5
    access = campus_access_report(campus, subject, run.now)
    report.dsar_buildings = list(access.buildings)
    report.dsar_observations = access.observations_total
    report.dsar_decisions = access.decisions_total
    report.dsar_unreachable = list(access.unreachable)
    receipt = campus_erase_subject(
        campus, subject, run.erase_now,
        withdraw_preferences=True, compact_storage=True,
    )
    report.dsar_erased = receipt.erased_observations
    report.dsar_withdrawn = receipt.withdrawn_preferences
    report.dsar_compacted = list(receipt.compacted_buildings)
    for building in receipt.unreachable:
        if building not in report.dsar_unreachable:
            report.dsar_unreachable.append(building)


def _absorb(report: RebalanceReport, outcome: Any) -> None:
    if outcome is None:
        return
    report.observations_moved += outcome.observations_moved
    report.preferences_moved += outcome.preferences_moved


def _check_invariants(report: RebalanceReport) -> None:
    """The acceptance invariants, machine-checked into ``violations``."""
    stats = report.migration_stats
    if report.bus_attempts != report.bus_logical_calls + report.bus_retries:
        report.violations.append(
            "bus accounting: attempts (%d) != logical (%d) + retries (%d)"
            % (report.bus_attempts, report.bus_logical_calls,
               report.bus_retries)
        )
    if report.critical.shed or report.critical.failed:
        report.violations.append(
            "CRITICAL calls shed or failed (shed=%d failed=%d)"
            % (report.critical.shed, report.critical.failed)
        )
    if report.ring_version != 3:
        report.violations.append(
            "ring version %d after one join and one drain; expected 3"
            % report.ring_version
        )
    if report.wave1_planned < 3:
        report.violations.append(
            "join wave planned %d migration(s); the ring-change windows "
            "need at least 3" % report.wave1_planned
        )
    if report.fault_counts.get("cutover_partition", 0) != 1:
        report.violations.append(
            "cutover_partition fired %d time(s); expected exactly 1"
            % report.fault_counts.get("cutover_partition", 0)
        )
    if report.fault_counts.get("crash_mid_migration", 0) != 1:
        report.violations.append(
            "crash_mid_migration fired %d time(s); expected exactly 1"
            % report.fault_counts.get("crash_mid_migration", 0)
        )
    if not report.crashed or not report.recovered:
        report.violations.append(
            "crash/recovery did not complete (crashed=%s recovered=%s)"
            % (report.crashed, report.recovered)
        )
    if report.journal_entries < 2:
        report.violations.append(
            "recovered migration journal held %d entr(ies); expected the "
            "partitioned and crashed migrations both journaled"
            % report.journal_entries
        )
    converged = (
        stats.get("completed", 0) + stats.get("already_finalized", 0)
    )
    if converged != stats.get("planned", 0) or report.pending_remaining:
        report.violations.append(
            "migrations did not converge: planned=%d converged=%d pending=%d"
            % (stats.get("planned", 0), converged, report.pending_remaining)
        )
    if report.forwarded_responses == 0:
        report.violations.append("no forwarded mid-migration decisions served")
    if report.unmarked_responses:
        report.violations.append(
            "%d forwarded decision(s) lacked the migrating: marker"
            % report.unmarked_responses
        )
    if report.marked_responses != report.marked_audit:
        report.violations.append(
            "decision ledger: %d marked responses but %d marked audit "
            "records (lost or duplicated decisions)"
            % (report.marked_responses, report.marked_audit)
        )
    if report.failclosed_probes == 0:
        report.violations.append("no fail-closed probes ran at the dark shard")
    if report.failclosed_allows:
        report.violations.append(
            "%d probe(s) were answered while the destination was dark "
            "(fail-open)" % report.failclosed_allows
        )
    if not report.dsar_mid_flight:
        report.violations.append("the DSAR subject was not mid-migration")
    if report.dsar_erased == 0:
        report.violations.append("DSAR erasure removed no observations")
    if len(report.dsar_buildings) < 2:
        report.violations.append(
            "DSAR fan-out reached %d building(s); a mid-migration subject "
            "spans at least 2" % len(report.dsar_buildings)
        )
    if report.resurrected or report.journal_snapshots_with_subject:
        report.violations.append(
            "post-DSAR resurrection: %d observation(s), %d journal "
            "snapshot(s) still hold the subject"
            % (report.resurrected, report.journal_snapshots_with_subject)
        )
    if report.decommissioned != [report.drained_building]:
        report.violations.append(
            "decommissioned=[%s]; expected [%s]"
            % (", ".join(report.decommissioned), report.drained_building)
        )
    if report.unknown_rejections < report.unknown_probes:
        report.violations.append(
            "unknown-building rejections (%d) below probes (%d)"
            % (report.unknown_rejections, report.unknown_probes)
        )
    if report.breaker_entries_left:
        report.violations.append(
            "%d breaker entr(ies) survived decommissioning"
            % report.breaker_entries_left
        )
    if report.rehomed_assistants == 0:
        report.violations.append("no assistants were re-homed after the moves")
