"""Measured per-component costs behind the capacity soak's models.

The soak (:func:`repro.simulation.longrun.run_capacity_soak`) never
reads a wall clock -- its latency and memory numbers come from a *cost
table* applied to deterministic counts (rules evaluated, queue depth,
stored observations).  Early versions hard-coded round guesses for
those per-component costs; this module replaces them with values
**derived from the committed perf trajectory**, so the model tracks
what the benchmark suite actually measured:

- ``us_per_decision`` -- the indexed enforcement path's measured cost
  per decision (``scale_enforcement.extra["indexed_us_per_op"]``).
- ``us_per_rule`` -- the *marginal* cost of evaluating one more rule,
  taken as the gap between the linear and indexed evaluators spread
  over the rule count (``(linear - indexed) / rules``).
- ``us_per_queued_call`` -- the measured mean decision latency under
  admission-controlled overload (``scale_overload``), charged once per
  call of modeled backlog ahead of a request.
- the two state-size charges (bytes per principal, bytes per stored
  observation) are audit-derived estimates, not benchmark outputs;
  they ride along so the whole model lives in one frozen table.

:data:`DEFAULT_COST_TABLE` pins the derivation from trajectory record
**BENCH_0002** (the first record carrying the compiled-table suite) --
deliberately a fixed record, not ``latest_record()``: the soak's
reports must stay byte-identical as new trajectory points land, and a
recalibration should be an explicit, reviewed edit here.
:func:`cost_table_from_record` performs the same derivation on any
record, so tests can prove the pinned numbers match the committed
JSON.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The trajectory record DEFAULT_COST_TABLE's numbers were derived
#: from (see ``tests/test_capacity_soak.py``, which re-derives them).
COST_TABLE_SOURCE_RECORD_ID = 2


@dataclass(frozen=True)
class CostTable:
    """Per-component costs for the soak's latency and memory models."""

    #: Microseconds for one enforcement decision on the indexed path.
    us_per_decision: float = 24.4
    #: Marginal microseconds per policy rule evaluated past the index.
    us_per_rule: float = 0.044
    #: Microseconds of queueing delay per call of modeled backlog.
    us_per_queued_call: float = 26.0
    #: Resident bytes attributed to one principal: directory profile,
    #: preference rules, IoTA selection cache, and audit index share.
    principal_state_bytes: int = 3200
    #: Resident bytes per stored observation (datastore row + indexes).
    observation_state_bytes: int = 512

    def __post_init__(self) -> None:
        for name in ("us_per_decision", "us_per_rule", "us_per_queued_call"):
            if getattr(self, name) < 0:
                raise ValueError("%s must be non-negative" % name)
        for name in ("principal_state_bytes", "observation_state_bytes"):
            if getattr(self, name) < 0:
                raise ValueError("%s must be non-negative" % name)

    def modeled_p99_latency_us(
        self, rules_p99: float, queue_depth_p99: float
    ) -> float:
        """One decision's modeled p99: work plus queueing delay."""
        return round(
            self.us_per_decision
            + rules_p99 * self.us_per_rule
            + queue_depth_p99 * self.us_per_queued_call,
            3,
        )

    def modeled_state_bytes(
        self,
        population: int,
        wal_bytes: int,
        stored_observations: int,
        phantom_ratio: int,
    ) -> int:
        """Resident-state estimate: principals plus extrapolated rows."""
        return (
            population * self.principal_state_bytes
            + phantom_ratio * (
                wal_bytes
                + stored_observations * self.observation_state_bytes
            )
        )


#: The pinned table; every number re-derivable from BENCH_0002.
DEFAULT_COST_TABLE = CostTable()


def cost_table_from_record(record) -> CostTable:
    """Derive a :class:`CostTable` from one trajectory record.

    ``record`` is a :class:`repro.bench.schema.BenchRecord` (typed
    loosely so the simulation layer does not import the bench layer at
    module scope).  Raises ``KeyError`` when the record predates the
    benchmarks the derivation needs.
    """
    enforcement = record.benchmarks["scale_enforcement"]
    overload = record.benchmarks["scale_overload"]
    indexed = enforcement.extra["indexed_us_per_op"]
    linear = enforcement.extra["linear_us_per_op"]
    rules = enforcement.extra["rules"]
    if rules <= 0:
        raise ValueError("record's scale_enforcement has no rules")
    return CostTable(
        us_per_decision=round(indexed, 1),
        us_per_rule=round((linear - indexed) / rules, 3),
        us_per_queued_call=round(overload.decision_latency.mean_us, 1),
        principal_state_bytes=DEFAULT_COST_TABLE.principal_state_bytes,
        observation_state_bytes=DEFAULT_COST_TABLE.observation_state_bytes,
    )
