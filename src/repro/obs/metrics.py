"""Dependency-free metrics: counters, gauges, and bounded histograms.

Every subsystem on the Figure-1 path (bus, enforcement engine, decision
cache, sensor manager, request manager, IoTA) registers its counters
here instead of growing another ad-hoc stats struct.  The registry is
deliberately tiny and allocation-light -- metric handles are resolved
once and then updated with plain attribute arithmetic -- so it can sit
on the per-decision hot path without moving the benchmarks.

Design constraints:

- **No dependencies.**  Pure stdlib; snapshots are plain dicts that
  ``json.dumps`` accepts unmodified.
- **Bounded memory.**  Histograms keep fixed-size bucket counts (plus
  count/sum/min/max), never raw samples, so a week-long simulation
  cannot grow them.
- **Deterministic percentiles.**  ``Histogram.percentile`` is a pure
  function of the bucket counts and the observed min/max, which makes
  merged histograms agree exactly with histograms built from the
  concatenated samples (a property the test suite pins).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelPairs = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelPairs]

#: Version stamp carried by every :meth:`MetricsRegistry.snapshot`.
#: Consumers (the bench trajectory, ``REPRO_METRICS_OUT`` diffing) key
#: their parsers off it; :meth:`MetricsRegistry.restore` rejects
#: versions it does not understand.
SNAPSHOT_SCHEMA_VERSION = 1

#: Upper bucket bounds for latency-shaped histograms, in seconds:
#: geometric from 1 microsecond to 10 seconds (4 buckets per decade).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(1e-6 * 10 ** (i / 4.0), 12) for i in range(29)
)

#: Upper bucket bounds for small-count histograms (rules evaluated,
#: results per query, ...).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0, 89.0,
    144.0, 233.0, 377.0, 610.0, 1000.0, 10000.0,
)


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_dict(key: LabelPairs) -> Dict[str, str]:
    return {k: v for k, v in key}


class Counter:
    """A monotonically non-decreasing value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counter %r cannot decrease" % self.name)
        self.value += amount


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with exact-at-boundary percentiles.

    ``boundaries`` are *upper* bucket bounds; a sample ``v`` lands in
    the first bucket whose bound is >= ``v``, with one overflow bucket
    past the last bound.  Memory is O(len(boundaries)) regardless of
    how many samples are observed.
    """

    __slots__ = ("name", "labels", "boundaries", "counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelPairs = (),
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if not boundaries:
            raise ValueError("histogram %r needs at least one bucket bound" % name)
        bounds = tuple(float(b) for b in boundaries)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram %r bounds must be strictly increasing" % name)
        self.name = name
        self.labels = labels
        self.boundaries = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("histogram %r cannot observe NaN" % self.name)
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, p: float) -> Optional[float]:
        """The p-th percentile estimate, exact for boundary-valued samples.

        Returns the upper bound of the bucket holding the rank-``p``
        sample, clamped to the observed maximum (so the overflow bucket
        never reports infinity).  ``None`` when empty.
        """
        if self.count == 0:
            return None
        if not 0 < p <= 100:
            raise ValueError("percentile must lie in (0, 100]")
        rank = max(1, math.ceil(self.count * p / 100.0))
        cumulative = 0
        estimate = self.boundaries[-1]
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.boundaries):
                    estimate = self.boundaries[index]
                else:
                    estimate = self.max if self.max is not None else self.boundaries[-1]
                break
        assert self.max is not None
        return min(estimate, self.max)

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def summary(
        self, percentiles: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> Dict[str, object]:
        """A flat JSON-able percentile summary of the distribution.

        Unlike :meth:`snapshot` (which keeps raw bucket counts for exact
        merging), this is the export shape perf records want: count,
        mean, min/max, and one ``p<N>`` key per requested percentile.
        Empty histograms summarize to ``count=0`` with ``None`` values.
        """
        result: Dict[str, object] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for p in percentiles:
            key = "p%g" % p
            result[key] = self.percentile(p) if self.count else None
        return result

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram equal to observing both sample streams."""
        if self.boundaries != other.boundaries:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        merged = Histogram(self.name, self.labels, self.boundaries)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.count = self.count + other.count
        merged.sum = self.sum + other.sum
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        merged.min = min(mins) if mins else None
        merged.max = max(maxs) if maxs else None
        return merged

    def snapshot(self) -> Dict[str, object]:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_snapshot(
        cls, name: str, labels: LabelPairs, data: Mapping[str, object]
    ) -> "Histogram":
        histogram = cls(name, labels, data["boundaries"])  # type: ignore[arg-type]
        histogram.counts = [int(c) for c in data["counts"]]  # type: ignore[union-attr]
        histogram.count = int(data["count"])  # type: ignore[arg-type]
        histogram.sum = float(data["sum"])  # type: ignore[arg-type]
        histogram.min = None if data["min"] is None else float(data["min"])  # type: ignore[arg-type]
        histogram.max = None if data["max"] is None else float(data["max"])  # type: ignore[arg-type]
        return histogram


class MetricsRegistry:
    """Owns every metric of one deployment (or one test)."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    # ------------------------------------------------------------------
    # Handles (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(name, key[1])
        return counter

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge(name, key[1])
        return gauge

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(name, key[1], boundaries)
        return histogram

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def counters(self, name: str) -> List[Counter]:
        return [c for (n, _), c in sorted(self._counters.items()) if n == name]

    def histograms(self, name: str) -> List[Histogram]:
        return [h for (n, _), h in sorted(self._histograms.items()) if n == name]

    def merged_histogram(self, name: str) -> Optional[Histogram]:
        """Every histogram named ``name`` merged across label sets.

        Returns ``None`` when no histogram with that name exists.  The
        merge is exact (bucket-count addition), so percentiles of the
        result equal percentiles of the concatenated sample streams.
        """
        merged: Optional[Histogram] = None
        for histogram in self.histograms(name):
            merged = histogram if merged is None else merged.merge(histogram)
        return merged

    def total(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> float:
        """Sum of every counter named ``name`` whose labels ⊇ ``labels``."""
        subset = _label_key(labels)
        total = 0.0
        for (metric_name, label_key), counter in self._counters.items():
            if metric_name == name and set(subset) <= set(label_key):
                total += counter.value
        return total

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable, deterministic view of every metric."""
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "counters": [
                {"name": name, "labels": _labels_dict(labels), "value": c.value}
                for (name, labels), c in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": name, "labels": _labels_dict(labels), "value": g.value}
                for (name, labels), g in sorted(self._gauges.items())
            ],
            "histograms": [
                dict(
                    {"name": name, "labels": _labels_dict(labels)},
                    **h.snapshot(),
                )
                for (name, labels), h in sorted(self._histograms.items())
            ],
        }

    @classmethod
    def restore(cls, snapshot: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output.

        Snapshots written before the ``schema`` stamp existed are
        accepted as version 1; anything newer than this build raises.
        """
        schema = int(snapshot.get("schema", SNAPSHOT_SCHEMA_VERSION))  # type: ignore[arg-type]
        if schema != SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(
                "unsupported metrics snapshot schema %d (this build "
                "understands %d)" % (schema, SNAPSHOT_SCHEMA_VERSION)
            )
        registry = cls()
        for entry in snapshot.get("counters", ()):  # type: ignore[union-attr]
            counter = registry.counter(entry["name"], entry.get("labels"))
            counter.value = entry["value"]
        for entry in snapshot.get("gauges", ()):  # type: ignore[union-attr]
            gauge = registry.gauge(entry["name"], entry.get("labels"))
            gauge.value = entry["value"]
        for entry in snapshot.get("histograms", ()):  # type: ignore[union-attr]
            key = (entry["name"], _label_key(entry.get("labels")))
            registry._histograms[key] = Histogram.from_snapshot(
                entry["name"], key[1], entry
            )
        return registry

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> List[str]:
        """Human-readable lines, one per metric, deterministically ordered."""
        lines: List[str] = []
        for (name, labels), counter in sorted(self._counters.items()):
            lines.append(
                "counter   %-46s %s" % (_format_name(name, labels), _format_number(counter.value))
            )
        for (name, labels), gauge in sorted(self._gauges.items()):
            lines.append(
                "gauge     %-46s %s" % (_format_name(name, labels), _format_number(gauge.value))
            )
        for (name, labels), histogram in sorted(self._histograms.items()):
            if histogram.count == 0:
                summary = "count=0"
            else:
                summary = (
                    "count=%d mean=%s p50=%s p95=%s p99=%s max=%s"
                    % (
                        histogram.count,
                        _format_number(histogram.mean),
                        _format_number(histogram.percentile(50)),
                        _format_number(histogram.percentile(95)),
                        _format_number(histogram.percentile(99)),
                        _format_number(histogram.max),
                    )
                )
            lines.append(
                "histogram %-46s %s" % (_format_name(name, labels), summary)
            )
        return lines


def _format_name(name: str, labels: LabelPairs) -> str:
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % pair for pair in labels))


def _format_number(value: object) -> str:
    if isinstance(value, float) and not value.is_integer():
        return "%.6g" % value
    return "%d" % int(value)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Process-wide default registry
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry components fall back to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
