"""Unified observability: metrics registry, tracing, instrumentation.

See ``docs/OBSERVABILITY.md`` for the metric-name catalog and the
tracing model.  Quick start::

    from repro import obs

    registry = obs.MetricsRegistry()
    obs.set_registry(registry)        # components pick this up
    ... run a scenario ...
    for line in registry.render():
        print(line)
"""

from repro.obs.instrument import span, timed
from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    SNAPSHOT_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.tracing import (
    ManualClock,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "NullTracer",
    "SNAPSHOT_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "get_registry",
    "get_tracer",
    "set_registry",
    "set_tracer",
    "span",
    "timed",
]
